"""RPR002 fixture: serializer drift (must fire twice)."""


class MissingRestorer:
    def __init__(self):
        self.value = 0

    def to_state(self, bundle):  # no from_state/load_state anywhere
        return {"value": self.value}


class DriftedKeys:
    def __init__(self):
        self.count = 0
        self.extra = None

    def to_state(self, bundle):
        return {
            "count": self.count,
            "orphan": self.extra,  # never read back below
        }

    def from_state(self, state, bundle):
        self.count = state["count"]
