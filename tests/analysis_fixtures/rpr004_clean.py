"""RPR004 fixture: uniformly guarded, or no lock at all (must pass)."""

import threading


class FullyGuarded:
    def __init__(self, lock=None):
        self._lock = lock or threading.Lock()
        self._entries = []
        self._hits = 0  # read-only outside __init__: never guarded, fine

    def add(self, item):
        with self._lock:
            self._entries.append(item)

    def drain(self):
        with self._lock:
            drained, self._entries = self._entries, []
        return drained

    def hits(self):
        return self._hits


class SingleThreaded:
    """No lock attribute: mutate freely (CoverageStore's LRU pattern)."""

    def __init__(self):
        self._cache = {}

    def put(self, key, value):
        self._cache[key] = value
