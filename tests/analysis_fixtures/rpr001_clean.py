"""RPR001 fixture: explicit seeded streams and monotonic clocks (must pass)."""

import time

import numpy as np


def shuffle_candidates(candidates, rng):
    rng.shuffle(candidates)  # caller-provided Generator: replayable
    return candidates


def make_stream(seed):
    return np.random.default_rng(seed)


def timed(fn):
    start = time.perf_counter()  # duration clock, not wall time
    result = fn()
    return result, time.perf_counter() - start
