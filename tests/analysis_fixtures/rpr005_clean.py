"""RPR005 fixture: instruments bound at construction time (must pass)."""

from repro import obs


class Component:
    def __init__(self):
        # Construction-time resolution: obs.enable() before build is seen.
        self._counter = obs.get_registry().counter("fixture_total")
        self._tracer = obs.get_tracer()

    def work(self):
        self._counter.inc()
        with self._tracer.span("fixture.work"):
            return 1
