"""RPR002 fixture: serializer/restorer in lock-step (must pass)."""


class RoundTrips:
    def __init__(self):
        self.count = 0
        self.name = ""

    def to_state(self, bundle):
        return {
            "count": self.count,
            "name": self.name,
            # Nested reference blocks are informational; their keys are
            # consumed by other layers and exempt from parity.
            "meta": {"format": "v1", "bytes": 0},
        }

    def from_state(self, state, bundle):
        self.count = state["count"]
        self.name = state.get("name", "")
        state.get("meta")  # nested block keys stay informational
