"""RPR003 fixture: writes through sealed coverage columns (must fire)."""

import numpy as np


def clobber_view(view):
    ids = view.ids  # sealed column
    ids[0] = -1  # line 8: subscript write
    return ids


def sort_in_place(view):
    tail = view.ids[1:]  # basic slice aliases the sealed buffer
    tail.sort()  # line 14: in-place mutator
    return tail


def unseal(table):
    order = table.order_by_pre
    order.setflags(write=True)  # line 20: un-sealing
    order += 1  # line 21: augmented assignment
    return order


def reseal_then_write(values):
    frozen = np.asarray(values)
    frozen.setflags(write=False)
    frozen[3] = 9  # line 28: wrote what this function just froze
    return frozen
