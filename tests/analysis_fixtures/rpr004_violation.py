"""RPR004 fixture: one bare mutation of lock-guarded state (must fire)."""

import threading


class PartiallyGuarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = []  # constructor writes are exempt
        self._total = 0

    def add(self, item):
        with self._lock:
            self._entries.append(item)
            self._total += 1

    def sneak(self, item):
        self._entries.append(item)  # line 18: bare mutation, races add()

    def drain(self):
        with self._lock:
            drained, self._entries = self._entries, []
        return drained
