"""RPR005 fixture: telemetry wired at import time (must fire)."""

from repro import obs
from repro.obs import MetricsRegistry, get_registry

_REGISTRY = get_registry()  # line 6: binds the null registry forever

_PRIVATE = obs.MetricsRegistry()  # line 8: live state for every importer


class Component:
    tracer = obs.get_tracer()  # line 12: class body runs at import

    def __init__(self):
        self.counter = _REGISTRY.counter("fixture_total")
