"""RPR001 fixture: global RNG state and wall-clock reads (must fire)."""

import random
import time
from datetime import datetime

import numpy as np


def shuffle_candidates(candidates):
    random.shuffle(candidates)  # line 11: stdlib global stream
    return candidates


def sample_scores(n):
    return np.random.rand(n)  # line 16: numpy global stream


def make_stream():
    return np.random.default_rng()  # line 20: unseeded


def stamp():
    return time.time(), datetime.now()  # line 24: wall clock, twice
