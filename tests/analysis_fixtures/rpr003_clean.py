"""RPR003 fixture: sealed reads stay reads; copies may mutate (must pass)."""

import numpy as np


def copy_then_edit(view):
    ids = view.ids.copy()  # .copy() purifies
    ids[0] = -1
    ids.sort()
    return ids


def fancy_index_copies(view, mask):
    picked = view.ids[mask]  # fancy indexing allocates a new array
    picked[0] = 7
    return picked


def fresh_output(view):
    positions = np.searchsorted(np.arange(10), view.ids)
    positions[0] = 0  # searchsorted output is a fresh array
    return positions


def rebind_is_fine(view):
    ids = view.ids
    ids = np.array(ids)  # np.array copies; the name is clean now
    ids += 1
    return ids
