"""End-to-end integration tests across modules.

These tests exercise the whole pipeline the way the paper's evaluation does —
generate a corpus, run Darwin against a simulated oracle, compare against a
baseline, and hand the discovered rules to the label model — asserting the
qualitative *shapes* the paper reports rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.baselines.snuba import SnubaBaseline
from repro.config import ClassifierConfig, DarwinConfig
from repro.core.darwin import Darwin
from repro.core.oracle import GroundTruthOracle
from repro.datasets import load_dataset
from repro.datasets.registry import load_bank
from repro.grammars import TokensRegexGrammar, TreeMatchGrammar
from repro.labeling.pipeline import WeakSupervisionPipeline


@pytest.fixture(scope="module")
def integration_config() -> DarwinConfig:
    return DarwinConfig(
        budget=40,
        num_candidates=400,
        min_coverage=2,
        classifier=ClassifierConfig(epochs=35, embedding_dim=40),
    )


class TestDirectionsEndToEnd:
    @pytest.fixture(scope="class")
    def run(self, integration_config):
        corpus = load_dataset("directions", num_sentences=1200, seed=21, parse_trees=False)
        darwin = Darwin(corpus, config=integration_config)
        oracle = GroundTruthOracle(corpus)
        bank = load_bank("directions")
        result = darwin.run(oracle, seed_rule_texts=bank.default_seed_rules)
        return corpus, result

    def test_reaches_high_coverage_with_limited_questions(self, run):
        _, result = run
        assert result.final_recall >= 0.6
        assert result.queries_used <= 40

    def test_discovers_lexically_distant_rules(self, run):
        """The headline qualitative claim: rules far from the seed are found."""
        _, result = run
        accepted_text = " ".join(result.accepted_rules())
        seed_tokens = {"best", "way", "to", "get"}
        distant = [
            rule for rule in result.accepted_rules()
            if not (set(rule.split()) & seed_tokens)
        ]
        assert distant, f"only seed-like rules were found: {accepted_text}"

    def test_classifier_f1_reaches_usable_level(self, run):
        _, result = run
        assert max(result.f1_curve(), default=0.0) >= 0.6

    def test_rules_remain_precise(self, run):
        corpus, result = run
        positives = corpus.positive_ids()
        for rule in result.rule_set.rules:
            assert rule.precision(positives) >= 0.8

    def test_beats_snuba_with_equal_seed_information(self, run, integration_config):
        corpus, darwin_result = run
        truth = sorted(corpus.positive_ids())
        negatives = sorted(set(range(len(corpus))) - set(truth))
        # Snuba gets 25 labeled sentences (2 positives guaranteed), like Fig. 7.
        subset = truth[:2] + negatives[:23]
        snuba_result = SnubaBaseline(corpus).run(subset)
        assert darwin_result.final_recall > snuba_result.coverage


class TestMusiciansEndToEnd:
    def test_coverage_and_denoising(self, integration_config):
        corpus = load_dataset("musicians", num_sentences=1000, seed=9, parse_trees=False)
        darwin = Darwin(corpus, config=integration_config)
        result = darwin.run(
            GroundTruthOracle(corpus), seed_rule_texts=["composer"], budget=30
        )
        assert result.final_recall >= 0.5

        pipeline = WeakSupervisionPipeline(corpus, featurizer=darwin.featurizer)
        direct = pipeline.train_end_classifier(result.rule_set, use_label_model=False)
        denoised = pipeline.train_end_classifier(result.rule_set, use_label_model=True)
        # Table 2 shape: de-noising neither rescues nor destroys good rules.
        assert abs(direct.f1 - denoised.f1) < 0.35
        assert direct.f1 > 0.4


class TestTreeMatchEndToEnd:
    def test_darwin_with_treematch_grammar(self):
        corpus = load_dataset("professions", num_sentences=700, seed=13,
                              positive_fraction=0.08, parse_trees=True)
        config = DarwinConfig(
            budget=15, num_candidates=300, min_coverage=2, max_sketch_depth=5,
            classifier=ClassifierConfig(epochs=20, embedding_dim=30),
        )
        grammars = [TokensRegexGrammar(max_phrase_len=3), TreeMatchGrammar(max_pattern_size=3)]
        darwin = Darwin(corpus, grammars=grammars, config=config)
        result = darwin.run(
            GroundTruthOracle(corpus), seed_rule_texts=["works as a"]
        )
        assert result.queries_used <= 15
        assert result.rule_set.coverage_size() > 0
        # The index must actually contain TreeMatch candidates.
        treematch_keys = [k for k in darwin.index.keys() if k[0] == "treematch"]
        assert treematch_keys

    def test_treematch_rule_can_seed_darwin(self):
        corpus = load_dataset("professions", num_sentences=500, seed=3,
                              positive_fraction=0.08, parse_trees=True)
        config = DarwinConfig(
            budget=8, num_candidates=200, min_coverage=2, max_sketch_depth=4,
            classifier=ClassifierConfig(epochs=15, embedding_dim=30),
        )
        grammars = [TokensRegexGrammar(max_phrase_len=3), TreeMatchGrammar(max_pattern_size=3)]
        darwin = Darwin(corpus, grammars=grammars, config=config)
        seed = darwin.parse_seed_rule("works/as", grammar_name="treematch")
        if seed.coverage_size < 2:
            pytest.skip("parser did not produce the expected attachment on this sample")
        result = darwin.run(GroundTruthOracle(corpus), seed_rules=[seed])
        assert result.queries_used <= 8


class TestNoisyAnnotatorsEndToEnd:
    def test_majority_vote_recovers_most_coverage(self, integration_config):
        from repro.core.oracle import MajorityVoteOracle, SampleBasedOracle

        corpus = load_dataset("directions", num_sentences=900, seed=5, parse_trees=False)
        bank = load_bank("directions")

        darwin_perfect = Darwin(corpus, config=integration_config)
        perfect = darwin_perfect.run(
            GroundTruthOracle(corpus), seed_rule_texts=bank.default_seed_rules, budget=25
        )

        crowd = MajorityVoteOracle([
            SampleBasedOracle(corpus, label_noise=0.1, seed=100 + i)
            for i in range(3)
        ])
        darwin_crowd = Darwin(
            corpus, config=integration_config,
            index=darwin_perfect.index, featurizer=darwin_perfect.featurizer,
        )
        noisy = darwin_crowd.run(
            crowd, seed_rule_texts=bank.default_seed_rules, budget=25
        )
        assert noisy.final_recall >= perfect.final_recall * 0.5
