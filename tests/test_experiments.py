"""Tests for the experiment drivers (small-scale versions of each figure/table)."""

from __future__ import annotations

import pytest

from repro.config import ClassifierConfig, DarwinConfig
from repro.experiments.annotators import annotator_experiment
from repro.experiments.common import ExperimentSetting, prepare_dataset
from repro.experiments.coverage_curves import coverage_experiment
from repro.experiments.dataset_stats import format_table1, table1
from repro.experiments.efficiency import efficiency_experiment
from repro.experiments.fscore_curves import fscore_experiment
from repro.experiments.seed_size import sample_labeled_subset, seed_size_experiment
from repro.experiments.sensitivity import (
    candidate_sweep,
    epoch_sweep,
    seed_rule_sweep,
    tau_sweep,
)
from repro.experiments.snorkel_table import snorkel_experiment
from repro.experiments.traversal_traces import traversal_trace_experiment


@pytest.fixture(scope="module")
def small_setting() -> ExperimentSetting:
    """A shared small directions setting for all experiment-driver tests."""
    config = DarwinConfig(
        budget=20, num_candidates=200, min_coverage=2,
        classifier=ClassifierConfig(epochs=25, embedding_dim=30),
    )
    return prepare_dataset("directions", scale=0.05, seed=4, config=config)


class TestCommon:
    def test_prepare_dataset_bundles_everything(self, small_setting):
        assert len(small_setting.corpus) > 300
        assert len(small_setting.index) > 100
        assert small_setting.seed_rule_texts
        assert small_setting.keyword_hints
        assert small_setting.biased_exclude_token == "shuttle"

    def test_run_darwin_helper(self, small_setting):
        result = small_setting.run_darwin(traversal="hybrid", budget=10)
        assert result.queries_used <= 10

    def test_make_oracle_threshold(self, small_setting):
        oracle = small_setting.make_oracle(precision_threshold=0.5)
        assert oracle.precision_threshold == 0.5


class TestTable1:
    def test_rows_and_formatting(self):
        rows = table1(scale=0.02, names=["directions", "musicians"])
        assert len(rows) == 2
        text = format_table1(rows)
        assert "directions" in text and "musicians" in text
        assert "Table 1" in text


class TestSeedSizeExperiment:
    def test_sampling_guarantees_positives(self, small_setting):
        subset = sample_labeled_subset(small_setting, size=25, seed=0)
        assert len(subset) == 25
        labels = [small_setting.corpus[i].label for i in subset]
        assert sum(labels) >= 2

    def test_biased_sampling_excludes_token(self, small_setting):
        subset = sample_labeled_subset(small_setting, size=40, seed=0, biased=True)
        for sentence_id in subset:
            assert "shuttle" not in small_setting.corpus[sentence_id].tokens

    def test_fig7_shape(self, small_setting):
        result = seed_size_experiment(
            small_setting, seed_sizes=(25, 150), budget=20,
        )
        assert set(result.series) == {"Snuba", "Darwin(HS)"}
        snuba = result.series["Snuba"]
        darwin = result.series["Darwin(HS)"]
        assert len(snuba) == len(darwin) == 2
        # Darwin with 25 seeds must beat Snuba with 25 seeds (the headline).
        assert darwin[0] > snuba[0]

    def test_fig8_biased(self, small_setting):
        result = seed_size_experiment(
            small_setting, seed_sizes=(40,), budget=20, biased=True,
        )
        assert result.metadata["biased"] is True
        assert result.series["Darwin(HS)"][0] >= result.series["Snuba"][0]


class TestCurveExperiments:
    def test_coverage_experiment_series(self, small_setting):
        result = coverage_experiment(
            small_setting, budget=12, methods=("Darwin(HS)", "highP")
        )
        assert set(result.series) == {"Darwin(HS)", "highP"}
        for series in result.series.values():
            assert len(series) <= 12
            assert all(0.0 <= v <= 1.0 for v in series)

    def test_coverage_experiment_rejects_unknown_method(self, small_setting):
        with pytest.raises(ValueError):
            coverage_experiment(small_setting, budget=5, methods=("Darwin(XX)",))

    def test_fscore_experiment_series(self, small_setting):
        result = fscore_experiment(
            small_setting, budget=10, methods=("Darwin(HS)", "AL", "KS")
        )
        assert set(result.series) == {"Darwin(HS)", "AL", "KS"}
        for series in result.series.values():
            assert all(0.0 <= v <= 1.0 for v in series)

    def test_fscore_experiment_rejects_unknown_method(self, small_setting):
        with pytest.raises(ValueError):
            fscore_experiment(small_setting, budget=5, methods=("SVM",))


class TestSnorkelExperiment:
    def test_table2_values(self, small_setting):
        result = snorkel_experiment(small_setting, budget=15)
        finals = result.final_values()
        assert set(finals) == {"Darwin", "Darwin+Snorkel"}
        assert all(0.0 <= v <= 1.0 for v in finals.values())
        assert result.metadata["num_rules"] >= 1


class TestSensitivity:
    def test_tau_sweep(self, small_setting):
        result = tau_sweep(small_setting, taus=(3, 7), budget=10)
        assert set(result.series) == {"tau=3", "tau=7"}

    def test_seed_rule_sweep(self, small_setting):
        result = seed_rule_sweep(
            small_setting,
            seed_rules=("shuttle", "best way to get to"),
            budget=10,
        )
        assert set(result.series) == {"Rule 1", "Rule 2"}

    def test_candidate_sweep(self, small_setting):
        result = candidate_sweep(small_setting, candidate_counts=(100, 1000), budget=8)
        assert set(result.series) == {"100", "1K"}

    def test_epoch_sweep(self, small_setting):
        result = epoch_sweep(small_setting, epochs=(5, 10), budget=15, target_coverage=0.5)
        values = result.series["questions_to_target"]
        assert len(values) == 2
        assert all(1 <= v <= 15 for v in values)


class TestEfficiencyAndAnnotators:
    def test_efficiency_experiment(self):
        result = efficiency_experiment(
            dataset="directions", scales=(0.04, 0.08), budget=5,
            config=DarwinConfig(budget=5, num_candidates=100,
                                classifier=ClassifierConfig(epochs=10, embedding_dim=20)),
        )
        sizes = result.metadata["corpus_sizes"]
        assert len(sizes) == 2 and sizes[0] < sizes[1]
        assert all(t >= 0.0 for t in result.series["index_build"])

    def test_annotator_experiment(self, small_setting):
        result = annotator_experiment(small_setting, budget=12, flip_prob=0.2)
        assert "perfect oracle" in result.series
        assert "crowd (majority of 3)" in result.series
        imprecise = result.metadata["imprecise_accepted_rules"]
        assert imprecise["perfect oracle"] == 0

    def test_traversal_trace(self, small_setting):
        result = traversal_trace_experiment(small_setting, budget=10)
        trace = result.metadata["trace"]
        assert len(trace) <= 10
        assert all(entry["answer"] in {"YES", "NO"} for entry in trace)
        assert result.metadata["accepted_rules"] == [
            entry["rule"] for entry in trace if entry["answer"] == "YES"
        ]
