"""Tests for the weak-supervision label aggregation substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.labeling.label_matrix import ABSTAIN, LabelMatrix, NEGATIVE, POSITIVE
from repro.labeling.label_model import GenerativeLabelModel
from repro.labeling.majority_vote import majority_vote
from repro.labeling.pipeline import WeakSupervisionPipeline
from repro.rules.heuristic import LabelingHeuristic
from repro.rules.rule_set import RuleSet


class TestLabelMatrix:
    def test_from_rule_set(self, tokensregex, example1_corpus):
        rule = LabelingHeuristic(tokensregex, ("best", "way")).evaluate(example1_corpus)
        matrix = LabelMatrix.from_rule_set(RuleSet([rule]), example1_corpus)
        assert matrix.num_sentences == 6
        assert matrix.num_rules == 1
        assert matrix.votes[0, 0] == POSITIVE
        assert matrix.votes[1, 0] == ABSTAIN

    def test_from_coverages(self):
        matrix = LabelMatrix.from_coverages([{0, 1}, {1, 2}], num_sentences=4)
        assert matrix.votes.shape == (4, 2)
        assert matrix.coverage_mask().tolist() == [True, True, True, False]
        assert matrix.overlap_mask().tolist() == [False, True, False, False]

    def test_conflict_mask(self):
        votes = np.array([[POSITIVE, NEGATIVE], [POSITIVE, ABSTAIN], [ABSTAIN, ABSTAIN]])
        matrix = LabelMatrix(votes)
        assert matrix.conflict_mask().tolist() == [True, False, False]

    def test_summary(self):
        votes = np.array([[POSITIVE, ABSTAIN], [ABSTAIN, ABSTAIN]])
        summary = LabelMatrix(votes).summary()
        assert summary["coverage"] == pytest.approx(0.5)
        assert summary["num_rules"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LabelMatrix(np.array([[5]]))
        with pytest.raises(ValueError):
            LabelMatrix(np.zeros(3))
        with pytest.raises(ValueError):
            LabelMatrix(np.zeros((2, 2), dtype=int), rule_names=["only-one"])

    def test_empty_rule_set(self, example1_corpus):
        matrix = LabelMatrix.from_rule_set(RuleSet(), example1_corpus)
        assert matrix.num_sentences == 6
        assert not matrix.coverage_mask().any()


class TestMajorityVote:
    def test_unanimous_positive(self):
        matrix = LabelMatrix(np.array([[POSITIVE, POSITIVE], [ABSTAIN, ABSTAIN]]))
        probs = majority_vote(matrix, default=0.25)
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.25)

    def test_split_vote(self):
        matrix = LabelMatrix(np.array([[POSITIVE, NEGATIVE]]))
        assert majority_vote(matrix)[0] == pytest.approx(0.5)

    def test_negative_votes(self):
        matrix = LabelMatrix(np.array([[NEGATIVE, NEGATIVE, POSITIVE]]))
        assert majority_vote(matrix)[0] == pytest.approx(1 / 3)


class TestGenerativeLabelModel:
    def _synthetic_matrix(self, n=300, accuracies=(0.9, 0.75, 0.6), seed=0):
        rng = np.random.default_rng(seed)
        truth = rng.random(n) < 0.3
        votes = np.full((n, len(accuracies)), ABSTAIN, dtype=np.int64)
        for j, accuracy in enumerate(accuracies):
            voted = rng.random(n) < 0.7
            correct = rng.random(n) < accuracy
            value = np.where(correct, truth, ~truth)
            votes[voted, j] = value[voted].astype(np.int64)
        return LabelMatrix(votes), truth

    def test_recovers_labels_better_than_majority(self):
        matrix, truth = self._synthetic_matrix()
        model = GenerativeLabelModel().fit(matrix)
        model_preds = model.predict() == 1
        mv_preds = majority_vote(matrix) >= 0.5
        model_accuracy = (model_preds == truth).mean()
        mv_accuracy = (mv_preds == truth).mean()
        assert model_accuracy >= mv_accuracy - 0.02

    def test_accuracy_ordering_recovered(self):
        matrix, _ = self._synthetic_matrix(n=800, accuracies=(0.95, 0.55))
        model = GenerativeLabelModel().fit(matrix)
        accuracies = model.rule_accuracies()
        assert accuracies[0] > accuracies[1]

    def test_predict_proba_on_new_matrix(self):
        matrix, _ = self._synthetic_matrix()
        model = GenerativeLabelModel().fit(matrix)
        probs = model.predict_proba(matrix)
        assert probs.shape == (matrix.num_sentences,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_use_before_fit_raises(self):
        model = GenerativeLabelModel()
        with pytest.raises(EvaluationError):
            model.predict_proba()
        with pytest.raises(EvaluationError):
            model.rule_accuracies()

    def test_empty_matrix_rejected(self):
        with pytest.raises(EvaluationError):
            GenerativeLabelModel().fit(LabelMatrix(np.zeros((0, 1), dtype=np.int64)))

    def test_validation_of_parameters(self):
        with pytest.raises(EvaluationError):
            GenerativeLabelModel(max_iterations=0)
        with pytest.raises(EvaluationError):
            GenerativeLabelModel(accuracy_prior_value=1.5)


class TestWeakSupervisionPipeline:
    @pytest.fixture(scope="class")
    def darwin_like_rules(self, directions_corpus):
        from repro.grammars.tokensregex import TokensRegexGrammar

        grammar = TokensRegexGrammar()
        phrases = [("best", "way", "to", "get"), ("shuttle",), ("bart",), ("directions",)]
        rules = RuleSet()
        for phrase in phrases:
            rule = LabelingHeuristic(grammar, phrase).evaluate(directions_corpus)
            if rule.coverage_size:
                rules.add(rule)
        return rules

    def test_weak_labels_majority_and_model(self, directions_corpus, darwin_like_rules,
                                            directions_featurizer):
        pipeline = WeakSupervisionPipeline(
            directions_corpus, featurizer=directions_featurizer
        )
        raw = pipeline.weak_labels(darwin_like_rules, use_label_model=False)
        denoised = pipeline.weak_labels(darwin_like_rules, use_label_model=True)
        assert raw.shape == denoised.shape == (len(directions_corpus),)
        covered = raw > 0.5
        # De-noised labels must abstain (probability 0) outside rule coverage.
        assert np.all(denoised[~covered & (raw == 0.0)] == 0.0)

    def test_end_classifier_beats_random(self, directions_corpus, darwin_like_rules,
                                         directions_featurizer):
        pipeline = WeakSupervisionPipeline(
            directions_corpus, featurizer=directions_featurizer
        )
        result = pipeline.train_end_classifier(darwin_like_rules, use_label_model=False)
        assert result.f1 > 0.2
        assert 0.0 <= result.label_f1 <= 1.0

    def test_label_model_does_not_destroy_quality(self, directions_corpus, darwin_like_rules,
                                                  directions_featurizer):
        pipeline = WeakSupervisionPipeline(
            directions_corpus, featurizer=directions_featurizer
        )
        direct = pipeline.train_end_classifier(darwin_like_rules, use_label_model=False)
        denoised = pipeline.train_end_classifier(darwin_like_rules, use_label_model=True)
        assert denoised.f1 >= direct.f1 - 0.25

    def test_empty_rule_set(self, directions_corpus, directions_featurizer):
        pipeline = WeakSupervisionPipeline(
            directions_corpus, featurizer=directions_featurizer
        )
        result = pipeline.train_end_classifier(RuleSet(), use_label_model=False)
        assert result.f1 == 0.0
