"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "directions"
        assert args.traversal == "hybrid"
        assert args.budget == 60

    def test_run_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "reviews"])

    def test_compare_flags(self):
        args = build_parser().parse_args(
            ["compare", "--dataset", "musicians", "--seed-size", "50", "--biased"]
        )
        assert args.seed_size == 50
        assert args.biased is True


class TestCommands:
    def test_datasets_command_prints_table(self, capsys):
        exit_code = main(["datasets", "--scale", "0.02"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("directions", "musicians", "cause-effect", "professions", "tweets"):
            assert name in output

    def test_run_command_small(self, capsys):
        exit_code = main([
            "run", "--dataset", "directions", "--num-sentences", "500",
            "--budget", "8", "--epochs", "15", "--seed", "3",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accepted" in output
        assert "coverage (recall over positives)" in output
        assert "progress by #questions" in output

    def test_run_command_with_explicit_seed_rule(self, capsys):
        exit_code = main([
            "run", "--dataset", "musicians", "--num-sentences", "500",
            "--budget", "5", "--epochs", "10", "--seed-rule", "composer",
        ])
        assert exit_code == 0
        assert "composer" in capsys.readouterr().out

    def test_compare_command_small(self, capsys):
        exit_code = main([
            "compare", "--dataset", "directions", "--scale", "0.04",
            "--seed-size", "25", "--budget", "10",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Snuba" in output
        assert "Darwin(HS)" in output
