"""Tests for evaluation metrics, the runner helpers, and report formatting."""

from __future__ import annotations

import pytest

from repro.evaluation.metrics import (
    binary_f1,
    binary_precision,
    binary_recall,
    coverage_recall,
    f1_from_counts,
    precision_recall_f1,
)
from repro.evaluation.reporting import format_curve_table, format_table
from repro.evaluation.runner import ExperimentResult, average_curves, run_trials


class TestMetrics:
    def test_precision_recall_f1_basic(self):
        predicted = {1, 2, 3, 4}
        actual = {3, 4, 5, 6}
        assert binary_precision(predicted, actual) == pytest.approx(0.5)
        assert binary_recall(predicted, actual) == pytest.approx(0.5)
        assert binary_f1(predicted, actual) == pytest.approx(0.5)

    def test_empty_sets(self):
        assert binary_precision(set(), {1}) == 0.0
        assert binary_recall({1}, set()) == 0.0
        assert binary_f1(set(), set()) == 0.0

    def test_perfect_prediction(self):
        assert binary_f1({1, 2}, {1, 2}) == pytest.approx(1.0)

    def test_precision_recall_f1_dict(self):
        metrics = precision_recall_f1({1, 2}, {2, 3})
        assert set(metrics) == {"precision", "recall", "f1"}
        assert metrics["f1"] == pytest.approx(0.5)

    def test_f1_from_counts_matches_set_version(self):
        predicted = {1, 2, 3, 4}
        actual = {3, 4, 5}
        from_sets = binary_f1(predicted, actual)
        from_counts = f1_from_counts(
            true_positive=len(predicted & actual),
            predicted_positive=len(predicted),
            actual_positive=len(actual),
        )
        assert from_sets == pytest.approx(from_counts)

    def test_f1_from_counts_degenerate(self):
        assert f1_from_counts(0, 10, 10) == 0.0
        assert f1_from_counts(5, 0, 10) == 0.0

    def test_coverage_recall_alias(self):
        assert coverage_recall({1, 2}, {1, 2, 3, 4}) == pytest.approx(0.5)

    def test_metrics_accept_iterables(self):
        assert binary_recall([1, 1, 2], [1, 2]) == pytest.approx(1.0)


class TestRunner:
    def test_run_trials(self):
        curves = run_trials(lambda seed: [seed, seed + 1], num_trials=3, base_seed=10)
        assert curves == [[10, 11], [11, 12], [12, 13]]

    def test_run_trials_validation(self):
        with pytest.raises(ValueError):
            run_trials(lambda seed: [], num_trials=0)

    def test_average_curves_pads_shorter(self):
        averaged = average_curves([[1.0, 1.0, 1.0], [0.0]])
        assert averaged == [0.5, 0.5, 0.5]

    def test_average_curves_empty(self):
        assert average_curves([]) == []
        assert average_curves([[], []]) == []

    def test_experiment_result_series(self):
        result = ExperimentResult(name="exp")
        result.add_series("a", [0.1, 0.2])
        result.add_series("b", [])
        assert result.final_values() == {"a": 0.2, "b": 0.0}


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["col", "value"], [["x", 1.23456], ["longer", 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1] and "value" in lines[1]
        assert "1.235" in text
        assert len(lines) == 2 + 1 + 2  # title + header + separator + rows

    def test_format_table_handles_short_rows(self):
        text = format_table(["a", "b"], [["only"]])
        assert "only" in text

    def test_format_curve_table_sampling(self):
        curves = {"m": [float(i) / 100 for i in range(1, 101)]}
        text = format_curve_table(curves, step=25, title="curves")
        assert "curves" in text
        assert "25" in text and "100" in text
        assert "0.250" in text and "1.000" in text

    def test_format_curve_table_empty(self):
        assert format_curve_table({}, title="empty") == "empty"

    def test_format_curve_table_explicit_x(self):
        curves = {"m": [0.1, 0.2, 0.3]}
        text = format_curve_table(curves, x_values=[1, 3], x_label="#Q")
        assert "#Q" in text
        assert "0.100" in text and "0.300" in text
