"""Tests for LabelingHeuristic and RuleSet."""

from __future__ import annotations

import pytest

from repro.rules.heuristic import LabelingHeuristic
from repro.rules.rule_set import RuleSet


@pytest.fixture()
def best_way_rule(tokensregex, example1_corpus) -> LabelingHeuristic:
    rule = LabelingHeuristic(grammar=tokensregex, expression=("best", "way", "to"))
    return rule.evaluate(example1_corpus)


class TestLabelingHeuristic:
    def test_evaluate_computes_coverage(self, best_way_rule):
        assert set(best_way_rule.coverage) == {0, 2, 5}
        assert best_way_rule.coverage_size == 3

    def test_coverage_before_evaluation_raises(self, tokensregex):
        rule = LabelingHeuristic(grammar=tokensregex, expression=("best",))
        with pytest.raises(ValueError):
            _ = rule.coverage
        assert rule.coverage_size == 0

    def test_matches_single_sentence(self, best_way_rule, example1_corpus):
        assert best_way_rule.matches(example1_corpus[0])
        assert not best_way_rule.matches(example1_corpus[1])

    def test_precision(self, best_way_rule, example1_corpus):
        precision = best_way_rule.precision(example1_corpus.positive_ids())
        assert precision == pytest.approx(1 / 3)

    def test_precision_empty_coverage(self, tokensregex):
        rule = LabelingHeuristic(tokensregex, ("zzz",)).with_coverage([])
        assert rule.precision({1, 2}) == 0.0

    def test_new_positives(self, best_way_rule):
        assert best_way_rule.new_positives({0, 2}) == {5}

    def test_equality_ignores_coverage(self, tokensregex):
        a = LabelingHeuristic(tokensregex, ("best",)).with_coverage([1])
        b = LabelingHeuristic(tokensregex, ("best",)).with_coverage([1, 2])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_across_expressions(self, tokensregex):
        a = LabelingHeuristic(tokensregex, ("best",))
        b = LabelingHeuristic(tokensregex, ("way",))
        assert a != b

    def test_render_and_repr(self, best_way_rule):
        assert best_way_rule.render() == "best way to"
        assert "best way to" in repr(best_way_rule)


class TestRuleSet:
    def test_add_and_union_coverage(self, tokensregex):
        r1 = LabelingHeuristic(tokensregex, ("a",)).with_coverage([1, 2])
        r2 = LabelingHeuristic(tokensregex, ("b",)).with_coverage([2, 3])
        rules = RuleSet([r1])
        assert rules.add(r2)
        assert rules.covered_ids == {1, 2, 3}
        assert rules.coverage_size() == 3
        assert len(rules) == 2

    def test_duplicate_add_is_noop(self, tokensregex):
        r1 = LabelingHeuristic(tokensregex, ("a",)).with_coverage([1])
        rules = RuleSet([r1])
        assert not rules.add(r1)
        assert len(rules) == 1

    def test_recall_and_precision(self, tokensregex):
        rule = LabelingHeuristic(tokensregex, ("a",)).with_coverage([1, 2, 3, 4])
        rules = RuleSet([rule])
        positives = {1, 2, 5, 6}
        assert rules.recall(positives) == pytest.approx(0.5)
        assert rules.precision(positives) == pytest.approx(0.5)

    def test_recall_with_no_positives(self, tokensregex):
        rules = RuleSet([LabelingHeuristic(tokensregex, ("a",)).with_coverage([1])])
        assert rules.recall(set()) == 0.0

    def test_empty_ruleset_metrics(self):
        rules = RuleSet()
        assert rules.recall({1}) == 0.0
        assert rules.precision({1}) == 0.0
        assert rules.coverage_size() == 0

    def test_marginal_gain(self, tokensregex):
        r1 = LabelingHeuristic(tokensregex, ("a",)).with_coverage([1, 2])
        r2 = LabelingHeuristic(tokensregex, ("b",)).with_coverage([2, 3, 4])
        rules = RuleSet([r1])
        assert rules.marginal_gain(r2) == 2

    def test_label_vector(self, tokensregex, example1_corpus):
        rule = LabelingHeuristic(tokensregex, ("best", "way")).evaluate(example1_corpus)
        rules = RuleSet([rule])
        labels = rules.label_vector(example1_corpus)
        assert labels[0] is True
        assert labels[1] is False
        assert len(labels) == len(example1_corpus)

    def test_describe_and_contains(self, tokensregex):
        rule = LabelingHeuristic(tokensregex, ("a", "b")).with_coverage([1])
        rules = RuleSet([rule])
        assert rules.describe() == ["a b"]
        assert rule in rules
