"""Tests for derivation sketches and the corpus index."""

from __future__ import annotations

import pytest

from repro.errors import CorpusIndexError
from repro.grammars.tokensregex import TokensRegexGrammar
from repro.index.sketch import build_sketch
from repro.index.trie_index import CorpusIndex, ROOT_KEY


class TestDerivationSketch:
    def test_sketch_contains_all_ngrams(self, example1_corpus, tokensregex):
        sentence = example1_corpus[0]
        sketch = build_sketch(sentence, [tokensregex], max_depth=3)
        assert (tokensregex.name, ("best", "way", "to")) in sketch
        assert (tokensregex.name, ("what",)) in sketch
        assert len(sketch) > len(sentence)

    def test_sketch_depth_limits(self, example1_corpus, tokensregex):
        sentence = example1_corpus[0]
        shallow = build_sketch(sentence, [tokensregex], max_depth=1)
        deep = build_sketch(sentence, [tokensregex], max_depth=4)
        assert len(shallow) < len(deep)

    def test_sketch_records_complexity(self, example1_corpus, tokensregex):
        sketch = build_sketch(example1_corpus[0], [tokensregex], max_depth=3)
        assert sketch.entries[(tokensregex.name, ("best", "way"))] == 2

    def test_keys_listing(self, example1_corpus, tokensregex):
        sketch = build_sketch(example1_corpus[0], [tokensregex], max_depth=2)
        assert set(sketch.keys()) == set(sketch.entries)


class TestCorpusIndexConstruction:
    def test_counts_match_figure6(self, example1_index, tokensregex):
        # Figure 6: 'way to' is contained in both s1 and s4 (ids 0 and 3).
        assert example1_index.coverage((tokensregex.name, ("way", "to"))) >= {0, 3}
        assert example1_index.count((tokensregex.name, ("best", "way"))) == 3

    def test_root_covers_all_sentences(self, example1_index, example1_corpus):
        assert example1_index.coverage(ROOT_KEY) == set(range(len(example1_corpus)))
        assert example1_index.num_sentences == len(example1_corpus)

    def test_children_are_specializations(self, example1_index, tokensregex):
        key = (tokensregex.name, ("best", "way"))
        for child in example1_index.children_of(key):
            child_coverage = example1_index.coverage(child)
            assert child_coverage <= example1_index.coverage(key)

    def test_parent_coverage_superset(self, example1_index):
        for key in example1_index.keys():
            node = example1_index.node(key)
            for parent_key in node.parents:
                if parent_key == ROOT_KEY:
                    continue
                assert node.sentence_ids <= example1_index.coverage(parent_key)

    def test_unigrams_hang_off_root(self, example1_index, tokensregex):
        root_children = example1_index.root_children()
        assert (tokensregex.name, ("best",)) in root_children

    def test_requires_grammar(self):
        with pytest.raises(CorpusIndexError):
            CorpusIndex([])

    def test_duplicate_grammar_names_rejected(self, tokensregex):
        with pytest.raises(CorpusIndexError):
            CorpusIndex([tokensregex, TokensRegexGrammar()])

    def test_min_coverage_prunes(self, example1_corpus, tokensregex):
        full = CorpusIndex.build(example1_corpus, [tokensregex], max_depth=4)
        pruned = CorpusIndex.build(
            example1_corpus, [tokensregex], max_depth=4, min_coverage=2
        )
        assert len(pruned) < len(full)
        for key in pruned.keys():
            assert pruned.count(key) >= 2

    def test_merge_equals_monolithic_build(self, example1_corpus, tokensregex):
        whole = CorpusIndex.build(example1_corpus, [tokensregex], max_depth=3)
        left = CorpusIndex(grammars=[tokensregex], max_depth=3)
        right = CorpusIndex(grammars=[tokensregex], max_depth=3)
        from repro.index.sketch import build_sketch

        for sentence in example1_corpus:
            sketch = build_sketch(sentence, [tokensregex], 3)
            (left if sentence.sentence_id < 3 else right).add_sketch(sketch)
        left.link_structure()
        right.link_structure()
        merged = left.merge(right)
        assert set(merged.keys()) == set(whole.keys())
        for key in whole.keys():
            assert merged.coverage(key) == whole.coverage(key)

    def test_merge_applies_pruning_and_built_flag(self, example1_corpus, tokensregex):
        """A merged chunk index must match a directly built one even when
        min_coverage pruning applies (regression: merge used to skip
        prune() and never set _built)."""
        whole = CorpusIndex.build(
            example1_corpus, [tokensregex], max_depth=3, min_coverage=2
        )
        left = CorpusIndex(grammars=[tokensregex], max_depth=3, min_coverage=2)
        right = CorpusIndex(grammars=[tokensregex], max_depth=3, min_coverage=2)
        from repro.index.sketch import build_sketch

        for sentence in example1_corpus:
            sketch = build_sketch(sentence, [tokensregex], 3)
            (left if sentence.sentence_id < 3 else right).add_sketch(sketch)
        left.link_structure()
        right.link_structure()
        merged = left.merge(right)
        assert merged._built
        assert merged.sealed
        assert set(merged.keys()) == set(whole.keys())
        for key in whole.keys():
            assert merged.coverage(key) == whole.coverage(key)
            assert merged.count(key) >= 2
        for key in whole.keys():
            assert set(merged.children_of(key)) == set(whole.children_of(key))

    def test_sealed_index_hands_out_interned_views(self, example1_index, tokensregex):
        from repro.index.coverage import CoverageView

        assert example1_index.sealed
        key = (tokensregex.name, ("best", "way"))
        first = example1_index.coverage(key)
        second = example1_index.coverage(key)
        assert isinstance(first, CoverageView)
        assert first is second  # no per-call copies
        # Nodes with identical coverage share one interned view.
        rule = example1_index.heuristic(key)
        assert rule.coverage_view is first

    def test_keys_covering_matches_node_coverage(self, example1_index):
        for sid in range(example1_index.num_sentences):
            for key in example1_index.keys_covering(sid):
                assert sid in example1_index.coverage(key)
        # Inverted map and forward lists agree on total size.
        total_forward = sum(
            example1_index.count(key) for key in example1_index.keys()
        )
        total_inverted = sum(
            len(example1_index.keys_covering(sid))
            for sid in range(example1_index.num_sentences)
        )
        assert total_forward == total_inverted


class TestCorpusIndexLookups:
    def test_heuristic_materialization(self, example1_index, tokensregex):
        key = (tokensregex.name, ("best", "way", "to"))
        rule = example1_index.heuristic(key)
        assert rule.coverage == frozenset({0, 2, 5})
        assert rule.render() == "best way to"

    def test_heuristic_for_root_rejected(self, example1_index):
        with pytest.raises(CorpusIndexError):
            example1_index.heuristic(ROOT_KEY)

    def test_missing_node_raises(self, example1_index, tokensregex):
        with pytest.raises(CorpusIndexError):
            example1_index.node((tokensregex.name, ("zzz",)))
        assert example1_index.count((tokensregex.name, ("zzz",))) == 0

    def test_lookup_and_scan_fallback(self, example1_index, example1_corpus, tokensregex):
        assert example1_index.lookup(tokensregex.name, ("best",)) is not None
        # A phrase longer than the sketch depth is not indexed but can be
        # resolved through a corpus scan.
        long_phrase = ("what", "is", "the", "best", "way", "to", "get")
        assert example1_index.lookup(tokensregex.name, long_phrase) is None
        coverage = example1_index.coverage_of_expression(
            tokensregex.name, long_phrase, example1_corpus
        )
        assert coverage == {0}

    def test_unknown_grammar_rejected(self, example1_index):
        with pytest.raises(CorpusIndexError):
            example1_index.key_for("nope", ("a",))

    def test_top_by_coverage(self, example1_index):
        top = example1_index.top_by_coverage(5)
        counts = [example1_index.count(k) for k in top]
        assert counts == sorted(counts, reverse=True)
        assert len(top) == 5

    def test_top_by_overlap(self, example1_index):
        ranked = example1_index.top_by_overlap({0, 3}, limit=10)
        assert ranked
        overlaps = [overlap for _, overlap in ranked]
        assert overlaps == sorted(overlaps, reverse=True)

    def test_stats(self, example1_index):
        stats = example1_index.stats()
        assert stats["num_sentences"] == 6
        assert stats["max_coverage"] >= stats["mean_coverage"]
