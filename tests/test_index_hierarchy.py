"""Tests for the rule hierarchy and the hierarchy builder."""

from __future__ import annotations

import pytest

from repro.core.hierarchy_builder import build_hierarchy, expand_rule_neighbourhood
from repro.errors import TraversalError
from repro.index.hierarchy import RuleHierarchy
from repro.rules.heuristic import LabelingHeuristic


def rule(tokensregex, expression, coverage):
    return LabelingHeuristic(tokensregex, expression).with_coverage(coverage)


class TestRuleHierarchy:
    def test_add_and_edges(self, tokensregex):
        hierarchy = RuleHierarchy()
        parent = rule(tokensregex, ("way", "to"), [1, 2, 3])
        child = rule(tokensregex, ("best", "way", "to"), [1, 2])
        assert hierarchy.add(parent)
        assert hierarchy.add(child)
        assert not hierarchy.add(parent)
        hierarchy.add_edge(parent, child)
        assert hierarchy.children(parent) == [child]
        assert hierarchy.parents(child) == [parent]
        assert hierarchy.roots() == [parent]
        assert hierarchy.leaves() == [child]

    def test_add_requires_coverage(self, tokensregex):
        hierarchy = RuleHierarchy()
        with pytest.raises(TraversalError):
            hierarchy.add(LabelingHeuristic(tokensregex, ("a",)))

    def test_edge_requires_membership(self, tokensregex):
        hierarchy = RuleHierarchy()
        a = rule(tokensregex, ("a",), [1])
        b = rule(tokensregex, ("b",), [2])
        hierarchy.add(a)
        with pytest.raises(TraversalError):
            hierarchy.add_edge(a, b)

    def test_self_edge_ignored(self, tokensregex):
        hierarchy = RuleHierarchy()
        a = rule(tokensregex, ("a",), [1])
        hierarchy.add(a)
        hierarchy.add_edge(a, a)
        assert hierarchy.children(a) == []

    def test_remove_reconnects(self, tokensregex):
        hierarchy = RuleHierarchy()
        top = rule(tokensregex, ("a",), [1, 2, 3, 4])
        middle = rule(tokensregex, ("a", "b"), [1, 2, 3])
        bottom = rule(tokensregex, ("a", "b", "c"), [1])
        for r in (top, middle, bottom):
            hierarchy.add(r)
        hierarchy.add_edge(top, middle)
        hierarchy.add_edge(middle, bottom)
        hierarchy.remove(middle)
        assert bottom in hierarchy.children(top)
        assert top in hierarchy.parents(bottom)
        assert middle not in hierarchy

    def test_descendants_and_ancestors(self, tokensregex):
        hierarchy = RuleHierarchy()
        a = rule(tokensregex, ("a",), [1, 2, 3])
        b = rule(tokensregex, ("a", "b"), [1, 2])
        c = rule(tokensregex, ("a", "b", "c"), [1])
        for r in (a, b, c):
            hierarchy.add(r)
        hierarchy.add_edge(a, b)
        hierarchy.add_edge(b, c)
        assert hierarchy.descendants(a) == {b, c}
        assert hierarchy.ancestors(c) == {a, b}

    def test_cleanup_removes_zero_gain_rules(self, tokensregex):
        hierarchy = RuleHierarchy()
        useful = rule(tokensregex, ("a",), [1, 2, 9])
        useless = rule(tokensregex, ("b",), [1, 2])
        hierarchy.add(useful)
        hierarchy.add(useless)
        removed = hierarchy.cleanup(covered_ids={1, 2})
        assert removed == 1
        assert useful in hierarchy
        assert useless not in hierarchy

    def test_is_consistent(self, tokensregex):
        hierarchy = RuleHierarchy()
        small = rule(tokensregex, ("a", "b"), [1])
        large = rule(tokensregex, ("a",), [1, 2])
        hierarchy.add(small)
        hierarchy.add(large)
        hierarchy.add_edge(large, small)
        assert hierarchy.is_consistent()
        hierarchy2 = RuleHierarchy()
        hierarchy2.add(small)
        hierarchy2.add(large)
        hierarchy2.add_edge(small, large)
        assert not hierarchy2.is_consistent()


class TestFromRulesAndBuilder:
    def test_from_rules_discovers_subset_edges(self, tokensregex, example1_corpus):
        phrases = [("way",), ("way", "to"), ("best", "way", "to")]
        rules = [
            LabelingHeuristic(tokensregex, p).evaluate(example1_corpus) for p in phrases
        ]
        hierarchy = RuleHierarchy.from_rules(rules)
        assert hierarchy.is_consistent()
        general = rules[0]
        specific = rules[2]
        assert specific in hierarchy.descendants(general)

    def test_transitive_edges_removed(self, tokensregex, example1_corpus):
        phrases = [("way",), ("way", "to"), ("best", "way", "to")]
        rules = [
            LabelingHeuristic(tokensregex, p).evaluate(example1_corpus) for p in phrases
        ]
        hierarchy = RuleHierarchy.from_rules(rules)
        # 'best way to' should be a direct child of 'way to', not of 'way'.
        assert rules[2] not in hierarchy.children(rules[0])
        assert rules[2] in hierarchy.children(rules[1])

    def test_build_hierarchy_links_and_cleans(self, example1_index, tokensregex):
        keys = example1_index.top_by_coverage(30)
        candidates = [example1_index.heuristic(k) for k in keys]
        hierarchy = build_hierarchy(candidates, index=example1_index)
        assert len(hierarchy) == len(candidates)
        assert hierarchy.is_consistent()
        # Cleanup drops rules that add nothing beyond full coverage.
        everything = set(range(6))
        cleaned = build_hierarchy(candidates, covered_ids=everything)
        assert len(cleaned) == 0

    def test_expand_rule_neighbourhood_children(self, example1_index, example1_corpus, tokensregex):
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        children = expand_rule_neighbourhood(
            seed, example1_index, "children", corpus=example1_corpus
        )
        assert children
        for child in children:
            assert set(child.coverage) <= set(seed.coverage)

    def test_expand_rule_neighbourhood_parents(self, example1_index, example1_corpus, tokensregex):
        seed = example1_index.heuristic((tokensregex.name, ("best", "way", "to")))
        parents = expand_rule_neighbourhood(
            seed, example1_index, "parents", corpus=example1_corpus
        )
        assert parents
        for parent in parents:
            assert set(parent.coverage) >= set(seed.coverage)

    def test_expand_rule_neighbourhood_validates_direction(self, example1_index, tokensregex):
        seed = example1_index.heuristic((tokensregex.name, ("best",)))
        with pytest.raises(ValueError):
            expand_rule_neighbourhood(seed, example1_index, "siblings")
