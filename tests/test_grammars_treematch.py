"""Tests for the TreeMatch grammar."""

from __future__ import annotations

import pytest

from repro.errors import RuleParseError
from repro.grammars.treematch import TreeMatchGrammar, TreePattern
from repro.text.corpus import Corpus


@pytest.fixture(scope="module")
def parsed_corpus() -> Corpus:
    texts = [
        "Is Uber the best way to our hotel?",
        "The composer wrote a famous symphony in Vienna.",
        "Maria is a scientist at the city hospital.",
        "The outbreak was caused by contaminated water.",
    ]
    return Corpus.from_texts(texts, [True, False, False, False], name="treematch-corpus")


class TestTreePattern:
    def test_leaf_requires_label(self):
        with pytest.raises(RuleParseError):
            TreePattern(kind="label", label=None)

    def test_binary_requires_children(self):
        with pytest.raises(RuleParseError):
            TreePattern(kind="child", left=TreePattern.leaf("a"), right=None)

    def test_unknown_kind_rejected(self):
        with pytest.raises(RuleParseError):
            TreePattern(kind="sibling", left=TreePattern.leaf("a"), right=TreePattern.leaf("b"))

    def test_size_and_labels(self):
        pattern = TreePattern.conjunction(
            TreePattern.child(TreePattern.leaf("is"), TreePattern.leaf("NOUN")),
            TreePattern.leaf("job"),
        )
        assert pattern.size() == 5
        assert pattern.labels() == ["is", "NOUN", "job"]

    def test_hashable_and_equal(self):
        a = TreePattern.child(TreePattern.leaf("a"), TreePattern.leaf("b"))
        b = TreePattern.child(TreePattern.leaf("a"), TreePattern.leaf("b"))
        assert a == b
        assert hash(a) == hash(b)


class TestMatching:
    def setup_method(self):
        self.grammar = TreeMatchGrammar()

    def test_leaf_matches_token_and_pos(self, parsed_corpus):
        way_leaf = self.grammar.parse("way")
        noun_leaf = self.grammar.parse("NOUN")
        assert self.grammar.matches(way_leaf, parsed_corpus[0])
        assert self.grammar.matches(noun_leaf, parsed_corpus[0])

    def test_child_pattern(self, parsed_corpus):
        # 'way' heads 'best' (adjective attaches to following noun).
        pattern = self.grammar.parse("way/best")
        assert self.grammar.matches(pattern, parsed_corpus[0])

    def test_descendant_pattern_looser_than_child(self, parsed_corpus):
        sentence = parsed_corpus[0]
        for node in range(len(sentence.tree)):
            for descendant in sentence.tree.descendants(node):
                child_pattern = TreePattern.child(
                    TreePattern.leaf(sentence.tree.tokens[node]),
                    TreePattern.leaf(sentence.tree.tokens[descendant]),
                )
                desc_pattern = TreePattern.descendant(
                    TreePattern.leaf(sentence.tree.tokens[node]),
                    TreePattern.leaf(sentence.tree.tokens[descendant]),
                )
                if self.grammar.matches(child_pattern, sentence):
                    assert self.grammar.matches(desc_pattern, sentence)

    def test_conjunction(self, parsed_corpus):
        pattern = self.grammar.parse("way ∧ hotel")
        assert self.grammar.matches(pattern, parsed_corpus[0])
        pattern_missing = self.grammar.parse("way ∧ volcano")
        assert not self.grammar.matches(pattern_missing, parsed_corpus[0])

    def test_no_tree_means_no_match(self):
        from repro.text.sentence import Sentence

        sentence = Sentence(0, "a b", ("a", "b"))
        assert not self.grammar.matches(TreePattern.leaf("a"), sentence)

    def test_invalid_expression_type(self, parsed_corpus):
        with pytest.raises(RuleParseError):
            self.grammar.matches(("not", "a", "pattern"), parsed_corpus[0])


class TestEnumeration:
    def test_enumerated_patterns_all_match(self, parsed_corpus):
        grammar = TreeMatchGrammar(max_pattern_size=5)
        sentence = parsed_corpus[1]
        patterns = list(grammar.enumerate_expressions(sentence, max_depth=5))
        assert patterns
        for pattern in patterns:
            assert grammar.matches(pattern, sentence)

    def test_enumeration_includes_child_patterns(self, parsed_corpus):
        grammar = TreeMatchGrammar(max_pattern_size=3)
        patterns = list(grammar.enumerate_expressions(parsed_corpus[2], max_depth=5))
        assert any(p.kind == "child" for p in patterns)

    def test_size_one_limit_yields_only_leaves(self, parsed_corpus):
        grammar = TreeMatchGrammar(max_pattern_size=1)
        patterns = list(grammar.enumerate_expressions(parsed_corpus[0], max_depth=1))
        assert patterns
        assert all(p.kind == "label" for p in patterns)

    def test_pos_leaves_can_be_disabled(self, parsed_corpus):
        grammar = TreeMatchGrammar(include_pos_leaves=False)
        patterns = list(grammar.enumerate_expressions(parsed_corpus[0], max_depth=1))
        labels = {p.label for p in patterns if p.kind == "label"}
        assert "NOUN" not in labels


class TestNeighbourhoodAndParsing:
    def setup_method(self):
        self.grammar = TreeMatchGrammar()

    def test_generalizations_of_child_pattern(self):
        pattern = self.grammar.parse("way/best")
        parents = self.grammar.generalizations(pattern)
        rendered = {self.grammar.render(p) for p in parents}
        assert "way" in rendered
        assert "best" in rendered
        assert "way//best" in rendered

    def test_generalizations_of_leaf_empty(self):
        assert self.grammar.generalizations(TreePattern.leaf("way")) == []

    def test_specializations_match_witness(self, parsed_corpus):
        sentence = parsed_corpus[2]
        children = self.grammar.specializations(TreePattern.leaf("is"), sentence)
        assert children
        for child in children:
            assert self.grammar.matches(child, sentence)

    def test_parse_and_render_round_trip(self):
        for text in ("way/to", "is//NOUN", "way/to ∧ hotel", "/is/NOUN ∧ job"):
            pattern = self.grammar.parse(text)
            rendered = self.grammar.render(pattern)
            reparsed = self.grammar.parse(rendered)
            assert reparsed == pattern

    def test_parse_rejects_empty(self):
        with pytest.raises(RuleParseError):
            self.grammar.parse("")
        with pytest.raises(RuleParseError):
            self.grammar.parse("a ∧ ")

    def test_complexity_is_ast_size(self):
        assert self.grammar.complexity(self.grammar.parse("way/to")) == 3

    def test_formal_grammar_contains_operators(self):
        cfg = self.grammar.formal_grammar(["way", "NOUN"])
        assert "/" in cfg.terminals and "//" in cfg.terminals
