"""Tests for multi-tenant serving: the overlay store, the shared featurizer
cache, read-only arena attach, the tenant pool, and the serve loop.

The load-bearing properties:

* **isolation** — interleaved interns from two tenants over one shared store
  never perturb each other's views or the shared columns (hypothesis
  property, extending the arena==memory property to the overlay);
* **no double-compute** — tenants featurizing overlapping sentence ranges
  share one cache and identical vectors;
* **attach safety** — a read-only arena attach is digest-verified and refuses
  appends; ``close()`` is idempotent and releases the memory maps before the
  file could be unlinked (the pool's ``__exit__`` ordering).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifier.features import SentenceFeaturizer, SharedFeatureCache
from repro.config import ClassifierConfig, CrowdConfig, DarwinConfig, IndexConfig
from repro.engine.engine import DarwinEngine
from repro.engine.state import ArrayBundle
from repro.errors import ConfigurationError
from repro.index.arena import ArenaConfig, CoverageArena
from repro.index.coverage import CoverageStore
from repro.index.overlay import OverlayCoverageStore
from repro.serving import TenantPool, serve
from repro.serving.pool import SharedIndexView

SEED_RULE = "best way to get to"


def serving_config(tmp_path=None, budget=5, **overrides) -> DarwinConfig:
    index = IndexConfig()
    if tmp_path is not None:
        index = IndexConfig(
            coverage_backend="arena", arena_path=str(tmp_path / "pool.arena")
        )
    return DarwinConfig(
        budget=budget,
        num_candidates=250,
        min_coverage=2,
        classifier=ClassifierConfig(epochs=10, embedding_dim=30),
        index=index,
        **overrides,
    )


@pytest.fixture()
def shared_base(tmp_path) -> CoverageStore:
    """A small arena-backed base store, frozen read-only (the pool shape)."""
    store = CoverageStore(
        backend="arena", path=str(tmp_path / "base.arena"),
        arena_config=ArenaConfig(bitset_cache_bytes=1 << 16),
    )
    store.intern([1, 2, 3])
    store.intern([5, 9])
    store.intern(np.arange(0, 64, 2, dtype=np.int32))
    store.flush()
    store.arena.reopen_read_only()
    return store


class TestOverlayStore:
    def test_shared_coverages_resolve_to_base_views(self, shared_base):
        overlay = OverlayCoverageStore(shared_base)
        base_view = shared_base.find([1, 2, 3])
        assert overlay.intern([3, 2, 1]) is base_view
        assert overlay.num_overlay_interned == 0
        assert overlay.empty is shared_base.empty

    def test_new_interns_partition_the_id_space(self, shared_base):
        overlay = OverlayCoverageStore(shared_base)
        base_count = shared_base.num_interned
        first = overlay.intern([7, 11])
        second = overlay.intern([13])
        assert first.slot == base_count
        assert second.slot == base_count + 1
        assert overlay.num_interned == base_count + 2
        views = overlay.interned_views()
        assert views[first.slot] is first
        assert views[: base_count] == shared_base.interned_views()

    def test_base_is_never_written(self, shared_base):
        overlay = OverlayCoverageStore(shared_base)
        before = shared_base.num_interned
        overlay.intern([100, 200])
        overlay.union([[1, 2], [300]])
        assert shared_base.num_interned == before
        assert shared_base.find([100, 200]) is None
        with pytest.raises(ConfigurationError, match="read-only"):
            shared_base.intern([999])

    def test_two_overlays_are_isolated(self, shared_base):
        a = OverlayCoverageStore(shared_base)
        b = OverlayCoverageStore(shared_base)
        view_a = a.intern([42, 43])
        assert b.find([42, 43]) is None
        view_b = b.intern([42, 43])
        assert view_b is not view_a
        assert view_a.ids.tolist() == view_b.ids.tolist()
        assert view_a.slot == view_b.slot  # same partition point, own spaces

    def test_overlays_do_not_stack(self, shared_base):
        overlay = OverlayCoverageStore(shared_base)
        with pytest.raises(ConfigurationError, match="stack"):
            OverlayCoverageStore(overlay)

    def test_state_roundtrip_references_shared_arena(self, shared_base):
        overlay = OverlayCoverageStore(shared_base)
        local = overlay.intern([70, 71, 72])
        bundle = ArrayBundle()
        state = overlay.to_state(bundle)
        assert state["backend"] == "overlay"
        assert state["base"]["backend"] == "arena"
        assert state["base"]["arena"]["digest"] == shared_base.arena.digest
        assert state["base"]["arena"]["read_only"] is True

        restored = CoverageStore.from_state(state, bundle)
        assert isinstance(restored, OverlayCoverageStore)
        assert restored.base_count == overlay.base_count
        assert restored.interned_views()[local.slot].ids.tolist() == [70, 71, 72]
        assert restored.base.arena.read_only
        restored.base.close()

    def test_state_rejects_mismatched_partition(self, shared_base):
        overlay = OverlayCoverageStore(shared_base)
        overlay.intern([70])
        bundle = ArrayBundle()
        state = overlay.to_state(bundle)
        state["base_count"] = 99
        with pytest.raises(ConfigurationError, match="base_count"):
            CoverageStore.from_state(state, bundle)

    def test_mixed_universe_intersections_stay_exact(self, shared_base):
        # A tenant whose universe outgrew the base must not misalign packed
        # bitsets against base views; the merge fallback keeps counts exact.
        overlay = OverlayCoverageStore(shared_base)
        dense_base = shared_base.find(np.arange(0, 64, 2, dtype=np.int32))
        local = overlay.intern(np.arange(0, 300, 3, dtype=np.int32))
        expected = len(set(dense_base.ids.tolist()) & set(local.ids.tolist()))
        assert local.intersect_count(dense_base) == expected
        assert dense_base.intersect_count(local) == expected


class TestOverlayInterleavingProperty:
    """The overlay extension of the arena==memory hypothesis property."""

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.lists(st.integers(min_value=0, max_value=120), max_size=20),
            ),
            max_size=24,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_interleaved_tenant_interns_never_perturb_each_other(
        self, tmp_path_factory, ops
    ):
        tmp = tmp_path_factory.mktemp("overlay-prop")
        base = CoverageStore(
            backend="arena", path=str(tmp / "base.arena"),
            arena_config=ArenaConfig(bitset_cache_bytes=1 << 16),
        )
        base.intern([1, 2, 3])
        base.intern(list(range(0, 100, 5)))
        base.flush()
        base.arena.reopen_read_only()
        base_snapshot = [view.ids.tolist() for view in base.interned_views()]
        base_count = base.num_interned

        overlays = [OverlayCoverageStore(base), OverlayCoverageStore(base)]
        # Reference: each tenant replayed against its own solo memory store
        # seeded with the same shared coverages.
        solos = []
        for _ in range(2):
            solo = CoverageStore(universe_size=base.universe_size)
            for ids in base_snapshot:
                solo.intern(ids)
            solos.append(solo)

        produced = ([], [])
        for tenant, ids in ops:
            view = overlays[tenant].intern(ids)
            solo_view = solos[tenant].intern(ids)
            produced[tenant].append((view, solo_view))
            # Same ids, and the same shared-vs-local placement decision: the
            # solo store interned the shared coverages at the same slots.
            assert view.ids.tolist() == solo_view.ids.tolist()
            assert (view.slot < base_count) == (solo_view.slot < base_count)

        # The shared columns never moved.
        assert base.num_interned == base_count
        for view, ids in zip(base.interned_views(), base_snapshot):
            assert view.ids.tolist() == ids
        # Every view a tenant was handed still reads exactly what it read at
        # intern time, regardless of what the *other* tenant did since.
        for tenant in (0, 1):
            for view, solo_view in produced[tenant]:
                assert view.ids.tolist() == solo_view.ids.tolist()
            assert (
                overlays[tenant].num_overlay_interned
                == solos[tenant].num_interned - base_count
            )
        base.close()


class TestSharedFeaturizerCache:
    def test_two_engines_share_vectors_without_double_compute(
        self, directions_corpus
    ):
        cache = SharedFeatureCache()
        fitted = SentenceFeaturizer.fit(
            directions_corpus, embedding_dim=30, seed=0, cache=cache
        )
        first = fitted.sharing_cache()
        second = fitted.sharing_cache()
        assert first.cache is second.cache is cache

        # Overlapping ranges: [0, 120) then [60, 180).
        sentences_a = [directions_corpus[i] for i in range(0, 120)]
        sentences_b = [directions_corpus[i] for i in range(60, 180)]
        vectors_a = first.vectors(sentences_a)
        misses_after_a = cache.misses
        assert misses_after_a == 120 and cache.hits == 0

        vectors_b = second.vectors(sentences_b)
        # The 60 overlapping sentences were answered from the cache; only the
        # 60 genuinely new ones were computed.
        assert cache.misses == misses_after_a + 60
        assert cache.hits == 60
        np.testing.assert_array_equal(vectors_a[60:], vectors_b[:60])
        # Identical objects, not merely equal values: one canonical array.
        assert first.vector(directions_corpus[70]) is second.vector(
            directions_corpus[70]
        )

    def test_invalidate_forces_recompute(self, directions_corpus):
        cache = SharedFeatureCache()
        featurizer = SentenceFeaturizer.fit(
            directions_corpus, embedding_dim=30, seed=0, cache=cache
        )
        featurizer.vector(directions_corpus[0])
        featurizer.invalidate([0])
        misses = cache.misses
        featurizer.vector(directions_corpus[0])
        assert cache.misses == misses + 1


class TestReadOnlyArenaAttach:
    def _arena(self, tmp_path, name="ro.arena"):
        path = str(tmp_path / name)
        arena = CoverageArena.create(path)
        arena.append(np.array([1, 2, 3], dtype=np.int32))
        arena.flush()
        digest = arena.digest
        arena.close()
        return path, digest

    def test_read_only_attach_verifies_digest(self, tmp_path):
        path, digest = self._arena(tmp_path)
        arena = CoverageArena.open(path, expected_digest=digest, read_only=True)
        assert arena.read_only
        assert arena.values_slice(0).tolist() == [1, 2, 3]
        arena.close()
        with pytest.raises(ConfigurationError, match="checkpoint reference"):
            CoverageArena.open(path, expected_digest="f" * 32, read_only=True)

    def test_read_only_attach_refuses_appends(self, tmp_path):
        path, _ = self._arena(tmp_path)
        arena = CoverageArena.open(path, read_only=True)
        with pytest.raises(ConfigurationError, match="read-only"):
            arena.append(np.array([9], dtype=np.int32))
        arena.close()

    def test_close_is_idempotent_and_releases_mmaps(self, tmp_path):
        path, _ = self._arena(tmp_path)
        arena = CoverageArena.open(path)
        ids = arena.values_slice(0)
        assert arena._values_map is not None
        arena.close()
        assert arena.closed and arena._values_map is None
        arena.close()  # second close must be a no-op, not an error
        # Slices handed out before close stay readable (they own a reference
        # to the map), but fresh maps are refused.
        assert ids.tolist() == [1, 2, 3]
        with pytest.raises(ConfigurationError, match="closed"):
            arena.append(np.array([4], dtype=np.int32))

    def test_reopen_read_only_freezes_in_place(self, tmp_path):
        path = str(tmp_path / "freeze.arena")
        arena = CoverageArena.create(path)
        arena.append(np.array([5, 6], dtype=np.int32))
        view_before = arena.values_slice(0)
        arena.reopen_read_only()
        assert arena.read_only
        assert view_before.tolist() == [5, 6]
        with pytest.raises(ConfigurationError, match="read-only"):
            arena.append(np.array([7], dtype=np.int32))
        arena.close()


@pytest.fixture(scope="module")
def serving_corpus(directions_corpus):
    return directions_corpus


class TestTenantPool:
    def test_tenant_history_identical_to_solo_engine(
        self, tmp_path, serving_corpus, directions_featurizer
    ):
        config = serving_config(tmp_path, budget=5)
        solo = DarwinEngine(
            serving_corpus,
            config=serving_config(budget=5),
            featurizer=directions_featurizer.sharing_cache(),
            seeds={"rule_texts": [SEED_RULE]},
        ).run()

        with TenantPool(
            serving_corpus, config, seeds={"rule_texts": [SEED_RULE]}
        ) as pool:
            tenants = pool.spawn_many(3)
            results = [tenant.run() for tenant in tenants]
            for result in results:
                assert [
                    (h.rule, h.answer, h.covered) for h in result.history
                ] == [(h.rule, h.answer, h.covered) for h in solo.history]

    def test_shared_bytes_do_not_grow_with_tenants(
        self, tmp_path, serving_corpus
    ):
        config = serving_config(tmp_path, budget=4)
        with TenantPool(
            serving_corpus, config, seeds={"rule_texts": [SEED_RULE]}
        ) as pool:
            pool.spawn()
            one = pool.shared_resident_bytes()
            pool.spawn_many(7)
            eight = pool.shared_resident_bytes()
            assert pool.num_tenants == 8
            # The shared substrate exists once; spawning must not copy it.
            assert eight == one

    def test_arena_attach_is_digest_verified(self, tmp_path, serving_corpus):
        config = serving_config(tmp_path, budget=4)
        with pytest.raises(ConfigurationError, match="digest"):
            TenantPool(
                serving_corpus, config, expected_digest="0" * 32,
                seeds={"rule_texts": [SEED_RULE]},
            )

    def test_memory_backend_rejects_expected_digest(self, serving_corpus):
        with pytest.raises(ConfigurationError, match="arena-backed"):
            TenantPool(
                serving_corpus, serving_config(budget=4),
                expected_digest="0" * 32,
            )

    def test_tenant_checkpoint_references_shared_arena(
        self, tmp_path, serving_corpus
    ):
        config = serving_config(tmp_path, budget=4)
        pool = TenantPool(
            serving_corpus, config, seeds={"rule_texts": [SEED_RULE]},
            dataset_spec={
                "name": "directions",
                "options": {"num_sentences": 600, "seed": 11,
                            "parse_trees": False},
            },
        )
        try:
            tenant = pool.spawn()
            tenant.run(budget=3)
            checkpoint = tenant.save(str(tmp_path / "tenant.npz"))
            summary = DarwinEngine.describe_checkpoint(checkpoint)
            assert summary["coverage_backend"] == "overlay"
            assert summary["arena"]["path"] == str(tmp_path / "pool.arena")
            assert summary["arena"]["digest"] == pool.arena_digest
            # No shared column is re-serialized into the checkpoint.
            assert not any(
                name.startswith("index/store/base/") for name in summary["arrays"]
            )

            restored = DarwinEngine.load(checkpoint)
            assert restored.questions_asked == 3
            assert isinstance(restored.darwin.index.store, OverlayCoverageStore)
            restored.darwin.index.store.base.close()
        finally:
            pool.close()

    def test_shared_index_view_refuses_mutation(self, tmp_path, serving_corpus):
        config = serving_config(tmp_path, budget=4)
        with TenantPool(
            serving_corpus, config, seeds={"rule_texts": [SEED_RULE]}
        ) as pool:
            tenant = pool.spawn()
            index = tenant.darwin.index
            assert isinstance(index, SharedIndexView)
            with pytest.raises(ConfigurationError, match="read-only"):
                index.prune(2)

    def test_exit_releases_mmaps_before_unlink(self, tmp_path, serving_corpus):
        config = serving_config(tmp_path, budget=4)
        arena_path = str(tmp_path / "pool.arena")
        with TenantPool(
            serving_corpus, config, seeds={"rule_texts": [SEED_RULE]}
        ) as pool:
            pool.spawn()
            arena = pool.index.store.arena
            assert arena._values_map is not None
        # __exit__ ran: tenants closed first, then the shared store — the
        # arena handle is closed and its map released, so a strict-unlink
        # filesystem could now delete the file.
        assert pool.closed
        assert arena.closed and arena._values_map is None
        pool.close()  # idempotent
        os.unlink(arena_path)
        with pytest.raises(ConfigurationError, match="not found"):
            CoverageArena.open(arena_path)
        with pytest.raises(ConfigurationError, match="closed"):
            pool.spawn()

    def test_evict_keeps_other_tenants_running(self, tmp_path, serving_corpus):
        config = serving_config(tmp_path, budget=4)
        with TenantPool(
            serving_corpus, config, seeds={"rule_texts": [SEED_RULE]}
        ) as pool:
            keeper = pool.spawn("keeper")
            pool.spawn("goner")
            pool.evict("goner")
            assert pool.num_tenants == 1
            with pytest.raises(ConfigurationError, match="no tenant"):
                pool.tenant("goner")
            result = keeper.run()
            assert result.queries_used == 4


class TestServeLoop:
    def test_serve_multiplexes_tenants_on_one_loop(
        self, tmp_path, serving_corpus
    ):
        config = serving_config(tmp_path, budget=4)
        crowd = CrowdConfig(
            num_annotators=2, redundancy=1, batch_size=1,
            annotator_latency=0.0, budget=4,
        )
        solo = DarwinEngine(
            serving_corpus, config=serving_config(budget=4),
            seeds={"rule_texts": [SEED_RULE]},
        ).run()
        with TenantPool(
            serving_corpus, config, seeds={"rule_texts": [SEED_RULE]}
        ) as pool:
            report = serve(pool, num_tenants=3, crowd_config=crowd)
            assert len(report.results) == 3
            assert report.questions_committed == 12
            for result in report.results.values():
                assert [
                    (h.rule, h.answer) for h in result.crowd.darwin_result.history
                ] == [(h.rule, h.answer) for h in solo.history]
            assert report.memory["num_tenants"] == 3.0
            assert report.answers_per_sec > 0

    def test_serve_requires_tenants(self, serving_corpus):
        with TenantPool(serving_corpus, serving_config(budget=4)) as pool:
            with pytest.raises(ConfigurationError, match="tenants"):
                serve(pool)
