"""Tests for repro.analysis — the AST invariant linter.

Each checker is proven live against a violating/clean fixture pair under
``tests/analysis_fixtures/``; the driver tests cover inline suppressions,
the baseline round-trip, the JSON report schema, and the ``repro lint`` CLI
wiring.
"""

import json
from io import StringIO
from pathlib import Path

import pytest

from repro.analysis import (
    CHECKERS,
    Diagnostic,
    lint_file,
    lint_paths,
    load_baseline,
    run_lint,
    split_baselined,
    write_baseline,
)
from repro.analysis.registry import LintConfig
from repro.analysis.suppress import parse_suppressions
from repro.cli import main
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "analysis_fixtures"

ALL_CODES = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005")


def fixture_findings(name, code):
    findings, _ = lint_file(str(FIXTURES / name), select=[code])
    return findings


# ----------------------------------------------------------------- checkers
def test_registry_has_all_shipped_checkers():
    for code in ALL_CODES:
        assert code in CHECKERS


@pytest.mark.parametrize("code", ALL_CODES)
def test_violating_fixture_fires(code):
    findings = fixture_findings(f"{code.lower()}_violation.py", code)
    assert findings, f"{code} must fire on its violating fixture"
    assert {d.code for d in findings} == {code}
    assert all(d.suggestion for d in findings)


@pytest.mark.parametrize("code", ALL_CODES)
def test_clean_fixture_passes(code):
    assert fixture_findings(f"{code.lower()}_clean.py", code) == []


def test_rpr001_flags_each_nondeterminism_site():
    findings = fixture_findings("rpr001_violation.py", "RPR001")
    assert sorted(d.line for d in findings) == [11, 16, 20, 24, 24]


def test_rpr002_reports_missing_restorer_and_drifted_key():
    findings = fixture_findings("rpr002_violation.py", "RPR002")
    messages = " | ".join(d.message for d in findings)
    assert len(findings) == 2
    assert "none of from_state" in messages
    assert "'orphan'" in messages


def test_rpr003_taint_reaches_every_mutation_shape():
    findings = fixture_findings("rpr003_violation.py", "RPR003")
    assert sorted(d.line for d in findings) == [8, 14, 20, 21, 28]


def test_rpr004_flags_only_the_bare_mutation():
    findings = fixture_findings("rpr004_violation.py", "RPR004")
    assert [d.line for d in findings] == [18]
    assert "_entries" in findings[0].message
    assert "sneak" in findings[0].message


def test_rpr005_flags_import_time_positions_only():
    findings = fixture_findings("rpr005_violation.py", "RPR005")
    assert sorted(d.line for d in findings) == [6, 8, 12]


def test_rng_owner_module_is_exempt_from_rpr001(tmp_path):
    module = tmp_path / "repro" / "utils" / "rng.py"
    module.parent.mkdir(parents=True)
    module.write_text("import random\nrandom.seed(0)\n", encoding="utf-8")
    findings, _ = lint_file(str(module), select=["RPR001"])
    assert findings == []


def test_lint_config_is_overridable(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "def f(view):\n    view.custom_col[0] = 1\n", encoding="utf-8"
    )
    default_findings, _ = lint_file(str(path), select=["RPR003"])
    assert default_findings == []
    config = LintConfig(sealed_attrs=frozenset({"custom_col"}))
    findings, _ = lint_file(str(path), config=config, select=["RPR003"])
    assert [d.code for d in findings] == ["RPR003"]


# ------------------------------------------------------------- suppressions
def test_inline_allow_with_reason_suppresses():
    source = "import time\n\ndef f():\n    return time.time()  # repro: allow[RPR001] test wants wall time\n"
    findings, suppressed = lint_file("x/mod.py", source=source,
                                     select=["RPR001"])
    assert findings == []
    assert suppressed == 1


def test_standalone_allow_applies_to_next_code_line():
    source = (
        "import time\n\ndef f():\n"
        "    # repro: allow[RPR001] test wants wall time\n"
        "    return time.time()\n"
    )
    findings, suppressed = lint_file("x/mod.py", source=source,
                                     select=["RPR001"])
    assert findings == []
    assert suppressed == 1


def test_reasonless_allow_suppresses_nothing_and_is_flagged():
    source = "import time\n\ndef f():\n    return time.time()  # repro: allow[RPR001]\n"
    findings, suppressed = lint_file("x/mod.py", source=source,
                                     select=["RPR001"])
    assert suppressed == 0
    assert sorted(d.code for d in findings) == ["RPR000", "RPR001"]


def test_allow_covers_only_listed_codes():
    source = "import time\n\ndef f():\n    return time.time()  # repro: allow[RPR003] wrong code\n"
    findings, suppressed = lint_file("x/mod.py", source=source,
                                     select=["RPR001"])
    assert suppressed == 0
    assert [d.code for d in findings] == ["RPR001"]


def test_allow_star_covers_everything():
    source = "import time\n\ndef f():\n    return time.time()  # repro: allow[*] fixture shortcut\n"
    findings, suppressed = lint_file("x/mod.py", source=source,
                                     select=["RPR001"])
    assert findings == []
    assert suppressed == 1


def test_parse_suppressions_maps_comment_and_target_lines():
    source = "# repro: allow[RPR001] above\nx = 1\ny = 2  # repro: allow[RPR002,RPR003] inline\n"
    by_line, malformed = parse_suppressions(source, "x.py")
    assert malformed == []
    assert by_line[1].covers("RPR001") and by_line[2].covers("RPR001")
    assert by_line[3].covers("RPR002") and by_line[3].covers("RPR003")
    assert not by_line[3].covers("RPR001")


# ------------------------------------------------------------------ driver
def test_syntax_error_becomes_rpr000(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n", encoding="utf-8")
    findings, _ = lint_file(str(path))
    assert [d.code for d in findings] == ["RPR000"]
    assert "does not parse" in findings[0].message


def test_unknown_select_code_raises():
    with pytest.raises(ConfigurationError):
        lint_file("x.py", source="x = 1\n", select=["RPR999"])


def test_lint_paths_walks_directories():
    report = lint_paths([str(FIXTURES)])
    assert report.files_scanned == 10
    assert report.exit_code == 1
    fired = {d.code for d in report.findings}
    assert fired == set(ALL_CODES)


def test_missing_path_raises():
    with pytest.raises(ConfigurationError):
        lint_paths([str(FIXTURES / "no_such_dir")])


# ---------------------------------------------------------------- baseline
def test_baseline_round_trip(tmp_path):
    diagnostics = [
        Diagnostic(code="RPR001", path="a.py", line=3, message="m1"),
        Diagnostic(code="RPR004", path="b.py", line=9, message="m2"),
    ]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, diagnostics)
    keys = load_baseline(baseline_path)
    assert keys == {d.baseline_key for d in diagnostics}
    # Matching is line-number free: a moved finding stays grandfathered.
    moved = Diagnostic(code="RPR001", path="a.py", line=30, message="m1")
    fresh = Diagnostic(code="RPR001", path="a.py", line=5, message="new")
    new, grandfathered = split_baselined([moved, fresh], keys)
    assert new == [fresh]
    assert grandfathered == [moved]


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()


def test_non_baseline_json_rejected(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"kind": "something-else"}', encoding="utf-8")
    with pytest.raises(ConfigurationError):
        load_baseline(path)


def test_update_baseline_then_lint_is_clean(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    target = str(FIXTURES / "rpr001_violation.py")
    out = StringIO()
    assert run_lint([target], update_baseline=True,
                    baseline=str(baseline_path), stdout=out) == 0
    assert run_lint([target], baseline=str(baseline_path),
                    fmt="json", stdout=(out := StringIO())) == 0
    payload = json.loads(out.getvalue())
    assert payload["summary"]["total"] == 0
    assert payload["summary"]["grandfathered"] == 5


# ------------------------------------------------------------- JSON schema
def test_json_report_schema():
    out = StringIO()
    exit_code = run_lint([str(FIXTURES / "rpr004_violation.py")],
                         fmt="json", stdout=out)
    assert exit_code == 1
    payload = json.loads(out.getvalue())
    assert payload["version"] == 1
    assert set(payload["summary"]) == {
        "total", "by_code", "grandfathered", "suppressed", "files_scanned"
    }
    assert payload["summary"]["total"] == len(payload["findings"]) == 1
    assert payload["summary"]["by_code"] == {"RPR004": 1}
    finding = payload["findings"][0]
    assert set(finding) == {"code", "path", "line", "message", "suggestion"}


# ------------------------------------------------------------------- CLI
def test_cli_lint_exit_codes(capsys):
    assert main(["lint", str(FIXTURES / "rpr001_clean.py")]) == 0
    capsys.readouterr()
    assert main(["lint", str(FIXTURES / "rpr001_violation.py"),
                 "--select", "RPR001"]) == 1
    captured = capsys.readouterr()
    assert "RPR001" in captured.out


def test_cli_lint_json(capsys):
    assert main(["lint", "--format", "json",
                 str(FIXTURES / "rpr002_violation.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["by_code"] == {"RPR002": 2}


def test_src_tree_is_clean_with_empty_committed_baseline():
    """The acceptance gate: repro lint src/ exits 0, no baseline crutch."""
    repo_root = Path(__file__).parent.parent
    report = lint_paths([str(repo_root / "src")])
    assert report.findings == []
    committed = repo_root / ".repro-lint-baseline.json"
    assert load_baseline(committed) == set()
