"""Tests for the dependency parser and tree structure."""

from __future__ import annotations

import pytest

from repro.text.dependency import DependencyParser, DependencyTree
from repro.text.pos import PosTagger
from repro.text.tokenizer import tokenize


def parse(text: str) -> DependencyTree:
    tokens = tokenize(text)
    tags = PosTagger().tag(tokens)
    return DependencyParser().parse(tokens, tags)


class TestDependencyTreeStructure:
    def test_empty_tree(self):
        tree = DependencyParser().parse([], [])
        assert len(tree) == 0

    def test_single_root(self):
        tree = parse("Is Uber the fastest way to get to the airport?")
        roots = [i for i, h in enumerate(tree.heads) if h == -1]
        assert len(roots) == 1
        assert tree.root == roots[0]

    def test_every_token_reaches_root(self):
        tree = parse("What is the best way to get to SFO airport?")
        for index in range(len(tree)):
            # depth() raises on cycles; reaching it proves connectivity.
            assert tree.depth(index) >= 0

    def test_children_and_descendants_consistent(self):
        tree = parse("the shuttle to the airport leaves at noon")
        for node in range(len(tree)):
            children = set(tree.children(node))
            descendants = set(tree.descendants(node))
            assert children <= descendants

    def test_root_descendants_cover_everything(self):
        tree = parse("the composer wrote a famous symphony in vienna")
        descendants = set(tree.descendants(tree.root))
        assert descendants == set(range(len(tree))) - {tree.root}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DependencyParser().parse(["a", "b"], ["DET"])

    def test_tree_validation_rejects_two_roots(self):
        with pytest.raises(ValueError):
            DependencyTree(("a", "b"), ("NOUN", "NOUN"), (-1, -1))

    def test_labels_contain_token_and_tag(self):
        tree = parse("the shuttle leaves")
        labels = tree.labels(1)
        assert "shuttle" in labels
        assert tree.tags[1] in labels

    def test_nodes_with_label_by_token_and_tag(self):
        tree = parse("the shuttle to the airport")
        assert tree.nodes_with_label("shuttle")
        assert tree.nodes_with_label("NOUN")

    def test_edges_iterate_head_dependent_pairs(self):
        tree = parse("the shuttle leaves at noon")
        edges = list(tree.edges())
        assert len(edges) == len(tree) - 1
        for head, dependent in edges:
            assert tree.heads[dependent] == head

    def test_to_conll_has_one_line_per_token(self):
        tree = parse("the shuttle leaves")
        assert len(tree.to_conll().splitlines()) == len(tree)


class TestAttachmentRules:
    def test_verb_is_root_when_present(self):
        tree = parse("the shuttle leaves at noon")
        assert tree.tags[tree.root] in {"VERB", "AUX"}

    def test_determiner_attaches_to_following_noun(self):
        tree = parse("take the shuttle")
        det_index = tree.tokens.index("the")
        noun_index = tree.tokens.index("shuttle")
        assert tree.heads[det_index] == noun_index

    def test_adposition_object_attaches_to_adposition(self):
        tree = parse("go to the airport")
        to_index = tree.tokens.index("to")
        airport_index = tree.tokens.index("airport")
        # 'airport' should sit underneath 'to' (directly or via the chain).
        assert airport_index in tree.descendants(to_index) or \
            tree.heads[airport_index] == to_index

    def test_deterministic(self):
        a = parse("What is the best way to get to SFO airport?")
        b = parse("What is the best way to get to SFO airport?")
        assert a.heads == b.heads

    def test_noun_only_sentence_has_noun_root(self):
        tree = parse("the airport shuttle")
        assert tree.tags[tree.root] in {"NOUN", "PROPN"}
