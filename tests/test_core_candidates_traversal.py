"""Tests for candidate generation (Algorithm 2) and the traversal strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benefit import BenefitScorer
from repro.core.candidates import CandidateOptions, generate_candidates, seed_candidates
from repro.core.hierarchy_builder import build_hierarchy
from repro.core.traversal import (
    HybridSearch,
    LocalSearch,
    TraversalContext,
    UniversalSearch,
    make_traversal,
)
from repro.errors import TraversalError
from repro.rules.heuristic import LabelingHeuristic


class TestCandidateGeneration:
    def test_candidates_overlap_positives(self, example1_index, example1_corpus):
        positives = example1_corpus.positive_ids()
        candidates = generate_candidates(
            example1_index, positives, CandidateOptions(num_candidates=20, min_coverage=1)
        )
        assert candidates
        assert len(candidates) <= 20
        for rule in candidates:
            assert set(rule.coverage) & positives

    def test_respects_min_coverage(self, example1_index, example1_corpus):
        candidates = generate_candidates(
            example1_index,
            example1_corpus.positive_ids(),
            CandidateOptions(num_candidates=50, min_coverage=3),
        )
        assert all(rule.coverage_size >= 3 for rule in candidates)

    def test_first_candidate_has_max_overlap(self, example1_index, example1_corpus):
        positives = example1_corpus.positive_ids()
        candidates = generate_candidates(
            example1_index, positives, CandidateOptions(num_candidates=10, min_coverage=1)
        )
        overlaps = [len(set(r.coverage) & positives) for r in candidates]
        assert overlaps[0] == max(overlaps)

    def test_diversity_skips_identical_coverage(self, example1_index, example1_corpus):
        positives = example1_corpus.positive_ids()
        diverse = generate_candidates(
            example1_index, positives,
            CandidateOptions(num_candidates=100, min_coverage=1, require_diversity=True),
        )
        signatures = [frozenset(r.coverage) for r in diverse]
        assert len(signatures) == len(set(signatures))

    def test_grammar_filter(self, example1_index, example1_corpus, tokensregex):
        candidates = generate_candidates(
            example1_index, example1_corpus.positive_ids(),
            CandidateOptions(num_candidates=10, min_coverage=1),
            grammar_name=tokensregex.name,
        )
        assert all(rule.grammar.name == tokensregex.name for rule in candidates)

    def test_seed_candidates_resolve_coverage(self, example1_index, tokensregex):
        seed = LabelingHeuristic(tokensregex, ("best", "way"))
        prepared = seed_candidates(example1_index, [seed])
        assert prepared[0].coverage_size == 3

    def test_seed_candidates_require_coverage_for_unindexed(self, example1_index, tokensregex):
        unindexed = LabelingHeuristic(tokensregex, ("zzz", "qqq", "www", "xxx", "yyy"))
        with pytest.raises(ValueError):
            seed_candidates(example1_index, [unindexed])


def _context(index, corpus, scores=None, covered=None):
    keys = index.top_by_coverage(40)
    candidates = [index.heuristic(k) for k in keys]
    hierarchy = build_hierarchy(candidates, index=index)
    if scores is None:
        scores = np.full(len(corpus), 0.6)
    benefit = BenefitScorer(scores, covered or set())

    def neighbours(rule, direction):
        from repro.core.hierarchy_builder import expand_rule_neighbourhood

        return expand_rule_neighbourhood(rule, index, direction, corpus=corpus)

    return TraversalContext(hierarchy=hierarchy, benefit=benefit, neighbours=neighbours)


class TestLocalSearch:
    def test_requires_seed(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        with pytest.raises(TraversalError):
            LocalSearch(context, [])

    def test_proposes_from_neighbourhood(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way", "to")))
        search = LocalSearch(context, [seed])
        proposal = search.propose()
        assert proposal is not None
        assert proposal in search.candidates

    def test_yes_adds_parents_no_adds_children(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way", "to")))
        search = LocalSearch(context, [seed])
        context.queried.add(seed)
        search.feedback(seed, is_useful=True)
        parents = set(context.parents_of(seed))
        assert parents & search.candidates
        rejected = example1_index.heuristic((tokensregex.name, ("way", "to")))
        context.queried.add(rejected)
        search.feedback(rejected, is_useful=False)
        children = set(context.children_of(rejected))
        assert children & search.candidates

    def test_never_reproposes_queried(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        search = LocalSearch(context, [seed])
        seen = set()
        for _ in range(10):
            proposal = search.propose()
            if proposal is None:
                break
            assert proposal not in seen
            seen.add(proposal)
            context.queried.add(proposal)
            search.feedback(proposal, is_useful=False)


class TestUniversalSearch:
    def test_pool_is_hierarchy(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        search = UniversalSearch(context, [seed])
        assert set(context.hierarchy.rules()) <= search.candidates

    def test_cutoff_skips_low_average_benefit(self, example1_index, example1_corpus, tokensregex):
        # All scores 0.2: nothing clears the 0.5 cutoff, so the fallback picks
        # the most precise-looking (highest average) candidate instead of the
        # biggest one.
        scores = np.full(len(example1_corpus), 0.2)
        scores[0] = 0.95
        context = _context(example1_index, example1_corpus, scores=scores)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        search = UniversalSearch(context, [seed])
        proposal = search.propose()
        assert proposal is not None
        assert context.benefit.average_benefit(proposal) >= 0.2

    def test_feedback_removes_rule(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        search = UniversalSearch(context, [seed])
        proposal = search.propose()
        context.queried.add(proposal)
        search.feedback(proposal, is_useful=True)
        assert proposal not in search.candidates

    def test_hierarchy_update_adds_candidates(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        search = UniversalSearch(context, [seed])
        new_rule = example1_index.heuristic((tokensregex.name, ("uber",)))
        from repro.index.hierarchy import RuleHierarchy

        refreshed = RuleHierarchy()
        refreshed.add(new_rule)
        search.on_hierarchy_update(refreshed)
        assert new_rule in search.candidates


class TestHybridSearch:
    def test_tau_validation(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        with pytest.raises(TraversalError):
            HybridSearch(context, [seed], tau=0)

    def test_starts_in_universal_mode(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        search = HybridSearch(context, [seed], tau=3)
        assert search.mode == "universal"

    def test_switches_after_tau_failures(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        search = HybridSearch(context, [seed], tau=2)
        for _ in range(3):
            proposal = search.propose()
            assert proposal is not None
            context.queried.add(proposal)
            search.feedback(proposal, is_useful=False)
        assert search.mode == "local"

    def test_yes_resets_attempts(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        search = HybridSearch(context, [seed], tau=2)
        proposal = search.propose()
        context.queried.add(proposal)
        search.feedback(proposal, is_useful=True)
        assert search._attempts == 0
        assert search.mode == "universal"

    def test_feedback_updates_both_pools(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        search = HybridSearch(context, [seed], tau=3)
        proposal = search.propose()
        context.queried.add(proposal)
        search.feedback(proposal, is_useful=True)
        assert proposal not in search.universal_candidates
        assert proposal not in search.local_candidates

    def test_make_traversal_factory(self, example1_index, example1_corpus, tokensregex):
        context = _context(example1_index, example1_corpus)
        seed = example1_index.heuristic((tokensregex.name, ("best", "way")))
        assert isinstance(make_traversal("local", context, [seed]), LocalSearch)
        assert isinstance(make_traversal("universal", context, [seed]), UniversalSearch)
        assert isinstance(make_traversal("hybrid", context, [seed], tau=2), HybridSearch)
        with pytest.raises(TraversalError):
            make_traversal("random", context, [seed])
