"""Tests for the TokensRegex grammar."""

from __future__ import annotations

import pytest

from repro.errors import RuleParseError
from repro.grammars.tokensregex import GAP, TokensRegexGrammar
from repro.text.sentence import Sentence


def sentence(text: str, sid: int = 0) -> Sentence:
    tokens = tuple(text.lower().split())
    return Sentence(sid, text, tokens)


class TestMatching:
    def setup_method(self):
        self.grammar = TokensRegexGrammar(max_phrase_len=4)

    def test_contiguous_phrase_match(self):
        s = sentence("what is the best way to get to the airport")
        assert self.grammar.matches(("best", "way", "to"), s)
        assert not self.grammar.matches(("way", "best"), s)

    def test_single_token(self):
        s = sentence("is there a shuttle to the airport")
        assert self.grammar.matches(("shuttle",), s)
        assert not self.grammar.matches(("bart",), s)

    def test_empty_phrase_matches_everything(self):
        assert self.grammar.matches((), sentence("anything"))

    def test_gap_requires_order_and_distance(self):
        s = sentence("shuttle from the hotel to the airport")
        assert self.grammar.matches(("shuttle", GAP, "airport"), s)
        assert not self.grammar.matches(("airport", GAP, "shuttle"), s)

    def test_gap_requires_at_least_one_token(self):
        s = sentence("shuttle airport")
        assert not self.grammar.matches(("shuttle", GAP, "airport"), s)

    def test_string_expression_coerced(self):
        s = sentence("the best way to get")
        assert self.grammar.matches("best way", s)

    def test_coverage(self, example1_corpus):
        ids = self.grammar.coverage(("best", "way", "to"), example1_corpus)
        assert set(ids) == {0, 2, 5}


class TestEnumeration:
    def test_enumerates_all_ngrams_up_to_limit(self):
        grammar = TokensRegexGrammar(max_phrase_len=3)
        s = sentence("a b c d")
        expressions = set(grammar.enumerate_expressions(s, max_depth=10))
        assert ("a",) in expressions
        assert ("b", "c", "d") in expressions
        assert ("a", "b", "c", "d") not in expressions

    def test_max_depth_further_limits(self):
        grammar = TokensRegexGrammar(max_phrase_len=4)
        s = sentence("a b c d")
        expressions = set(grammar.enumerate_expressions(s, max_depth=2))
        assert ("a", "b", "c") not in expressions

    def test_gapped_enumeration_optional(self):
        s = sentence("a b c d")
        without = set(TokensRegexGrammar(allow_gaps=False).enumerate_expressions(s, 5))
        with_gaps = set(TokensRegexGrammar(allow_gaps=True).enumerate_expressions(s, 5))
        assert not any(GAP in e for e in without)
        assert any(GAP in e for e in with_gaps)

    def test_every_enumerated_expression_matches(self):
        grammar = TokensRegexGrammar(max_phrase_len=4, allow_gaps=True)
        s = sentence("what is the best way to get there")
        for expression in grammar.enumerate_expressions(s, max_depth=4):
            assert grammar.matches(expression, s)


class TestNeighbourhood:
    def setup_method(self):
        self.grammar = TokensRegexGrammar(max_phrase_len=4)

    def test_generalizations_drop_edges(self):
        parents = self.grammar.generalizations(("best", "way", "to"))
        assert ("way", "to") in parents
        assert ("best", "way") in parents

    def test_generalizations_of_single_token_empty(self):
        assert self.grammar.generalizations(("shuttle",)) == []

    def test_gap_generalization(self):
        parents = self.grammar.generalizations(("best", "way", "to"))
        assert ("best", GAP, "to") in parents

    def test_specializations_extend_with_witness(self):
        s = sentence("the best way to get there")
        children = self.grammar.specializations(("best", "way"), s)
        assert ("the", "best", "way") in children
        assert ("best", "way", "to") in children

    def test_specializations_without_witness_empty(self):
        assert self.grammar.specializations(("best", "way")) == []

    def test_specializations_respect_max_len(self):
        grammar = TokensRegexGrammar(max_phrase_len=2)
        s = sentence("the best way")
        assert grammar.specializations(("best", "way"), s) == []

    def test_gap_specialization_instantiates(self):
        s = sentence("shuttle departs airport daily")
        children = self.grammar.specializations(("shuttle", GAP, "airport"), s)
        assert all(GAP not in child for child in children)
        assert ("shuttle", "departs", "airport") in children

    def test_is_ancestor_for_subphrases(self):
        assert self.grammar.is_ancestor(("way", "to"), ("best", "way", "to"))
        assert not self.grammar.is_ancestor(("way", "best"), ("best", "way", "to"))
        assert self.grammar.is_ancestor(("best",), ("best", "way"))


class TestParsingAndRendering:
    def setup_method(self):
        self.grammar = TokensRegexGrammar()

    def test_parse_round_trip(self):
        expression = self.grammar.parse("Best Way To")
        assert expression == ("best", "way", "to")
        assert self.grammar.render(expression) == "best way to"

    def test_parse_rejects_empty(self):
        with pytest.raises(RuleParseError):
            self.grammar.parse("   ")

    def test_parse_rejects_leading_gap(self):
        with pytest.raises(RuleParseError):
            self.grammar.parse("* way")

    def test_complexity_counts_tokens(self):
        assert self.grammar.complexity(("a", "b", "c")) == 3

    def test_formal_grammar_derives_rendered_rule(self):
        grammar = self.grammar.formal_grammar(["best", "way"])
        assert grammar.can_derive(["best", "way"], max_steps=6)

    def test_invalid_expression_type_rejected(self):
        with pytest.raises(RuleParseError):
            self.grammar.matches(123, sentence("a"))

    def test_max_phrase_len_validation(self):
        with pytest.raises(ValueError):
            TokensRegexGrammar(max_phrase_len=0)
