"""Tests for repro.obs: metric primitives, the span tracer, the exporters,
and the instrumentation wired through the Darwin/serving/engine tiers.

The load-bearing properties:

* **exactness under concurrency** — counters and histograms guarded by their
  family lock lose no increments under thread contention;
* **exposition round-trip** — ``render_prometheus`` output parses back (via
  the repo's own minimal parser) into exactly the series the registry holds;
* **task-local span nesting** — concurrently served tenants each parent
  their own ``darwin.*`` spans, no cross-talk through the shared tracer;
* **free when off** — with the default ``NullRegistry`` an engine run on
  either coverage backend records nothing and allocates no series.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro import obs
from repro.config import ClassifierConfig, CrowdConfig, DarwinConfig, IndexConfig
from repro.engine.engine import DarwinEngine
from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    SpanTracer,
    parse_prometheus_text,
    render_snapshot,
    summarize_snapshot,
)
from repro.obs.metrics import NULL_INSTRUMENT
from repro.serving import TenantPool, serve

SEED_RULE = "best way to get to"


def fast_engine_config(**overrides) -> DarwinConfig:
    options = {
        "budget": 4,
        "num_candidates": 250,
        "min_coverage": 2,
        "classifier": ClassifierConfig(epochs=10, embedding_dim=30),
    }
    options.update(overrides)
    return DarwinConfig(**options)


@pytest.fixture()
def live_obs():
    """Enable a fresh registry + tracer; always restore the null defaults."""
    registry = obs.enable()
    yield registry, obs.get_tracer()
    obs.disable()


class TestMetricsRegistry:
    def test_counter_gauge_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("questions_total", "questions asked")
        counter.inc()
        counter.inc(2.0)
        assert counter.value == 3.0
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(5)
        gauge.dec()
        assert gauge.value == 4.0

    def test_labeled_series_are_distinct_and_idempotent(self):
        registry = MetricsRegistry()
        family = registry.counter("answers", "by outcome", labels=("answer",))
        family.labels(answer="yes").inc()
        family.labels(answer="yes").inc()
        family.labels(answer="no").inc()
        assert family.labels(answer="yes").value == 2.0
        assert family.labels(answer="no").value == 1.0
        # Re-declaring the same family returns the same series.
        again = registry.counter("answers", "by outcome", labels=("answer",))
        assert again.labels(answer="yes").value == 2.0

    def test_schema_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("a",))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("m", labels=("a",))
        with pytest.raises(ConfigurationError, match="labels"):
            registry.counter("m", labels=("b",))
        with pytest.raises(ConfigurationError, match="labels"):
            registry.counter("m", labels=("a",)).labels(wrong="x")
        with pytest.raises(ConfigurationError, match="resolve a child"):
            registry.counter("m", labels=("a",)).inc()

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="only go up"):
            registry.counter("c").inc(-1.0)

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", labels=("worker",))
        histogram = registry.histogram("latency")
        threads, per_thread = 8, 2000

        def hammer(worker: int) -> None:
            child = counter.labels(worker=worker % 2)
            for i in range(per_thread):
                child.inc()
                histogram.observe(1e-5 * (i % 7 + 1))

        pool = [
            threading.Thread(target=hammer, args=(n,)) for n in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = sum(
            counter.labels(worker=w).value for w in (0, 1)
        )
        assert total == threads * per_thread
        assert histogram._default.count == threads * per_thread


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.001, 0.01, 0.1))
        histogram.observe(0.001)   # exactly a bound -> its own bucket (le)
        histogram.observe(0.0011)  # just past -> next bucket
        histogram.observe(1.0)     # beyond the last bound -> +Inf
        entry = registry.snapshot()["metrics"]["h"]["series"][0]
        buckets = entry["buckets"]
        assert buckets[0] == [0.001, 1]
        assert buckets[1] == [0.01, 2]
        assert buckets[2] == [0.1, 2]
        assert buckets[3] == ["+Inf", 3]
        assert entry["count"] == 3

    def test_default_buckets_span_microseconds_to_seconds(self):
        assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_TIME_BUCKETS[-1] > 10.0
        assert all(
            later > earlier
            for earlier, later in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
        )

    def test_quantiles_bracket_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for _ in range(100):
            histogram.observe(0.002)
        # Bucket interpolation: the estimate lands within the half-octave
        # bucket that holds 0.002, never outside it.
        p50 = histogram._default.quantile(0.5)
        assert 0.001 <= p50 <= 0.004
        assert histogram._default.quantile(0.95) >= p50

    def test_empty_histogram_quantile_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("h")._default.quantile(0.5) == 0.0


class TestPrometheusExposition:
    def test_round_trip_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", labels=("tenant",)).labels(
            tenant="t-0"
        ).inc(3)
        registry.gauge("depth", "queue depth").set(2.5)
        histogram = registry.histogram("lat", "latency", buckets=(0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(0.05)
        parsed = parse_prometheus_text(registry.render_prometheus())
        assert parsed["req_total"]["type"] == "counter"
        assert parsed["req_total"]["samples"][
            ("req_total", (("tenant", "t-0"),))
        ] == 3.0
        assert parsed["depth"]["samples"][("depth", ())] == 2.5
        samples = parsed["lat"]["samples"]
        assert samples[("lat_count", ())] == 2.0
        assert samples[("lat_sum", ())] == pytest.approx(0.055)
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 2.0
        assert samples[("lat_bucket", (("le", "0.01"),))] == 1.0

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        text = registry.render_prometheus()
        parsed = parse_prometheus_text(text)
        assert parsed["c"]["samples"][
            ("c", (("path", 'a"b\\c\nd'),))
        ] == 1.0

    def test_disabled_render_parses_to_nothing(self):
        assert parse_prometheus_text(NullRegistry().render_prometheus()) == {}

    def test_render_snapshot_matches_live_render(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert render_snapshot(registry.snapshot()) == registry.render_prometheus()

    def test_malformed_lines_raise(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("no_type_declared 1.0\n")


class TestSpanTracer:
    def test_nested_spans_record_structure(self):
        tracer = SpanTracer()
        with tracer.trace("outer", tenant="t-0") as outer:
            outer.count("questions", 2)
            with tracer.trace("inner"):
                pass
        roots = tracer.spans()
        assert len(roots) == 1
        (root,) = roots
        assert root["name"] == "outer"
        assert root["attrs"] == {"tenant": "t-0"}
        assert root["counters"] == {"questions": 2}
        assert root["duration_ms"] >= 0.0
        assert [child["name"] for child in root["children"]] == ["inner"]

    def test_ring_buffer_drops_oldest(self):
        tracer = SpanTracer(max_spans=3)
        for index in range(7):
            with tracer.trace(f"span-{index}"):
                pass
        assert [span["name"] for span in tracer.spans()] == [
            "span-4", "span-5", "span-6",
        ]

    def test_exception_marks_span_and_propagates(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("failing"):
                raise RuntimeError("boom")
        (root,) = tracer.spans()
        assert root["attrs"]["error"] == "RuntimeError"

    def test_dump_json_round_trips(self):
        tracer = SpanTracer()
        with tracer.trace("s"):
            pass
        assert json.loads(tracer.dump_json(indent=2))[0]["name"] == "s"

    def test_asyncio_tasks_nest_independently(self):
        tracer = SpanTracer()

        async def one_task(name: str) -> None:
            with tracer.trace(name):
                await asyncio.sleep(0)
                with tracer.trace(f"{name}.child"):
                    await asyncio.sleep(0)

        async def main() -> None:
            await asyncio.gather(one_task("a"), one_task("b"))

        asyncio.run(main())
        roots = {span["name"]: span for span in tracer.spans()}
        assert set(roots) == {"a", "b"}
        for name, root in roots.items():
            # Each task's child lands under its own root — the interleaved
            # awaits never attach a child to the other task's span.
            assert [c["name"] for c in root["children"]] == [f"{name}.child"]


class TestServingSpans:
    def test_serve_tenants_spans_stay_per_tenant(self, directions_corpus, live_obs):
        _, tracer = live_obs
        config = fast_engine_config(budget=3)
        crowd = CrowdConfig(
            num_annotators=2, redundancy=1, batch_size=2, budget=3,
            annotator_latency=0.0, label_noise=0.0, seed=3,
        )
        with TenantPool(
            directions_corpus, config, seeds={"rule_texts": [SEED_RULE]}
        ) as pool:
            report = serve(pool, num_tenants=2, crowd_config=crowd)
        assert report.questions_committed > 0
        roots = [
            span for span in tracer.spans() if span["name"] == "serve.tenant"
        ]
        assert {span["attrs"]["tenant"] for span in roots} == set(
            report.results
        )
        for root in roots:
            tenant = root["attrs"]["tenant"]
            darwin_children = [
                child for child in root["children"]
                if child["name"].startswith("darwin.")
            ]
            assert darwin_children, "serve.tenant recorded no darwin.* spans"
            for child in darwin_children:
                assert child["attrs"].get("tenant", tenant) == tenant


class TestNullPath:
    def test_null_instrument_is_inert(self):
        assert NULL_INSTRUMENT.labels(anything="x") is NULL_INSTRUMENT
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.dec()
        NULL_INSTRUMENT.set(3)
        NULL_INSTRUMENT.observe(0.5)
        assert NULL_INSTRUMENT.value == 0.0

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.trace("ignored", tenant="t") as span:
            span.count("n", 1)
            span.annotate(k="v")
        assert tracer.spans() == []

    @pytest.mark.parametrize("backend", ["memory", "arena"])
    def test_disabled_engine_records_nothing(
        self, backend, tmp_path, directions_corpus
    ):
        assert isinstance(obs.get_registry(), NullRegistry)
        index = IndexConfig()
        if backend == "arena":
            index = IndexConfig(
                coverage_backend="arena",
                arena_path=str(tmp_path / "null.arena"),
            )
        engine = DarwinEngine(
            directions_corpus,
            config=fast_engine_config(index=index),
            seeds={"rule_texts": [SEED_RULE]},
        )
        result = engine.run()
        assert result.queries_used > 0
        assert obs.get_registry().snapshot() == {
            "enabled": False, "metrics": {},
        }
        assert obs.get_tracer().spans() == []


class TestEngineTelemetry:
    def test_run_records_phases_questions_and_caches(
        self, directions_corpus, live_obs, tmp_path
    ):
        registry, _ = live_obs
        engine = DarwinEngine(
            directions_corpus,
            config=fast_engine_config(),
            seeds={"rule_texts": [SEED_RULE]},
        )
        out = tmp_path / "metrics.json"
        result = engine.run(metrics_out=str(out))
        snapshot = registry.snapshot()
        metrics = snapshot["metrics"]
        phases = {
            entry["labels"]["phase"]
            for entry in metrics["darwin_phase_seconds"]["series"]
        }
        assert {"propose", "oracle_answer", "retrain", "index_build"} <= phases
        questions = sum(
            entry["value"]
            for entry in metrics["darwin_questions_total"]["series"]
        )
        assert questions == result.queries_used
        assert "feature_cache_hits" in metrics
        assert "coverage_interned" in metrics
        # Tenant-labeled gauges: a solo engine is the one-tenant case.
        gauge = metrics["tenant_questions"]["series"][0]
        assert gauge["labels"]["tenant"] == directions_corpus.name
        assert gauge["value"] == result.queries_used
        # --metrics-out payload: readable, validated, summarizable.
        payload = obs.read_snapshot(out)
        assert payload["metrics"]["enabled"] is True
        summary = summarize_snapshot(payload["metrics"])
        assert summary["questions"]["total"] == result.queries_used
        assert "phases" in summary

    def test_accepted_answer_hits_apply_phase_and_yes_counter(
        self, directions_corpus, live_obs
    ):
        registry, _ = live_obs
        from repro.core.darwin import Darwin

        darwin = Darwin(directions_corpus, config=fast_engine_config())
        darwin.start(seed_rule_texts=[SEED_RULE])
        rule = darwin.propose_next()
        assert rule is not None
        darwin.apply_answer(rule, True)
        metrics = registry.snapshot()["metrics"]
        phases = {
            entry["labels"]["phase"]
            for entry in metrics["darwin_phase_seconds"]["series"]
        }
        assert "apply" in phases
        yes = [
            entry for entry in metrics["darwin_questions_total"]["series"]
            if entry["labels"] == {"answer": "yes"}
        ]
        assert yes[0]["value"] == 1.0

    def test_checkpoint_embeds_and_describes_metrics(
        self, directions_corpus, live_obs, tmp_path
    ):
        engine = DarwinEngine(
            directions_corpus,
            config=fast_engine_config(),
            seeds={"rule_texts": [SEED_RULE]},
        )
        engine.run()
        path = str(tmp_path / "ck.npz")
        engine.save(path)
        description = DarwinEngine.describe_checkpoint(path)
        digest = description["metrics"]
        assert digest["questions"]["total"] == engine.questions_asked
        assert "phases" in digest

    def test_crowd_counters_track_commits(self, directions_corpus, live_obs):
        registry, _ = live_obs
        config = fast_engine_config(budget=3)
        crowd = CrowdConfig(
            num_annotators=2, redundancy=1, batch_size=2, budget=3,
            annotator_latency=0.0, label_noise=0.0, seed=3,
        )
        with TenantPool(
            directions_corpus, config, seeds={"rule_texts": [SEED_RULE]}
        ) as pool:
            report = serve(pool, num_tenants=2, crowd_config=crowd)
            snapshot = registry.snapshot()
        metrics = snapshot["metrics"]
        commits = sum(
            entry["value"]
            for entry in metrics["crowd_commits_total"]["series"]
        )
        assert commits == report.questions_committed
        votes = sum(
            entry["value"] for entry in metrics["crowd_votes_total"]["series"]
        )
        assert votes == sum(
            r.crowd.votes_collected for r in report.results.values()
        )
        # Pool-level gauges from the collector (registered at pool build).
        assert "pool_shared_resident_bytes" in metrics
        assert "pool_feature_cache_hits" in metrics
