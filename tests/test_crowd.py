"""Tests for the crowd session service (coordinator, runner, batching).

The whole suite runs once per coverage backend (memory and arena) via the
shared ``backend_directions_index`` conftest fixture."""

from __future__ import annotations

import pytest

from repro.config import ClassifierConfig, CrowdConfig, DarwinConfig
from repro.core.darwin import Darwin
from repro.core.oracle import (
    BudgetedOracle,
    GroundTruthOracle,
    MajorityVoteOracle,
    NoisyOracle,
    OracleQuery,
)
from repro.core.session import LabelingSession
from repro.crowd import CrowdCoordinator, run_crowd, simulated_annotators
from repro.errors import ConfigurationError, OracleError

SEED_RULE = "best way to get to"


def make_darwin(corpus, index, featurizer, config=None, **overrides):
    config = config or DarwinConfig(
        budget=15, num_candidates=200, min_coverage=2,
        classifier=ClassifierConfig(epochs=20, embedding_dim=30),
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return Darwin(corpus, config=config, index=index, featurizer=featurizer)


def make_coordinator(corpus, index, featurizer, crowd_config, **overrides):
    darwin = make_darwin(corpus, index, featurizer, **overrides)
    darwin.start(seed_rule_texts=[SEED_RULE])
    return CrowdCoordinator(darwin, crowd_config), darwin


class TestCrowdConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrowdConfig(num_annotators=0)
        with pytest.raises(ConfigurationError):
            CrowdConfig(num_annotators=2, redundancy=3)
        with pytest.raises(ConfigurationError):
            CrowdConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            CrowdConfig(annotator_latency=-0.1)
        with pytest.raises(ConfigurationError):
            CrowdConfig(label_noise=1.5)
        with pytest.raises(ConfigurationError):
            CrowdConfig(budget=0)

    def test_in_flight_limit_defaults_to_batch_size(self):
        assert CrowdConfig(batch_size=6).in_flight_limit == 6
        assert CrowdConfig(batch_size=6, max_in_flight=2).in_flight_limit == 2

    def test_with_overrides(self):
        config = CrowdConfig().with_overrides(redundancy=3)
        assert config.redundancy == 3
        with pytest.raises(ConfigurationError):
            CrowdConfig().with_overrides(not_a_field=1)


class TestMajorityVoteOracleDeterminism:
    def _queries(self, darwin, count=6):
        darwin.start(seed_rule_texts=[SEED_RULE])
        queries = []
        for rule in darwin.propose_batch(count):
            queries.append(OracleQuery(
                rule=rule,
                sample_ids=tuple(darwin.sample_for_query(rule)),
                rendered=rule.render(),
            ))
        return queries

    def _crowd(self, corpus, seed):
        return MajorityVoteOracle([
            NoisyOracle(GroundTruthOracle(corpus), flip_prob=0.35,
                        seed=seed * 100 + i)
            for i in range(3)
        ])

    def test_seeded_crowds_answer_identically(self, directions_corpus,
                                              backend_directions_index,
                                              directions_featurizer):
        queries = self._queries(
            make_darwin(directions_corpus, backend_directions_index, directions_featurizer)
        )
        first = self._crowd(directions_corpus, seed=3)
        second = self._crowd(directions_corpus, seed=3)
        answers_a = [first.answer(q).is_useful for q in queries]
        answers_b = [second.answer(q).is_useful for q in queries]
        assert answers_a == answers_b
        assert first.total_votes == second.total_votes == 3 * len(queries)

    def test_different_seeds_can_disagree(self, directions_corpus,
                                          backend_directions_index,
                                          directions_featurizer):
        queries = self._queries(
            make_darwin(directions_corpus, backend_directions_index, directions_featurizer),
            count=8,
        )
        # With 35% flip noise per annotator, at least the vote streams (not
        # necessarily the majorities) must differ across seeds.
        streams = []
        for seed in (1, 2):
            crowd = self._crowd(directions_corpus, seed=seed)
            streams.append([
                [a.answer(q).is_useful for a in crowd.annotators] for q in queries
            ])
        assert streams[0] != streams[1]


class TestDispatch:
    def test_no_duplicate_in_flight_proposals(self, directions_corpus,
                                              backend_directions_index,
                                              directions_featurizer):
        coordinator, _ = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=4, redundancy=1, batch_size=4),
        )
        assignments = [coordinator.request_question(i) for i in range(4)]
        assert all(a is not None for a in assignments)
        rules = [a.rule for a in assignments]
        assert len(set(rules)) == 4
        tickets = {a.ticket_id for a in assignments}
        assert len(tickets) == 4

    def test_redundant_assignment_to_distinct_annotators(self, directions_corpus,
                                                         backend_directions_index,
                                                         directions_featurizer):
        coordinator, _ = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=3, redundancy=3, batch_size=1),
        )
        a0 = coordinator.request_question(0)
        a1 = coordinator.request_question(1)
        a2 = coordinator.request_question(2)
        assert a0.ticket_id == a1.ticket_id == a2.ticket_id
        assert a0.rule == a1.rule == a2.rule
        # The same annotator never receives the same ticket twice: with the
        # in-flight limit reached, annotator 0 has nothing to do.
        assert coordinator.request_question(0) is None

    def test_propose_batch_marks_in_flight(self, directions_corpus,
                                           backend_directions_index,
                                           directions_featurizer):
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)
        darwin.start(seed_rule_texts=[SEED_RULE])
        batch = darwin.propose_batch(5)
        assert len(batch) == len(set(batch)) == 5
        assert darwin.in_flight == set(batch)
        # In-flight rules are reserved via the traversal's queried set;
        # releasing the reservation makes the rule proposable again.
        assert all(rule in darwin.traversal.context.queried for rule in batch)
        darwin.release_in_flight(batch[0])
        assert batch[0] not in darwin.in_flight
        assert batch[0] not in darwin.traversal.context.queried

    def test_unknown_ticket_and_annotator_rejected(self, directions_corpus,
                                                   backend_directions_index,
                                                   directions_featurizer):
        coordinator, _ = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=2, redundancy=1, batch_size=2),
        )
        with pytest.raises(ConfigurationError):
            coordinator.request_question(5)
        with pytest.raises(OracleError):
            coordinator.submit_vote(999, 0, True)
        assignment = coordinator.request_question(0)
        with pytest.raises(OracleError):
            coordinator.submit_vote(assignment.ticket_id, 1, True)  # not assigned

    def test_double_vote_rejected(self, directions_corpus, backend_directions_index,
                                  directions_featurizer):
        coordinator, _ = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=2, redundancy=2, batch_size=1),
        )
        assignment = coordinator.request_question(0)
        coordinator.submit_answer(assignment, True)
        with pytest.raises(OracleError):
            coordinator.submit_vote(assignment.ticket_id, 0, True)

    def test_budget_bounds_dispatch(self, directions_corpus, backend_directions_index,
                                    directions_featurizer):
        coordinator, _ = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=2, redundancy=1, batch_size=8, budget=3),
        )
        committed = 0
        while not coordinator.is_done:
            assignment = coordinator.request_question(committed % 2)
            if assignment is None:
                break
            if coordinator.submit_answer(assignment, True) is not None:
                committed += 1
        assert committed == coordinator.questions_committed == 3

    def test_requires_started_darwin(self, directions_corpus, backend_directions_index,
                                     directions_featurizer):
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)
        with pytest.raises(ConfigurationError):
            CrowdCoordinator(darwin, CrowdConfig())

    def test_transient_exhaustion_with_open_tickets_recovers(
            self, directions_corpus, backend_directions_index, directions_featurizer,
            monkeypatch):
        coordinator, darwin = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=2, redundancy=1, batch_size=4),
        )
        assignment = coordinator.request_question(0)
        assert assignment is not None
        # Simulate the traversal having nothing proposable while a question
        # is still in flight: dispatch stalls but must NOT become terminal.
        original = type(darwin).propose_next
        monkeypatch.setattr(type(darwin), "propose_next", lambda self: None)
        assert coordinator.request_question(1) is None
        assert not coordinator.is_done
        monkeypatch.setattr(type(darwin), "propose_next", original)
        # Once the open ticket commits, dispatch resumes.
        coordinator.submit_answer(assignment, True)
        assert coordinator.request_question(1) is not None


class TestRedundancyCommit:
    def _committed(self, coordinator, votes):
        """Dispatch one ticket to len(votes) annotators and vote it through."""
        record = None
        assignments = [
            coordinator.request_question(annotator_id)
            for annotator_id in range(len(votes))
        ]
        for assignment, vote in zip(assignments, votes):
            result = coordinator.submit_answer(assignment, vote)
            if result is not None:
                record = result
        return record

    def test_majority_accepts(self, directions_corpus, backend_directions_index,
                              directions_featurizer):
        coordinator, darwin = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=3, redundancy=3, batch_size=1),
        )
        before = len(darwin.rule_set)
        record = self._committed(coordinator, [True, False, True])
        assert record is not None and record.answer is True
        assert len(darwin.rule_set) == before + 1

    def test_majority_rejects(self, directions_corpus, backend_directions_index,
                              directions_featurizer):
        coordinator, darwin = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=3, redundancy=3, batch_size=1),
        )
        before = len(darwin.rule_set)
        record = self._committed(coordinator, [False, True, False])
        assert record is not None and record.answer is False
        assert len(darwin.rule_set) == before

    def test_even_redundancy_tie_counts_as_no(self, directions_corpus,
                                              backend_directions_index,
                                              directions_featurizer):
        coordinator, darwin = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=2, redundancy=2, batch_size=1),
        )
        before = len(darwin.rule_set)
        record = self._committed(coordinator, [True, False])
        assert record is not None and record.answer is False
        assert len(darwin.rule_set) == before

    def test_commit_waits_for_all_votes(self, directions_corpus,
                                        backend_directions_index,
                                        directions_featurizer):
        coordinator, _ = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=3, redundancy=3, batch_size=1),
        )
        a0 = coordinator.request_question(0)
        a1 = coordinator.request_question(1)
        assert coordinator.submit_answer(a0, True) is None
        assert coordinator.submit_answer(a1, True) is None
        assert coordinator.questions_committed == 0
        a2 = coordinator.request_question(2)
        assert coordinator.submit_answer(a2, False) is not None
        assert coordinator.questions_committed == 1


class TestBatchedRetrainEquivalence:
    @pytest.fixture(scope="class")
    def serial_run(self, directions_corpus, backend_directions_index,
                   directions_featurizer):
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)
        result = darwin.run(GroundTruthOracle(directions_corpus),
                            seed_rule_texts=[SEED_RULE])
        return darwin, result

    def test_batch_one_matches_serial_history(self, serial_run,
                                              directions_corpus,
                                              backend_directions_index,
                                              directions_featurizer):
        serial_darwin, serial_result = serial_run
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)
        outcome = run_crowd(
            darwin,
            config=CrowdConfig(num_annotators=4, redundancy=1, batch_size=1,
                               annotator_latency=0.0),
            seed_rule_texts=[SEED_RULE],
        )
        result = outcome.darwin_result
        assert result.accepted_rules() == serial_result.accepted_rules()
        assert [
            (h.rule, h.answer, h.covered, h.recall, h.classifier_f1)
            for h in result.history
        ] == [
            (h.rule, h.answer, h.covered, h.recall, h.classifier_f1)
            for h in serial_result.history
        ]
        assert result.queries_used == serial_result.queries_used
        assert darwin.trainer.retrain_count == serial_darwin.trainer.retrain_count

    def test_batching_amortizes_retrains(self, serial_run, directions_corpus,
                                         backend_directions_index,
                                         directions_featurizer):
        serial_darwin, serial_result = serial_run
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)
        outcome = run_crowd(
            darwin,
            config=CrowdConfig(num_annotators=4, redundancy=1, batch_size=5,
                               annotator_latency=0.0),
            seed_rule_texts=[SEED_RULE],
        )
        assert outcome.crowd.questions_committed == serial_result.queries_used
        assert darwin.trainer.retrain_count < serial_darwin.trainer.retrain_count
        # Batched answers still only accept precise rules under a truthful
        # crowd (the answers themselves are never batched, only the retrains).
        truth = directions_corpus.positive_ids()
        for rule in outcome.darwin_result.rule_set.rules:
            assert rule.precision(truth) >= 0.8

    def test_trailing_partial_batch_flushed_by_result(self, directions_corpus,
                                                      backend_directions_index,
                                                      directions_featurizer):
        coordinator, darwin = make_coordinator(
            directions_corpus, backend_directions_index, directions_featurizer,
            CrowdConfig(num_annotators=1, redundancy=1, batch_size=10, budget=3),
        )
        while not coordinator.is_done:
            assignment = coordinator.request_question(0)
            if assignment is None:
                break
            coordinator.submit_answer(assignment, True)
        assert darwin.pending_update_count > 0
        coordinator.result()
        assert darwin.pending_update_count == 0

    def test_noisy_crowd_runs_to_completion(self, directions_corpus,
                                            backend_directions_index,
                                            directions_featurizer):
        config = CrowdConfig(num_annotators=3, redundancy=3, batch_size=4,
                             annotator_latency=0.0, label_noise=0.2, seed=5,
                             budget=8)
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)
        annotators = simulated_annotators(directions_corpus, config)
        assert len(annotators) == 3
        outcome = run_crowd(darwin, config=config, annotators=annotators,
                            seed_rule_texts=[SEED_RULE])
        assert outcome.crowd.questions_committed <= 8
        assert outcome.crowd.votes_collected == \
            3 * outcome.crowd.questions_committed
        assert sum(outcome.crowd.votes_per_annotator.values()) == \
            outcome.crowd.votes_collected


class TestSessionBudgetReconciliation:
    def test_session_budget_capped_by_config(self, directions_corpus,
                                             backend_directions_index,
                                             directions_featurizer):
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)  # config.budget = 15
        session = LabelingSession(darwin, budget=50,
                                  seed_rule_texts=[SEED_RULE])
        assert session.budget == 15

    def test_session_budget_capped_by_prewrapped_oracle(self, directions_corpus,
                                                        backend_directions_index,
                                                        directions_featurizer):
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)
        oracle = BudgetedOracle(base=GroundTruthOracle(directions_corpus),
                                budget=4)
        session = LabelingSession(darwin, budget=10, oracle=oracle,
                                  seed_rule_texts=[SEED_RULE])
        assert session.budget == 4
        answered = 0
        while not session.is_done:
            if session.next_question() is None:
                break
            session.submit_answer()  # the attached oracle answers
            answered += 1
        assert answered == 4
        assert oracle.queries_used == 4

    def test_auto_answer_without_oracle_rejected(self, directions_corpus,
                                                 backend_directions_index,
                                                 directions_featurizer):
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)
        session = LabelingSession(darwin, budget=3,
                                  seed_rule_texts=[SEED_RULE])
        assert session.next_question() is not None
        with pytest.raises(ConfigurationError):
            session.submit_answer()


class TestIncrementalScoringWiring:
    def test_trainer_honours_classifier_config(self, directions_corpus,
                                               directions_featurizer):
        from repro.classifier.trainer import ClassifierTrainer

        config = ClassifierConfig(epochs=5, embedding_dim=30,
                                  incremental_scoring=True)
        trainer = ClassifierTrainer(directions_corpus, directions_featurizer,
                                    config=config)
        assert trainer.incremental_scoring is True
        # An explicit kwarg still overrides the config.
        trainer = ClassifierTrainer(directions_corpus, directions_featurizer,
                                    config=config, incremental_scoring=False)
        assert trainer.incremental_scoring is False

    def test_darwin_builds_incremental_trainer(self, directions_corpus,
                                               backend_directions_index,
                                               directions_featurizer):
        darwin = make_darwin(
            directions_corpus, backend_directions_index, directions_featurizer,
            classifier={"epochs": 5, "embedding_dim": 30,
                        "incremental_scoring": True},
        )
        darwin.start(seed_rule_texts=[SEED_RULE])
        assert darwin.trainer.incremental_scoring is True


class TestSampleForQuery:
    def test_public_name_and_alias_agree(self, directions_corpus,
                                         backend_directions_index,
                                         directions_featurizer):
        darwin = make_darwin(directions_corpus, backend_directions_index,
                             directions_featurizer)
        darwin.start(seed_rule_texts=[SEED_RULE])
        rule = darwin.propose_next()
        sample = darwin.sample_for_query(rule)
        assert 0 < len(sample) <= darwin.config.oracle_sample_size
        assert set(sample) <= set(rule.coverage)
        assert darwin._sample_for_query(rule) is not None  # alias kept
