"""Tests for the classifier substrate (features, models, trainer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifier.base import TrainingSet, sigmoid
from repro.classifier.cnn import CNNTextClassifier
from repro.classifier.features import SentenceFeaturizer
from repro.classifier.logistic import LogisticTextClassifier
from repro.classifier.mlp import MLPTextClassifier
from repro.classifier.trainer import ClassifierTrainer, make_classifier
from repro.config import ClassifierConfig
from repro.errors import ClassifierError


def _separable_data(n=120, d=10, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.standard_normal((n, d))
    labels = (features[:, 0] + 0.5 * features[:, 1] > 0).astype(np.float64)
    return TrainingSet(features=features, labels=labels)


class TestTrainingSetAndHelpers:
    def test_training_set_validation(self):
        with pytest.raises(ClassifierError):
            TrainingSet(features=np.zeros((3, 2)), labels=np.zeros(4))
        with pytest.raises(ClassifierError):
            TrainingSet(features=np.zeros((3, 2)), labels=np.zeros((3, 1)))

    def test_training_set_counts(self):
        ts = TrainingSet(features=np.zeros((4, 2)), labels=np.array([1, 0, 1, 0.0]))
        assert ts.num_positive == 2
        assert ts.num_negative == 2
        assert len(ts) == 4

    def test_sigmoid_stability(self):
        values = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-9)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0, abs=1e-9)


class TestSentenceFeaturizer:
    def test_vector_shape_and_cache(self, example1_corpus):
        featurizer = SentenceFeaturizer.fit(example1_corpus, embedding_dim=16, bow_dim=32)
        vector = featurizer.vector(example1_corpus[0])
        assert vector.shape == (featurizer.vector_dim,)
        assert featurizer.vector(example1_corpus[0]) is vector  # cached
        featurizer.invalidate([0])
        assert featurizer.vector(example1_corpus[0]) is not vector

    def test_matrix_shape(self, example1_corpus):
        featurizer = SentenceFeaturizer.fit(example1_corpus, embedding_dim=16, max_len=12)
        matrix = featurizer.matrix(example1_corpus[0])
        assert matrix.shape == (12, 16)

    def test_batch_shapes(self, example1_corpus):
        featurizer = SentenceFeaturizer.fit(example1_corpus, embedding_dim=16)
        vectors = featurizer.corpus_vectors(example1_corpus)
        matrices = featurizer.corpus_matrices(example1_corpus)
        assert vectors.shape == (6, featurizer.vector_dim)
        assert matrices.shape[0] == 6

    def test_empty_batches(self, example1_corpus):
        featurizer = SentenceFeaturizer.fit(example1_corpus, embedding_dim=8)
        assert featurizer.vectors([]).shape == (0, featurizer.vector_dim)
        assert featurizer.matrices([]).shape[0] == 0

    def test_bow_disabled(self, example1_corpus):
        featurizer = SentenceFeaturizer.fit(example1_corpus, embedding_dim=8, bow_dim=0)
        assert featurizer.vector_dim == 8 + 4

    def test_invalid_params(self, example1_corpus):
        featurizer = SentenceFeaturizer.fit(example1_corpus)
        with pytest.raises(ValueError):
            SentenceFeaturizer(featurizer.embeddings, max_len=0)
        with pytest.raises(ValueError):
            SentenceFeaturizer(featurizer.embeddings, bow_dim=-1)


@pytest.mark.parametrize("model_cls,kwargs", [
    (LogisticTextClassifier, {"epochs": 40, "learning_rate": 0.5}),
    (MLPTextClassifier, {"epochs": 60, "learning_rate": 0.2, "hidden_dim": 16}),
])
class TestVectorModels:
    def test_learns_separable_data(self, model_cls, kwargs):
        data = _separable_data()
        model = model_cls(seed=1, **kwargs)
        model.fit(data)
        accuracy = (model.predict(data.features) == data.labels).mean()
        assert accuracy > 0.85

    def test_predict_before_fit_raises(self, model_cls, kwargs):
        model = model_cls(**kwargs)
        with pytest.raises(ClassifierError):
            model.predict_proba(np.zeros((2, 10)))

    def test_probabilities_in_unit_interval(self, model_cls, kwargs):
        data = _separable_data(n=60)
        model = model_cls(seed=0, **kwargs).fit(data)
        probs = model.predict_proba(data.features)
        assert np.all(probs >= 0) and np.all(probs <= 1)

    def test_deterministic_given_seed(self, model_cls, kwargs):
        data = _separable_data(n=60)
        a = model_cls(seed=3, **kwargs).fit(data).predict_proba(data.features)
        b = model_cls(seed=3, **kwargs).fit(data).predict_proba(data.features)
        assert np.allclose(a, b)

    def test_single_vector_prediction(self, model_cls, kwargs):
        data = _separable_data(n=60)
        model = model_cls(seed=0, **kwargs).fit(data)
        assert model.predict_proba(data.features[0]).shape == (1,)


class TestCNN:
    def _sequence_data(self, n=60, max_len=6, dim=8, seed=0):
        rng = np.random.default_rng(seed)
        tensors = rng.standard_normal((n, max_len, dim)) * 0.1
        labels = rng.integers(0, 2, size=n).astype(np.float64)
        # Positive sequences get a distinctive bigram pattern.
        for i in range(n):
            if labels[i] > 0.5:
                tensors[i, 2, :] += 1.0
                tensors[i, 3, :] -= 1.0
        return TrainingSet(features=tensors, labels=labels)

    def test_learns_sequence_pattern(self):
        data = self._sequence_data()
        model = CNNTextClassifier(epochs=15, learning_rate=0.1, num_filters=4, seed=2)
        model.fit(data)
        accuracy = (model.predict(data.features) == data.labels).mean()
        assert accuracy > 0.8

    def test_rejects_2d_features(self):
        with pytest.raises(ValueError):
            CNNTextClassifier(epochs=1).fit(_separable_data())

    def test_predict_single_matrix(self):
        data = self._sequence_data(n=30)
        model = CNNTextClassifier(epochs=5, num_filters=2, seed=0).fit(data)
        probs = model.predict_proba(data.features[0])
        assert probs.shape == (1,)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CNNTextClassifier(filter_widths=())
        with pytest.raises(ValueError):
            CNNTextClassifier(num_filters=0)
        with pytest.raises(ValueError):
            CNNTextClassifier(epochs=0)


class TestMakeClassifierAndTrainer:
    def test_make_classifier_dispatch(self):
        assert isinstance(make_classifier(ClassifierConfig(model="logistic")),
                          LogisticTextClassifier)
        assert isinstance(make_classifier(ClassifierConfig(model="mlp")),
                          MLPTextClassifier)
        assert isinstance(make_classifier(ClassifierConfig(model="cnn")),
                          CNNTextClassifier)

    def test_trainer_requires_positives(self, directions_corpus, directions_featurizer):
        trainer = ClassifierTrainer(directions_corpus, directions_featurizer)
        with pytest.raises(ClassifierError):
            trainer.retrain(set())

    def test_trainer_scores_improve_over_default(self, directions_corpus, directions_featurizer):
        trainer = ClassifierTrainer(
            directions_corpus, directions_featurizer,
            config=ClassifierConfig(epochs=40, embedding_dim=30),
        )
        truth = directions_corpus.positive_ids()
        seed_positives = set(sorted(truth)[:5])
        trainer.retrain(seed_positives)
        scores = trainer.score_corpus()
        assert scores.shape == (len(directions_corpus),)
        positives = np.array(sorted(truth))
        negatives = np.array(sorted(set(range(len(directions_corpus))) - truth))
        assert scores[positives].mean() > scores[negatives].mean()
        assert trainer.retrain_count == 1

    def test_trainer_f1_and_lookup(self, directions_corpus, directions_featurizer):
        trainer = ClassifierTrainer(
            directions_corpus, directions_featurizer,
            config=ClassifierConfig(epochs=30, embedding_dim=30),
        )
        truth = directions_corpus.positive_ids()
        trainer.retrain(set(sorted(truth)[:10]))
        f1 = trainer.f1_against(truth)
        assert 0.0 <= f1 <= 1.0
        assert set(trainer.scores_for([0, 1])) == {0, 1}
        assert 0.0 <= trainer.score(0) <= 1.0

    def test_incremental_scoring_mode(self, directions_corpus, directions_featurizer):
        trainer = ClassifierTrainer(
            directions_corpus, directions_featurizer,
            config=ClassifierConfig(epochs=10, embedding_dim=30),
            incremental_scoring=True, full_rescore_every=2,
        )
        truth = sorted(directions_corpus.positive_ids())
        trainer.retrain(set(truth[:3]))
        trainer.retrain(set(truth[:6]))
        assert trainer.retrain_count == 2
        assert trainer.score_corpus().shape == (len(directions_corpus),)
