"""Tests for the tokenizer and POS tagger."""

from __future__ import annotations

import pytest

from repro.text.pos import PosTagger, UNIVERSAL_TAGS
from repro.text.tokenizer import Tokenizer, tokenize


class TestTokenizer:
    def test_basic_sentence(self):
        assert tokenize("What is the best way to get to SFO airport?") == [
            "what", "is", "the", "best", "way", "to", "get", "to", "sfo",
            "airport", "?",
        ]

    def test_empty_and_none(self):
        assert tokenize("") == []
        assert Tokenizer().tokenize(None) == []

    def test_lowercasing_can_be_disabled(self):
        tokens = Tokenizer(lowercase=False).tokenize("Uber to SFO")
        assert tokens == ["Uber", "to", "SFO"]

    def test_punctuation_kept_by_default(self):
        assert tokenize("hello, world!") == ["hello", ",", "world", "!"]

    def test_punctuation_can_be_dropped(self):
        tokens = Tokenizer(keep_punctuation=False).tokenize("hello, world!")
        assert tokens == ["hello", "world"]

    def test_contractions_are_split(self):
        assert tokenize("don't") == ["do", "n't"]
        assert tokenize("it's") == ["it", "'s"]
        assert tokenize("we'll") == ["we", "'ll"]

    def test_contraction_splitting_can_be_disabled(self):
        tokens = Tokenizer(split_contractions=False).tokenize("don't")
        assert tokens == ["don't"]

    def test_numbers_stay_whole(self):
        assert tokenize("room 512 costs 99.50 dollars") == [
            "room", "512", "costs", "99.50", "dollars",
        ]

    def test_deterministic(self):
        text = "Is Uber the fastest way to get to the airport?"
        assert tokenize(text) == tokenize(text)

    def test_callable_interface(self):
        tok = Tokenizer()
        assert tok("a b") == ["a", "b"]


class TestPosTagger:
    def setup_method(self):
        self.tagger = PosTagger()

    def test_tags_align_with_tokens(self):
        tokens = tokenize("the shuttle leaves at noon")
        tags = self.tagger.tag(tokens)
        assert len(tags) == len(tokens)
        assert all(tag in UNIVERSAL_TAGS for tag in tags)

    def test_closed_class_words(self):
        assert self.tagger.tag(["the"]) == ["DET"]
        assert self.tagger.tag(["to"]) == ["ADP"]
        assert self.tagger.tag(["is"]) == ["AUX"]
        assert self.tagger.tag(["and"]) == ["CCONJ"]

    def test_punctuation_and_numbers(self):
        assert self.tagger.tag(["?"]) == ["PUNCT"]
        assert self.tagger.tag(["512"]) == ["NUM"]

    def test_suffix_heuristics(self):
        assert self.tagger.tag(["quickly"]) == ["ADV"]
        assert self.tagger.tag(["wonderful"]) == ["ADJ"]

    def test_capitalised_mid_sentence_is_propn(self):
        tags = self.tagger.tag(["visit", "Vienna"])
        assert tags[1] == "PROPN"

    def test_default_is_noun(self):
        assert self.tagger.tag(["zzzqx"]) == ["NOUN"]

    def test_extra_lexicon_wins(self):
        tagger = PosTagger()
        tagger.add_lexicon({"shuttle": "NOUN", "bart": "PROPN"})
        assert tagger.tag(["shuttle", "bart"]) == ["NOUN", "PROPN"]

    def test_extra_lexicon_rejects_unknown_tag(self):
        with pytest.raises(ValueError):
            PosTagger().add_lexicon({"word": "NOT_A_TAG"})

    def test_known_verbs(self):
        tags = self.tagger.tag(["get", "to", "the", "airport"])
        assert tags[0] == "VERB"

    def test_empty_token_is_x(self):
        assert self.tagger.tag([""]) == ["X"]

    def test_callable_interface(self):
        assert self.tagger(["the"]) == ["DET"]
