"""Tests for oracles and benefit scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benefit import BenefitScorer
from repro.core.oracle import (
    BudgetedOracle,
    GroundTruthOracle,
    MajorityVoteOracle,
    NoisyOracle,
    OracleQuery,
    SampleBasedOracle,
)
from repro.errors import BudgetExhaustedError, OracleError
from repro.rules.heuristic import LabelingHeuristic
from repro.text.corpus import Corpus


@pytest.fixture()
def precise_rule(tokensregex, example1_corpus):
    return LabelingHeuristic(tokensregex, ("to", "get", "to")).evaluate(example1_corpus)


@pytest.fixture()
def noisy_rule(tokensregex, example1_corpus):
    return LabelingHeuristic(tokensregex, ("best", "way", "to")).evaluate(example1_corpus)


class TestGroundTruthOracle:
    def test_accepts_precise_rule(self, example1_corpus, precise_rule):
        oracle = GroundTruthOracle(example1_corpus, precision_threshold=0.8)
        answer = oracle.ask(precise_rule, sample_ids=list(precise_rule.coverage)[:3])
        assert answer.is_useful
        assert answer.true_precision == pytest.approx(1.0)

    def test_rejects_imprecise_rule(self, example1_corpus, noisy_rule):
        oracle = GroundTruthOracle(example1_corpus, precision_threshold=0.8)
        answer = oracle.ask(noisy_rule, sample_ids=[0])
        assert not answer.is_useful
        assert answer.true_precision == pytest.approx(1 / 3)

    def test_threshold_validation(self, example1_corpus):
        with pytest.raises(OracleError):
            GroundTruthOracle(example1_corpus, precision_threshold=0.0)

    def test_requires_labels(self):
        corpus = Corpus.from_texts(["a b"])
        with pytest.raises(OracleError):
            GroundTruthOracle(corpus)


class TestSampleBasedAndNoisyOracles:
    def test_sample_based_uses_only_samples(self, example1_corpus, noisy_rule):
        oracle = SampleBasedOracle(example1_corpus, precision_threshold=0.8)
        # Showing only the positive example makes the rule look precise.
        assert oracle.ask(noisy_rule, sample_ids=[0]).is_useful
        # Showing the negatives reveals it is not.
        assert not oracle.ask(noisy_rule, sample_ids=[2, 5]).is_useful

    def test_sample_based_empty_sample_falls_back_to_coverage(self, example1_corpus, precise_rule):
        oracle = SampleBasedOracle(example1_corpus)
        assert oracle.ask(precise_rule, sample_ids=[]).is_useful

    def test_noisy_oracle_flips_with_probability_one(self, example1_corpus, precise_rule):
        base = GroundTruthOracle(example1_corpus)
        flipper = NoisyOracle(base, flip_prob=1.0, seed=0)
        assert not flipper.ask(precise_rule, sample_ids=[0]).is_useful

    def test_noisy_oracle_never_flips_at_zero(self, example1_corpus, precise_rule):
        base = GroundTruthOracle(example1_corpus)
        flipper = NoisyOracle(base, flip_prob=0.0, seed=0)
        assert flipper.ask(precise_rule, sample_ids=[0]).is_useful

    def test_noisy_oracle_validates_probability(self, example1_corpus):
        with pytest.raises(OracleError):
            NoisyOracle(GroundTruthOracle(example1_corpus), flip_prob=2.0)


class TestMajorityVoteOracle:
    def test_majority_wins(self, example1_corpus, precise_rule):
        truth = GroundTruthOracle(example1_corpus)
        always_wrong = NoisyOracle(truth, flip_prob=1.0)
        crowd = MajorityVoteOracle([truth, truth, always_wrong])
        assert crowd.ask(precise_rule, sample_ids=[0]).is_useful
        assert crowd.total_votes == 3

    def test_even_number_rejected(self, example1_corpus):
        truth = GroundTruthOracle(example1_corpus)
        with pytest.raises(OracleError):
            MajorityVoteOracle([truth, truth])

    def test_empty_rejected(self):
        with pytest.raises(OracleError):
            MajorityVoteOracle([])


class TestBudgetedOracle:
    def test_budget_enforced(self, example1_corpus, precise_rule):
        oracle = BudgetedOracle(base=GroundTruthOracle(example1_corpus), budget=2)
        oracle.ask(precise_rule, sample_ids=[0])
        oracle.ask(precise_rule, sample_ids=[0])
        assert oracle.queries_used == 2
        assert oracle.remaining == 0
        with pytest.raises(BudgetExhaustedError):
            oracle.ask(precise_rule, sample_ids=[0])

    def test_log_records_queries_and_answers(self, example1_corpus, precise_rule):
        oracle = BudgetedOracle(base=GroundTruthOracle(example1_corpus), budget=5)
        oracle.ask(precise_rule, sample_ids=[0, 3])
        assert len(oracle.queries) == len(oracle.answers) == 1
        assert isinstance(oracle.queries[0], OracleQuery)
        assert oracle.queries[0].rendered == precise_rule.render()

    def test_budget_validation(self, example1_corpus):
        with pytest.raises(OracleError):
            BudgetedOracle(base=GroundTruthOracle(example1_corpus), budget=0)


class TestBenefitScorer:
    def _scorer(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2, 0.7, 0.05])
        return BenefitScorer(scores, covered_ids={0})

    def test_benefit_sums_new_coverage(self, tokensregex):
        scorer = self._scorer()
        rule = LabelingHeuristic(tokensregex, ("a",)).with_coverage([0, 1, 2])
        assert scorer.benefit(rule) == pytest.approx(0.8 + 0.1)
        assert scorer.average_benefit(rule) == pytest.approx((0.8 + 0.1) / 2)
        assert set(scorer.new_ids(rule)) == {1, 2}

    def test_zero_gain_rule(self, tokensregex):
        scorer = self._scorer()
        rule = LabelingHeuristic(tokensregex, ("a",)).with_coverage([0])
        assert scorer.benefit(rule) == 0.0
        assert scorer.average_benefit(rule) == 0.0

    def test_most_beneficial_and_cutoff(self, tokensregex):
        scorer = self._scorer()
        good = LabelingHeuristic(tokensregex, ("good",)).with_coverage([1, 4])
        weak = LabelingHeuristic(tokensregex, ("weak",)).with_coverage([2, 3, 5])
        assert scorer.most_beneficial([good, weak]) == good
        assert scorer.most_beneficial([weak], min_average=0.5) is None
        assert scorer.most_beneficial([good, weak], min_average=0.5) == good

    def test_rank_is_sorted_by_benefit(self, tokensregex):
        scorer = self._scorer()
        rules = [
            LabelingHeuristic(tokensregex, ("r1",)).with_coverage([1]),
            LabelingHeuristic(tokensregex, ("r2",)).with_coverage([1, 4]),
            LabelingHeuristic(tokensregex, ("r3",)).with_coverage([2]),
        ]
        ranked = scorer.rank(rules)
        benefits = [scorer.benefit(r) for r in ranked]
        assert benefits == sorted(benefits, reverse=True)

    def test_update_invalidates_cache(self, tokensregex):
        scorer = self._scorer()
        rule = LabelingHeuristic(tokensregex, ("a",)).with_coverage([1, 2])
        before = scorer.benefit(rule)
        scorer.update(covered_ids={0, 1})
        after = scorer.benefit(rule)
        assert after < before
        scorer.update(scores=np.zeros(6))
        assert scorer.benefit(rule) == 0.0

    def test_covered_ids_copy(self):
        scorer = self._scorer()
        ids = scorer.covered_ids
        ids.add(99)
        assert 99 not in scorer.covered_ids
