"""Tests for the declarative engine API: registries, config construction,
checkpoint/resume state protocol, and the parallel index build.

The construction and checkpoint/resume suites run on both coverage backends
(memory and arena) through the shared ``backend_index_spec`` conftest
fixture, so the replay guarantee is enforced per backend instead of only on
the heap layout."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Darwin, DarwinEngine, GroundTruthOracle
from repro.config import ClassifierConfig, DarwinConfig
from repro.datasets import load_dataset
from repro.engine.registry import (
    CLASSIFIERS,
    DATASETS,
    GRAMMARS,
    ORACLES,
    TRAVERSALS,
    Registry,
    check_shipped_registrations,
)
from repro.engine.state import (
    STATE_SCHEMA_VERSION,
    read_checkpoint,
    write_checkpoint,
)
from repro.errors import ConfigurationError
from repro.grammars import TokensRegexGrammar
from repro.index import CorpusIndex


def engine_spec(dataset: str, seed_rule: str, budget: int = 12) -> dict:
    """A small, fast engine config used across the checkpoint tests."""
    return {
        "dataset": {"name": dataset, "num_sentences": 450, "seed": 3,
                    "parse_trees": False},
        "config": {"budget": budget, "traversal": "hybrid",
                   "num_candidates": 300, "grammars": ["tokensregex"],
                   "oracle": "ground_truth",
                   "classifier": {"model": "logistic", "epochs": 10}},
        "seeds": {"rule_texts": [seed_rule]},
    }


class TestRegistry:
    def test_register_and_create(self):
        registry = Registry("widget")
        registry.register("fixed", lambda value=1: value * 2)
        assert "fixed" in registry
        assert registry.create("fixed", value=4) == 8
        assert registry.names() == ("fixed",)

    def test_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("deco")
        def make(value: int = 0):
            return value + 1

        assert registry.create("deco", value=9) == 10

    def test_duplicate_rejected_without_overwrite(self):
        registry = Registry("widget")
        registry.register("x", lambda: 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("x", lambda: 2)
        registry.register("x", lambda: 3, overwrite=True)
        assert registry.create("x") == 3

    def test_unknown_name_lists_available(self):
        registry = Registry("widget")
        registry.register("only", lambda: 1)
        with pytest.raises(ConfigurationError, match="only"):
            registry.get("missing")

    def test_shipped_components_are_registered(self):
        check_shipped_registrations()
        assert {"tokensregex", "treematch"} <= set(GRAMMARS.names())
        assert {"logistic", "mlp", "cnn"} <= set(CLASSIFIERS.names())
        assert {"local", "universal", "hybrid"} <= set(TRAVERSALS.names())
        assert "ground_truth" in ORACLES
        assert {"directions", "musicians", "professions", "tweets",
                "cause-effect"} <= set(DATASETS.names())


class TestConfigNames:
    def test_unknown_grammar_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown grammar"):
            DarwinConfig(grammars=("not-a-grammar",))

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown oracle"):
            DarwinConfig(oracle="psychic")

    def test_dict_roundtrip(self):
        config = DarwinConfig(
            budget=9, grammars=("tokensregex", "treematch"),
            oracle="sample_based",
            classifier=ClassifierConfig(model="mlp", epochs=5),
        )
        assert DarwinConfig.from_dict(config.as_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="bad darwin config"):
            DarwinConfig.from_dict({"budget": 5, "warp_speed": True})


class TestFromConfig:
    def test_builds_and_runs_without_class_imports(self, backend_index_spec):
        spec = engine_spec("directions", "best way to get to", budget=5)
        spec["config"]["index"] = backend_index_spec()
        engine = DarwinEngine.from_config(spec)
        result = engine.run()
        assert result.queries_used == 5
        assert engine.questions_asked == 5

    def test_matches_legacy_darwin_entry_point(self):
        corpus = load_dataset("directions", num_sentences=450, seed=3,
                              parse_trees=False)
        config = DarwinConfig(budget=6, num_candidates=300,
                              classifier=ClassifierConfig(epochs=10))
        legacy = Darwin(corpus, config=config).run(
            GroundTruthOracle(corpus), seed_rule_texts=["best way to get to"]
        )
        engine = DarwinEngine(
            corpus, config=config,
            seeds={"rule_texts": ["best way to get to"]},
        ).run()
        assert engine.history == legacy.history

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine config"):
            DarwinEngine.from_config({"datasets": {"name": "directions"}})

    def test_missing_dataset_rejected(self):
        with pytest.raises(ConfigurationError, match="dataset"):
            DarwinEngine.from_config({"config": {"budget": 5}})

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            DarwinEngine.from_config({"dataset": "reviews"})


@pytest.mark.parametrize(
    "dataset, seed_rule",
    [("directions", "best way to get to"), ("musicians", "composer")],
)
class TestCheckpointResume:
    def test_resume_is_question_for_question_identical(
        self, tmp_path, dataset, seed_rule, backend_index_spec
    ):
        spec = engine_spec(dataset, seed_rule, budget=12)
        spec["config"]["index"] = backend_index_spec()
        straight = DarwinEngine.from_config(spec).run()

        # A fresh index spec per engine: two engines must never build over
        # (and truncate) one another's arena file.
        spec = engine_spec(dataset, seed_rule, budget=12)
        spec["config"]["index"] = backend_index_spec()
        interrupted = DarwinEngine.from_config(spec)
        interrupted.run(budget=6)
        path = interrupted.save(str(tmp_path / "mid.npz"))

        resumed = DarwinEngine.load(path)
        assert resumed.questions_asked == 6
        result = resumed.run(budget=12)

        assert result.history == straight.history
        assert result.rule_set.describe() == straight.rule_set.describe()
        assert result.covered_ids == straight.covered_ids

    def test_resume_identical_with_stochastic_oracle(
        self, tmp_path, dataset, seed_rule, backend_index_spec
    ):
        # The replay guarantee must hold for noisy oracles too: the oracle's
        # RNG stream is checkpointed and resumed mid-stream, not re-seeded.
        def noisy_spec() -> dict:
            spec = engine_spec(dataset, seed_rule, budget=12)
            spec["config"]["index"] = backend_index_spec()
            spec["config"]["oracle"] = "noisy_ground_truth"
            spec["oracle_options"] = {"flip_prob": 0.3, "seed": 11}
            return spec

        straight = DarwinEngine.from_config(noisy_spec()).run()

        interrupted = DarwinEngine.from_config(noisy_spec())
        interrupted.run(budget=7)
        path = interrupted.save(str(tmp_path / "noisy.npz"))
        resumed = DarwinEngine.load(path).run(budget=12)

        assert resumed.history == straight.history

    def test_restored_engine_state_matches(
        self, tmp_path, dataset, seed_rule, backend_index_spec
    ):
        spec = engine_spec(dataset, seed_rule, budget=12)
        spec["config"]["index"] = backend_index_spec()
        engine = DarwinEngine.from_config(spec)
        engine.run(budget=6)
        path = engine.save(str(tmp_path / "mid.npz"))
        restored = DarwinEngine.load(path)

        darwin, other = engine.darwin, restored.darwin
        assert other.positive_ids == darwin.positive_ids
        assert other.rule_set.describe() == darwin.rule_set.describe()
        assert sorted(r.render() for r in other.hierarchy.rules()) == sorted(
            r.render() for r in darwin.hierarchy.rules()
        )
        assert {r.render() for r in other.traversal.context.queried} == {
            r.render() for r in darwin.traversal.context.queried
        }
        assert other.trainer.retrain_count == darwin.trainer.retrain_count
        np.testing.assert_allclose(
            other.trainer.score_corpus(), darwin.trainer.score_corpus()
        )
        # The restored classifier answers without a retrain.
        assert other.trainer.classifier is not None
        assert other.trainer.classifier.is_fitted


class TestCheckpointValidation:
    def _small_checkpoint(self, tmp_path) -> str:
        engine = DarwinEngine.from_config(
            engine_spec("directions", "best way to get to", budget=4)
        )
        engine.run(budget=2)
        return engine.save(str(tmp_path / "ck.npz"))

    def test_truncated_file_raises(self, tmp_path):
        path = self._small_checkpoint(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 3])
        with pytest.raises(ConfigurationError):
            DarwinEngine.load(path)

    def test_garbage_file_raises(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        with open(path, "wb") as handle:
            handle.write(b"this is not a checkpoint")
        with pytest.raises(ConfigurationError):
            DarwinEngine.load(path)

    def test_foreign_npz_raises(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        with open(path, "wb") as handle:
            np.savez(handle, values=np.arange(4))
        with pytest.raises(ConfigurationError, match="not a Darwin engine"):
            DarwinEngine.load(path)

    def test_mismatched_schema_version_raises(self, tmp_path):
        path = self._small_checkpoint(tmp_path)
        manifest, bundle = read_checkpoint(path)
        manifest["schema_version"] = STATE_SCHEMA_VERSION + 1
        arrays = {name: bundle.get(name) for name in bundle.names()}
        write_checkpoint(path, manifest, arrays)
        with pytest.raises(ConfigurationError, match="schema version"):
            DarwinEngine.load(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            DarwinEngine.load(str(tmp_path / "nope.npz"))

    def test_mismatched_corpus_rejected_on_load(self, tmp_path):
        path = self._small_checkpoint(tmp_path)
        wrong_size = load_dataset("directions", num_sentences=200, seed=3,
                                  parse_trees=False)
        with pytest.raises(ConfigurationError, match="sentences"):
            DarwinEngine.load(path, corpus=wrong_size)
        wrong_name = load_dataset("musicians", num_sentences=450, seed=3,
                                  parse_trees=False)
        with pytest.raises(ConfigurationError, match="corpus"):
            DarwinEngine.load(path, corpus=wrong_name)

    def test_checkpoint_path_alone_writes_final_state(self, tmp_path):
        path = str(tmp_path / "final_only.npz")
        engine = DarwinEngine.from_config(
            engine_spec("directions", "best way to get to", budget=4)
        )
        engine.run(budget=3, checkpoint_path=path)
        assert DarwinEngine.load(path).questions_asked == 3

    def test_explicit_grammars_demanded_back_on_load(self, tmp_path):
        corpus = load_dataset("directions", num_sentences=450, seed=3,
                              parse_trees=False)
        grammar = TokensRegexGrammar(max_phrase_len=6)
        engine = DarwinEngine(
            corpus, config=DarwinConfig(budget=4, num_candidates=300,
                                        classifier=ClassifierConfig(epochs=8)),
            grammars=[grammar],
            seeds={"rule_texts": ["best way to get to"]},
        )
        engine.run(budget=2)
        path = engine.save(str(tmp_path / "explicit.npz"))
        # Silently rebuilding from registry defaults would hand back a
        # max_phrase_len=4 grammar; the load must demand the instances.
        with pytest.raises(ConfigurationError, match="explicit grammar"):
            DarwinEngine.load(path, corpus=corpus)
        restored = DarwinEngine.load(path, corpus=corpus, grammars=[grammar])
        assert restored.questions_asked == 2

    def test_foreign_oracle_demanded_back_on_load(self, tmp_path):
        from repro import GroundTruthOracle, NoisyOracle

        spec = engine_spec("directions", "best way to get to", budget=6)
        engine = DarwinEngine.from_config(spec)
        oracle = NoisyOracle(GroundTruthOracle(engine.corpus), flip_prob=0.4,
                             seed=11)
        engine.run(oracle=oracle, budget=3)
        path = engine.save(str(tmp_path / "foreign_oracle.npz"))
        # config.oracle is 'ground_truth'; rebuilding that would silently
        # drop the noisy oracle's RNG stream.
        with pytest.raises(ConfigurationError, match="NoisyOracle"):
            DarwinEngine.load(path)
        fresh = NoisyOracle(GroundTruthOracle(engine.corpus), flip_prob=0.4,
                            seed=11)
        restored = DarwinEngine.load(path, oracle=fresh)
        assert restored.oracle is fresh
        assert fresh._rng.bit_generator.state == oracle._rng.bit_generator.state


class TestEngineSessions:
    def test_session_continues_after_load(self, tmp_path):
        spec = engine_spec("directions", "best way to get to", budget=8)
        engine = DarwinEngine.from_config(spec)
        engine.run(budget=4)
        path = engine.save(str(tmp_path / "mid.npz"))

        restored = DarwinEngine.load(path)
        session = restored.session(budget=8, oracle=restored.build_oracle())
        assert session.questions_asked == 0  # session-level counter
        question = session.next_question()
        assert question is not None
        record = session.submit_answer()
        assert record.question_number == 5  # continues the run's history

    def test_session_oracle_is_adopted_into_checkpoints(self, tmp_path):
        from repro import GroundTruthOracle, NoisyOracle

        engine = DarwinEngine.from_config(
            engine_spec("directions", "best way to get to", budget=6)
        )
        noisy = NoisyOracle(GroundTruthOracle(engine.corpus), flip_prob=0.4,
                            seed=7)
        session = engine.session(budget=6, oracle=noisy)
        session.next_question()
        session.submit_answer()
        path = engine.save(str(tmp_path / "session_oracle.npz"))
        # The session's oracle became the engine's persistent one, so load()
        # detects that the config cannot rebuild it instead of silently
        # substituting a fresh ground-truth oracle.
        with pytest.raises(ConfigurationError, match="NoisyOracle"):
            DarwinEngine.load(path)

    def test_crowd_over_started_engine(self):
        engine = DarwinEngine.from_config(
            engine_spec("directions", "best way to get to", budget=6)
        )
        engine.start()
        coordinator = engine.crowd()
        assignment = coordinator.request_question(0)
        assert assignment is not None

    def test_continued_session_cannot_exceed_config_budget(self, tmp_path):
        spec = engine_spec("directions", "best way to get to", budget=8)
        engine = DarwinEngine.from_config(spec)
        engine.run(budget=5)
        path = engine.save(str(tmp_path / "mid.npz"))
        restored = DarwinEngine.load(path)
        # 5 of the 8 budgeted questions are spent; a continued session only
        # gets the remainder no matter what it asks for.
        session = restored.session(budget=8, oracle=restored.build_oracle())
        assert session.budget == 3

    def test_in_flight_questions_are_released_on_restore(self, tmp_path):
        from repro.config import CrowdConfig

        engine = DarwinEngine.from_config(
            engine_spec("directions", "best way to get to", budget=8)
        )
        engine.start()
        coordinator = engine.crowd(CrowdConfig(num_annotators=2, batch_size=2))
        first = coordinator.request_question(0)
        second = coordinator.request_question(1)
        assert first is not None and second is not None
        assert first.rule != second.rule
        assert len(engine.darwin.in_flight) == 2

        path = engine.save(str(tmp_path / "inflight.npz"))
        manifest, _ = read_checkpoint(path)
        assert len(manifest["darwin"]["in_flight"]) == 2

        restored = DarwinEngine.load(path)
        # The votes died with the process: reservations come back released,
        # so a resumed session can re-propose exactly those rules.
        assert restored.darwin.in_flight == set()
        reproposed = restored.darwin.propose_next()
        assert reproposed is not None
        assert reproposed.render() in {first.rule.render(), second.rule.render()}

    def test_export_state_summary(self, tmp_path):
        from repro.engine.engine import export_state_json

        engine = DarwinEngine.from_config(
            engine_spec("directions", "best way to get to", budget=4)
        )
        engine.run(budget=3)
        path = engine.save(str(tmp_path / "ck.npz"))
        summary = json.loads(export_state_json(path))
        assert summary["schema_version"] == STATE_SCHEMA_VERSION
        assert summary["questions_asked"] == 3
        assert summary["dataset"]["name"] == "directions"
        assert "darwin/trainer/scores" in summary["arrays"]


class TestParallelIndexBuild:
    def test_parallel_build_equals_serial(self):
        corpus = load_dataset("directions", num_sentences=300, seed=5,
                              parse_trees=False)
        grammars = [TokensRegexGrammar(max_phrase_len=3)]
        serial = CorpusIndex.build(corpus, grammars, max_depth=6, min_coverage=2)
        parallel = CorpusIndex.build_parallel(
            corpus, grammars, max_depth=6, min_coverage=2, num_chunks=3
        )
        assert set(serial.nodes) == set(parallel.nodes)
        for key, node in serial.nodes.items():
            other = parallel.nodes[key]
            assert set(node.sentence_ids) == set(other.sentence_ids)
            assert node.children == other.children
            assert node.parents == other.parents
        assert serial.num_sentences == parallel.num_sentences
        query = corpus.positive_ids()
        assert serial.top_by_overlap(query, 10) == parallel.top_by_overlap(query, 10)

    def test_single_chunk_falls_back_to_serial(self):
        corpus = load_dataset("directions", num_sentences=120, seed=5,
                              parse_trees=False)
        grammars = [TokensRegexGrammar(max_phrase_len=3)]
        index = CorpusIndex.build_parallel(
            corpus, grammars, max_depth=6, min_coverage=2, num_chunks=1
        )
        assert index.sealed
        assert index.num_sentences == len(corpus)


class TestCliVersion:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out
