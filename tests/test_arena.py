"""Tests for the memory-mapped coverage arena backend.

Covers the arena file format (create / append / reattach / corruption), the
arena-backed :class:`CoverageStore` (zero-copy views, digest-verified
checkpoint references, the ``num_interned``-vs-offsets validation bugfix,
the LRU bitset byte budget), arena-backed index builds (serial and sharded
parallel), and the engine checkpoint/resume path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.engine import DarwinEngine
from repro.engine.state import ArrayBundle
from repro.errors import ConfigurationError
from repro.grammars import TokensRegexGrammar
from repro.index.arena import ArenaConfig, CoverageArena, HEADER_SIZE
from repro.index.coverage import CoverageStore
from repro.index.trie_index import CorpusIndex


def arena_store(tmp_path, name="store.arena", **kwargs):
    return CoverageStore(
        backend="arena", path=str(tmp_path / name),
        arena_config=ArenaConfig(**kwargs) if kwargs else None,
    )


class TestCoverageArenaFile:
    def test_create_append_reattach_roundtrip(self, tmp_path):
        path = str(tmp_path / "roundtrip.arena")
        arena = CoverageArena.create(path)
        first = arena.append(np.array([1, 5, 9], dtype=np.int32))
        second = arena.append(np.array([], dtype=np.int32))
        third = arena.append(np.array([2, 3], dtype=np.int32))
        arena.flush()
        digest = arena.digest
        arena.close()

        reattached = CoverageArena.open(path, expected_digest=digest)
        assert reattached.num_interned == 3
        assert reattached.values_slice(first).tolist() == [1, 5, 9]
        assert reattached.values_slice(second).tolist() == []
        assert reattached.values_slice(third).tolist() == [2, 3]
        reattached.close()

    def test_values_slice_is_mmap_backed(self, tmp_path):
        arena = CoverageArena.create(str(tmp_path / "mmap.arena"))
        slot = arena.append(np.arange(10, dtype=np.int32))
        ids = arena.values_slice(slot)
        root = ids
        while getattr(root, "base", None) is not None:
            root = root.base
        assert isinstance(root, (np.memmap, memoryview)) or hasattr(root, "flush")
        assert not ids.flags.writeable

    def test_append_after_reattach_keeps_earlier_slots(self, tmp_path):
        path = str(tmp_path / "grow.arena")
        arena = CoverageArena.create(path)
        arena.append(np.array([7, 8], dtype=np.int32))
        arena.flush()
        arena.close()

        grown = CoverageArena.open(path)
        grown.append(np.array([10, 20, 30], dtype=np.int32))
        grown.flush()
        grown.close()

        final = CoverageArena.open(path)
        assert final.num_interned == 2
        assert final.values_slice(0).tolist() == [7, 8]
        assert final.values_slice(1).tolist() == [10, 20, 30]
        final.close()

    def test_append_self_commits_without_explicit_flush(self, tmp_path):
        path = str(tmp_path / "autocommit.arena")
        arena = CoverageArena.create(path)
        arena.append(np.array([4, 5], dtype=np.int32))
        arena.append(np.array([6], dtype=np.int32))
        # No flush() call: every append batch must leave the file consistent.
        reattached = CoverageArena.open(path)
        assert reattached.num_interned == 2
        assert reattached.values_slice(0).tolist() == [4, 5]
        assert reattached.values_slice(1).tolist() == [6]
        reattached.close()
        arena.close()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            CoverageArena.open(str(tmp_path / "nope.arena"))

    def test_garbage_header_raises(self, tmp_path):
        path = tmp_path / "garbage.arena"
        path.write_bytes(b"not an arena at all" * 300)
        with pytest.raises(ConfigurationError, match="not a coverage arena"):
            CoverageArena.open(str(path))

    def test_truncated_file_raises(self, tmp_path):
        path = str(tmp_path / "truncated.arena")
        arena = CoverageArena.create(path)
        arena.append(np.arange(100, dtype=np.int32))
        arena.flush()
        arena.close()
        with open(path, "r+b") as handle:
            handle.truncate(HEADER_SIZE + 40)
        with pytest.raises(ConfigurationError, match="truncated"):
            CoverageArena.open(path)

    def test_corrupted_values_raise(self, tmp_path):
        path = str(tmp_path / "corrupt.arena")
        arena = CoverageArena.create(path)
        arena.append(np.arange(50, dtype=np.int32))
        arena.flush()
        arena.close()
        with open(path, "r+b") as handle:
            handle.seek(HEADER_SIZE + 8)
            handle.write(b"\xde\xad\xbe\xef")
        with pytest.raises(ConfigurationError, match="corrupted"):
            CoverageArena.open(path)

    def test_expected_digest_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "swapped.arena")
        arena = CoverageArena.create(path)
        arena.append(np.array([1, 2], dtype=np.int32))
        arena.flush()
        arena.close()
        with pytest.raises(ConfigurationError, match="checkpoint reference"):
            CoverageArena.open(path, expected_digest="0" * 32)


class TestArenaStore:
    def test_interning_dedup_and_set_semantics(self, tmp_path):
        store = arena_store(tmp_path)
        view = store.intern([4, 2, 2, 8])
        again = store.intern({8, 4, 2})
        assert view is again
        assert view == {2, 4, 8}
        assert view.ids.tolist() == [2, 4, 8]
        assert 4 in view and 5 not in view
        assert store.intern([]) is store.empty

    def test_empty_store_state_roundtrip(self, tmp_path):
        store = arena_store(tmp_path)
        bundle = ArrayBundle()
        state = store.to_state(bundle)
        assert state["backend"] == "arena"
        restored = CoverageStore.from_state(state, bundle)
        assert restored.backend == "arena"
        assert restored.num_interned == 1  # just the empty slot
        assert restored.empty.count == 0

    def test_reattach_after_restart(self, tmp_path):
        store = arena_store(tmp_path)
        coverages = [[1, 2, 3], [9], [5, 6], list(range(40))]
        views = [store.intern(ids) for ids in coverages]
        bundle = ArrayBundle()
        state = store.to_state(bundle)
        del store, views  # "process exit": drop every live handle

        restored = CoverageStore.from_state(state, bundle)
        assert restored.num_interned == 1 + len(coverages)
        for position, ids in enumerate(coverages):
            view = restored.interned_views()[position + 1]
            assert view.ids.tolist() == sorted(ids)
            assert restored.intern(ids) is view

    def test_from_state_digest_mismatch_raises(self, tmp_path):
        store = arena_store(tmp_path)
        store.intern(np.arange(64, dtype=np.int32))
        bundle = ArrayBundle()
        state = store.to_state(bundle)
        # Mutate the arena after the checkpoint reference was taken.
        store.intern([999, 1000])
        store.flush()
        with pytest.raises(ConfigurationError, match="digest"):
            CoverageStore.from_state(state, bundle)

    def test_from_state_missing_arena_raises(self, tmp_path):
        store = arena_store(tmp_path)
        store.intern([1, 2])
        bundle = ArrayBundle()
        state = store.to_state(bundle)
        os.unlink(state["arena"]["path"])
        with pytest.raises(ConfigurationError, match="not found"):
            CoverageStore.from_state(state, bundle)

    def test_from_state_num_interned_mismatch_arena(self, tmp_path):
        store = arena_store(tmp_path)
        store.intern([1, 2])
        bundle = ArrayBundle()
        state = store.to_state(bundle)
        state["num_interned"] = 7
        with pytest.raises(ConfigurationError, match="num_interned"):
            CoverageStore.from_state(state, bundle)

    def test_from_state_num_interned_mismatch_inline(self):
        # The bugfix: a disagreeing num_interned used to silently truncate
        # the restored store instead of raising.
        store = CoverageStore(universe_size=16)
        store.intern([1, 2])
        store.intern([3])
        bundle = ArrayBundle()
        state = store.to_state(bundle)
        state["num_interned"] = 1
        with pytest.raises(ConfigurationError, match="num_interned"):
            CoverageStore.from_state(state, bundle)

    def test_from_state_inconsistent_offsets_inline(self):
        store = CoverageStore(universe_size=16)
        store.intern([1, 2, 3])
        bundle = ArrayBundle()
        state = store.to_state(bundle)
        bad_bundle = ArrayBundle()
        bad_bundle.put(state["values"], bundle.get(state["values"]))
        bad_bundle.put(state["offsets"], np.array([0, 99], dtype=np.int64))
        state["num_interned"] = 1
        with pytest.raises(ConfigurationError, match="offsets"):
            CoverageStore.from_state(state, bad_bundle)

    def test_bitset_cache_respects_byte_budget(self, tmp_path):
        universe = 512
        budget = 3 * (universe // 8)  # room for three packed bitsets
        store = arena_store(tmp_path, bitset_cache_bytes=budget)
        store.ensure_universe(universe)
        views = [
            store.intern(np.arange(start, universe, 2, dtype=np.int32))
            for start in range(10)
        ]
        dense = store.intern(np.arange(universe, dtype=np.int32))
        for view in views:
            # Dense-vs-dense intersections route through the budgeted cache.
            expected = len(set(view.ids.tolist()) & set(dense.ids.tolist()))
            assert view.intersect_count(dense) == expected
        stats = store.bitset_cache_stats()
        assert stats["cached_bytes"] <= budget
        assert stats["misses"] > 0

    def test_bitset_cache_zero_budget_disables_fast_path(self, tmp_path):
        store = arena_store(tmp_path, bitset_cache_bytes=0)
        store.ensure_universe(256)
        a = store.intern(np.arange(0, 256, 2, dtype=np.int32))
        b = store.intern(np.arange(0, 256, 4, dtype=np.int32))
        assert a.intersect_count(b) == 64
        assert store.bitset_cache_stats()["cached_entries"] == 0


class TestArenaStoreProperties:
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=120), max_size=25),
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_arena_interning_matches_memory(self, tmp_path_factory, coverages):
        """Arena-backed interning is view-for-view equal to in-memory."""
        tmp = tmp_path_factory.mktemp("arena-prop")
        memory = CoverageStore(universe_size=128)
        arena = CoverageStore(
            backend="arena", path=str(tmp / "prop.arena"),
            arena_config=ArenaConfig(bitset_cache_bytes=1 << 16),
        )
        arena.ensure_universe(128)
        memory_views = [memory.intern(ids) for ids in coverages]
        arena_views = [arena.intern(ids) for ids in coverages]
        assert memory.num_interned == arena.num_interned
        probe = np.zeros(128, dtype=bool)
        probe[::3] = True
        for mem_view, arena_view in zip(memory_views, arena_views):
            assert mem_view.ids.tolist() == arena_view.ids.tolist()
            assert mem_view.to_set() == arena_view.to_set()
            assert hash(mem_view) == hash(arena_view)
            assert mem_view.overlap_with(probe) == arena_view.overlap_with(probe)
            for other in arena_views:
                assert (
                    arena_view.intersect_count(other)
                    == len(mem_view.to_set() & other.to_set())
                )


class TestArenaIndex:
    def test_serial_build_matches_memory(self, tmp_path, directions_corpus):
        grammar = TokensRegexGrammar(max_phrase_len=4)
        memory = CorpusIndex.build(
            directions_corpus, [grammar], max_depth=10, min_coverage=2
        )
        arena = CorpusIndex.build(
            directions_corpus, [TokensRegexGrammar(max_phrase_len=4)],
            max_depth=10, min_coverage=2,
            coverage_backend="arena",
            arena_config=ArenaConfig(path=str(tmp_path / "serial.arena")),
        )
        assert arena.store.backend == "arena"
        assert set(memory.nodes) == set(arena.nodes)
        for key in memory.nodes:
            assert (
                list(memory.nodes[key].sentence_ids)
                == list(arena.nodes[key].sentence_ids)
            )
        query = sorted(directions_corpus.positive_ids())[:15]
        assert memory.top_by_overlap(query, 25) == arena.top_by_overlap(query, 25)

    def test_rebuild_over_existing_arena_path_starts_fresh(
        self, tmp_path, example1_corpus, tokensregex
    ):
        # A fresh build must truncate a stale arena at the same path, not
        # adopt its slots (which would inflate the universe and silently
        # disable the bitset fast path) or grow the file across reruns.
        path = str(tmp_path / "reused.arena")
        stale = CoverageStore(backend="arena", path=path)
        stale.intern(np.arange(0, 200_000, 7, dtype=np.int32))
        stale.flush()
        del stale
        first_size = os.path.getsize(path)

        index = CorpusIndex.build(
            example1_corpus, [tokensregex], max_depth=6,
            coverage_backend="arena", arena_config=ArenaConfig(path=path),
        )
        assert index.store.universe_size == len(example1_corpus)
        assert os.path.getsize(path) < first_size
        again = CorpusIndex.build(
            example1_corpus, [tokensregex], max_depth=6,
            coverage_backend="arena", arena_config=ArenaConfig(path=path),
        )
        assert again.store.num_interned == index.store.num_interned

    def test_parallel_build_matches_serial(self, tmp_path, directions_corpus):
        grammar = TokensRegexGrammar(max_phrase_len=4)
        serial = CorpusIndex.build(
            directions_corpus, [grammar], max_depth=10, min_coverage=2
        )
        parallel = CorpusIndex.build_parallel(
            directions_corpus, [TokensRegexGrammar(max_phrase_len=4)],
            max_depth=10, min_coverage=2, num_chunks=3,
            coverage_backend="arena",
            arena_config=ArenaConfig(path=str(tmp_path / "parallel.arena")),
        )
        assert parallel.store.backend == "arena"
        assert set(serial.nodes) == set(parallel.nodes)
        for key in serial.nodes:
            assert (
                list(serial.nodes[key].sentence_ids)
                == list(parallel.nodes[key].sentence_ids)
            )
        assert serial.num_sentences == parallel.num_sentences


ENGINE_SPEC = {
    "dataset": {"name": "directions", "num_sentences": 400, "seed": 3,
                "parse_trees": False},
    "config": {"budget": 8, "num_candidates": 300,
               "grammars": ["tokensregex"], "oracle": "ground_truth",
               "classifier": {"model": "logistic", "epochs": 10,
                              "embedding_dim": 30}},
    "seeds": {"rule_texts": ["best way to get to"]},
}


def engine_spec(tmp_path=None):
    import copy

    spec = copy.deepcopy(ENGINE_SPEC)
    if tmp_path is not None:
        spec["config"]["index"] = {
            "coverage_backend": "arena",
            "arena_path": str(tmp_path / "engine.arena"),
            "bitset_cache_bytes": 1 << 20,
        }
    return spec


class TestArenaEngine:
    def test_checkpoint_resume_matches_memory_backend(self, tmp_path):
        memory_history = DarwinEngine.from_config(engine_spec()).run().history

        engine = DarwinEngine.from_config(engine_spec(tmp_path))
        assert engine.darwin.index.store.backend == "arena"
        engine.run(budget=4)
        checkpoint = str(tmp_path / "engine.npz")
        engine.save(checkpoint)

        resumed = DarwinEngine.load(checkpoint)
        assert resumed.darwin.index.store.backend == "arena"
        assert resumed.questions_asked == 4
        result = resumed.run(budget=8)
        assert result.history == memory_history

    def test_checkpoint_is_reference_not_copy(self, tmp_path):
        engine = DarwinEngine.from_config(engine_spec(tmp_path))
        engine.run(budget=3)
        checkpoint = str(tmp_path / "reference.npz")
        engine.save(checkpoint)
        summary = DarwinEngine.describe_checkpoint(checkpoint)
        assert summary["coverage_backend"] == "arena"
        assert summary["arena"]["path"] == str(tmp_path / "engine.arena")
        # The coverage columns must not be re-serialized into the npz.
        assert not any(
            name.startswith("index/store/") for name in summary["arrays"]
        )

    def test_load_with_deleted_arena_raises(self, tmp_path):
        engine = DarwinEngine.from_config(engine_spec(tmp_path))
        engine.run(budget=3)
        checkpoint = str(tmp_path / "dangling.npz")
        engine.save(checkpoint)
        del engine
        os.unlink(str(tmp_path / "engine.arena"))
        with pytest.raises(ConfigurationError, match="not found"):
            DarwinEngine.load(checkpoint)

    def test_load_with_tampered_arena_raises(self, tmp_path):
        engine = DarwinEngine.from_config(engine_spec(tmp_path))
        engine.run(budget=3)
        checkpoint = str(tmp_path / "tampered.npz")
        engine.save(checkpoint)
        del engine
        with open(str(tmp_path / "engine.arena"), "r+b") as handle:
            handle.seek(HEADER_SIZE)
            handle.write(b"\xff\xff\xff\x7f")
        with pytest.raises(ConfigurationError, match="corrupted|digest"):
            DarwinEngine.load(checkpoint)
