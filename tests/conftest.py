"""Shared pytest fixtures.

Fixtures are intentionally small (hundreds of sentences at most) so the full
suite runs in well under a minute; the benchmark harness exercises the larger
configurations.

Cross-backend matrix: the session-parametrized :func:`coverage_backend`
fixture runs every test that (directly or transitively) depends on it once
per coverage backend — ``memory`` and ``arena``. The core Darwin, engine, and
crowd suites request it through :func:`backend_directions_index` /
:func:`backend_index_spec`, so a behavioural difference between the heap and
mmap coverage layers fails those suites instead of hiding until someone runs
``tests/test_arena.py``.
"""

from __future__ import annotations

import pytest

from repro.classifier.features import SentenceFeaturizer
from repro.config import ClassifierConfig, DarwinConfig
from repro.datasets import load_dataset
from repro.grammars import TokensRegexGrammar, TreeMatchGrammar
from repro.index import ArenaConfig, CorpusIndex
from repro.text import Corpus

EXAMPLE1_TEXTS = [
    "What is the best way to get to SFO airport?",
    "Is there a bart from SFO to the hotel?",
    "What is the best way to check in there?",
    "Is Uber the fastest way to get to the airport?",
    "Would Uber Eats be the fastest way to order?",
    "What is the best way to order food from you?",
]
EXAMPLE1_LABELS = [True, True, False, True, False, False]


@pytest.fixture(scope="session")
def example1_corpus() -> Corpus:
    """The six-sentence corpus of the paper's Example 1."""
    return Corpus.from_texts(EXAMPLE1_TEXTS, EXAMPLE1_LABELS, name="example1")


@pytest.fixture(scope="session")
def tokensregex() -> TokensRegexGrammar:
    """A TokensRegex grammar with the default phrase length."""
    return TokensRegexGrammar(max_phrase_len=4)


@pytest.fixture(scope="session")
def treematch() -> TreeMatchGrammar:
    """A TreeMatch grammar over dependency trees."""
    return TreeMatchGrammar()


@pytest.fixture(scope="session")
def example1_index(example1_corpus, tokensregex) -> CorpusIndex:
    """Corpus index over the Example 1 corpus (TokensRegex only)."""
    return CorpusIndex.build(example1_corpus, [tokensregex], max_depth=6)


@pytest.fixture(scope="session")
def directions_corpus() -> Corpus:
    """A small (~600 sentence) directions corpus with ground truth."""
    return load_dataset("directions", num_sentences=600, seed=11, parse_trees=False)


@pytest.fixture(scope="session")
def musicians_corpus() -> Corpus:
    """A small (~600 sentence) musicians corpus with ground truth."""
    return load_dataset("musicians", num_sentences=600, seed=11, parse_trees=False)


@pytest.fixture(scope="session")
def directions_index(directions_corpus) -> CorpusIndex:
    """Corpus index over the small directions corpus."""
    grammar = TokensRegexGrammar(max_phrase_len=4)
    return CorpusIndex.build(directions_corpus, [grammar], max_depth=10, min_coverage=2)


@pytest.fixture(scope="session")
def directions_featurizer(directions_corpus) -> SentenceFeaturizer:
    """Featurizer fitted on the small directions corpus."""
    return SentenceFeaturizer.fit(directions_corpus, embedding_dim=30, seed=0)


@pytest.fixture()
def fast_config() -> DarwinConfig:
    """A Darwin configuration tuned for unit-test speed."""
    return DarwinConfig(
        budget=15,
        num_candidates=200,
        min_coverage=2,
        classifier=ClassifierConfig(epochs=25, embedding_dim=30),
    )


@pytest.fixture(scope="session", params=["memory", "arena"])
def coverage_backend(request) -> str:
    """The coverage backend under test (the cross-backend matrix axis)."""
    return request.param


@pytest.fixture(scope="session")
def backend_directions_index(
    directions_corpus, coverage_backend, tmp_path_factory
) -> CorpusIndex:
    """The small directions index, built on the matrixed coverage backend.

    Identical to :func:`directions_index` for ``memory``; the ``arena``
    variant spills its columns to a session-temporary mmap file. Suites that
    must run on both backends take this fixture instead of
    ``directions_index``.
    """
    grammar = TokensRegexGrammar(max_phrase_len=4)
    if coverage_backend == "memory":
        return CorpusIndex.build(
            directions_corpus, [grammar], max_depth=10, min_coverage=2
        )
    path = tmp_path_factory.mktemp("coverage-arena") / "directions.arena"
    return CorpusIndex.build(
        directions_corpus, [grammar], max_depth=10, min_coverage=2,
        coverage_backend="arena", arena_config=ArenaConfig(path=str(path)),
    )


@pytest.fixture()
def backend_index_spec(coverage_backend, tmp_path):
    """A fresh ``IndexConfig`` mapping for engine config dicts, per backend.

    A factory so one test can build several engines without them truncating
    each other's arena file: every call allocates a distinct path.
    """
    counter = {"n": 0}

    def make() -> dict:
        if coverage_backend == "memory":
            return {"coverage_backend": "memory"}
        counter["n"] += 1
        return {
            "coverage_backend": "arena",
            "arena_path": str(tmp_path / f"matrix-{counter['n']}.arena"),
        }

    return make
