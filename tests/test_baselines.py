"""Tests for the Snuba, HighP/HighC, Active Learning and Keyword Sampling baselines."""

from __future__ import annotations

import pytest

from repro.baselines.active_learning import ActiveLearningBaseline
from repro.baselines.keyword_sampling import KeywordSamplingBaseline
from repro.baselines.rule_baselines import HighCoverageBaseline, HighPrecisionBaseline
from repro.baselines.snuba import SnubaBaseline
from repro.config import ClassifierConfig, DarwinConfig
from repro.core.oracle import GroundTruthOracle
from repro.errors import ConfigurationError, DatasetError


class TestSnuba:
    def test_requires_labeled_subset(self, directions_corpus):
        snuba = SnubaBaseline(directions_corpus)
        with pytest.raises(DatasetError):
            snuba.run([])

    def test_synthesizes_precise_rules(self, directions_corpus):
        truth = sorted(directions_corpus.positive_ids())
        negatives = sorted(set(range(len(directions_corpus))) - set(truth))
        subset = truth[:15] + negatives[:60]
        result = SnubaBaseline(directions_corpus, precision_threshold=0.7).run(subset)
        assert result.labeled_subset_size == len(subset)
        assert result.candidate_count > 0
        assert 0.0 <= result.coverage <= 1.0
        positives = set(truth)
        for rule in result.rule_set.rules:
            labeled_cov = set(rule.coverage) & set(subset)
            hits = labeled_cov & positives
            assert len(hits) / max(len(labeled_cov), 1) >= 0.7

    def test_more_seeds_do_not_hurt_coverage_much(self, directions_corpus):
        truth = sorted(directions_corpus.positive_ids())
        negatives = sorted(set(range(len(directions_corpus))) - set(truth))
        small = SnubaBaseline(directions_corpus).run(truth[:3] + negatives[:20])
        large = SnubaBaseline(directions_corpus).run(truth[:20] + negatives[:200])
        assert large.coverage >= small.coverage - 0.1

    def test_biased_subset_misses_excluded_mode(self, directions_corpus):
        # A labeled subset with no 'shuttle' sentences cannot produce a rule
        # covering shuttle positives.
        truth = sorted(directions_corpus.positive_ids())
        no_shuttle = [
            i for i in truth if "shuttle" not in directions_corpus[i].tokens
        ][:20]
        negatives = [
            s.sentence_id for s in directions_corpus
            if not s.label and "shuttle" not in s.tokens
        ][:100]
        result = SnubaBaseline(directions_corpus).run(no_shuttle + negatives)
        shuttle_positives = {
            i for i in truth if "shuttle" in directions_corpus[i].tokens
        }
        covered_shuttle = result.covered_ids & shuttle_positives
        assert len(covered_shuttle) <= len(shuttle_positives) * 0.5

    def test_unlabeled_corpus_requires_explicit_labels(self):
        from repro.text.corpus import Corpus

        corpus = Corpus.from_texts(["a b c", "d e f"], parse_trees=False)
        with pytest.raises(DatasetError):
            SnubaBaseline(corpus).run([0, 1])


@pytest.fixture(scope="module")
def baseline_config():
    return DarwinConfig(
        budget=10, num_candidates=150, min_coverage=2,
        classifier=ClassifierConfig(epochs=20, embedding_dim=30),
    )


class TestRuleBaselines:
    def test_highp_runs_and_tracks_curves(self, directions_corpus, directions_index,
                                          directions_featurizer, baseline_config):
        baseline = HighPrecisionBaseline(
            directions_corpus, config=baseline_config,
            index=directions_index, featurizer=directions_featurizer,
        )
        result = baseline.run(
            GroundTruthOracle(directions_corpus), ["best way to get to"], budget=10
        )
        assert result.queries_used <= 10
        assert len(result.recall_curve) == result.queries_used
        assert len(result.f1_curve) == result.queries_used
        assert result.final_recall >= 0.0

    def test_highc_prefers_large_rules(self, directions_corpus, directions_index,
                                       directions_featurizer, baseline_config):
        baseline = HighCoverageBaseline(
            directions_corpus, config=baseline_config,
            index=directions_index, featurizer=directions_featurizer,
        )
        result = baseline.run(
            GroundTruthOracle(directions_corpus), ["best way to get to"], budget=5
        )
        assert result.queries_used <= 5
        # HighC queries huge generic rules which the oracle mostly rejects.
        assert len(result.rule_set) <= 3

    def test_empty_seed_rejected(self, directions_corpus, directions_index,
                                 directions_featurizer, baseline_config):
        baseline = HighPrecisionBaseline(
            directions_corpus, config=baseline_config,
            index=directions_index, featurizer=directions_featurizer,
        )
        with pytest.raises(ConfigurationError):
            baseline.run(GroundTruthOracle(directions_corpus), ["zzz qqq www"], budget=3)


class TestActiveLearning:
    def test_runs_and_improves(self, directions_corpus, directions_featurizer):
        baseline = ActiveLearningBaseline(
            directions_corpus,
            classifier_config=ClassifierConfig(epochs=20, embedding_dim=30),
            featurizer=directions_featurizer,
        )
        result = baseline.run(budget=8)
        assert result.queries_used <= 8
        assert len(result.f1_curve) == result.queries_used
        assert len(result.labeled_ids) >= result.queries_used
        assert result.positive_ids <= directions_corpus.positive_ids()

    def test_requires_labels(self):
        from repro.text.corpus import Corpus

        corpus = Corpus.from_texts(["a b"], parse_trees=False)
        with pytest.raises(ConfigurationError):
            ActiveLearningBaseline(corpus)

    def test_budget_validation(self, directions_corpus, directions_featurizer):
        baseline = ActiveLearningBaseline(
            directions_corpus, featurizer=directions_featurizer
        )
        with pytest.raises(ConfigurationError):
            baseline.run(budget=0)

    def test_no_repeat_labeling(self, directions_corpus, directions_featurizer):
        baseline = ActiveLearningBaseline(
            directions_corpus,
            classifier_config=ClassifierConfig(epochs=10, embedding_dim=30),
            featurizer=directions_featurizer,
        )
        result = baseline.run(budget=6)
        assert len(result.labeled_ids) == len(set(result.labeled_ids))


class TestKeywordSampling:
    def test_pool_respects_keywords(self, directions_corpus, directions_featurizer):
        baseline = KeywordSamplingBaseline(
            directions_corpus, keywords=["shuttle", "bart"],
            featurizer=directions_featurizer,
        )
        pool = baseline.filtered_pool()
        for sentence_id in pool:
            tokens = set(directions_corpus[sentence_id].tokens)
            assert tokens & {"shuttle", "bart"}

    def test_run_tracks_curves(self, directions_corpus, directions_featurizer):
        baseline = KeywordSamplingBaseline(
            directions_corpus,
            keywords=["way", "shuttle", "bart", "uber", "airport"],
            classifier_config=ClassifierConfig(epochs=15, embedding_dim=30),
            featurizer=directions_featurizer,
        )
        result = baseline.run(budget=8)
        assert result.queries_used <= 8
        assert len(result.f1_curve) == result.queries_used

    def test_requires_keywords(self, directions_corpus):
        with pytest.raises(ConfigurationError):
            KeywordSamplingBaseline(directions_corpus, keywords=[])
