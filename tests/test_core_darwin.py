"""Tests for the end-to-end Darwin loop, ScoreUpdater, and the session API.

The whole suite runs once per coverage backend (memory and arena) via the
shared ``backend_directions_index`` conftest fixture."""

from __future__ import annotations

import pytest

from repro.classifier.trainer import ClassifierTrainer
from repro.config import ClassifierConfig, DarwinConfig
from repro.core.benefit import BenefitScorer
from repro.core.darwin import Darwin, DarwinResult
from repro.core.oracle import GroundTruthOracle
from repro.core.score_update import ScoreUpdater
from repro.core.session import LabelingSession
from repro.errors import ConfigurationError
from repro.rules.heuristic import LabelingHeuristic

import numpy as np


class TestScoreUpdater:
    def _make(self, corpus, featurizer):
        trainer = ClassifierTrainer(
            corpus, featurizer, config=ClassifierConfig(epochs=10, embedding_dim=30)
        )
        benefit = BenefitScorer(np.full(len(corpus), 0.5), set())
        return ScoreUpdater(trainer, benefit, retrain_every=1), trainer, benefit

    def test_initialize_trains_and_updates_benefit(self, directions_corpus, directions_featurizer):
        updater, trainer, benefit = self._make(directions_corpus, directions_featurizer)
        positives = set(sorted(directions_corpus.positive_ids())[:5])
        updater.initialize(positives)
        assert trainer.retrain_count == 1
        assert benefit.covered_ids == positives

    def test_on_accept_retrains_and_flags_refresh(self, directions_corpus, directions_featurizer):
        updater, trainer, _ = self._make(directions_corpus, directions_featurizer)
        positives = set(sorted(directions_corpus.positive_ids())[:5])
        updater.initialize(positives)
        more = positives | set(sorted(directions_corpus.positive_ids())[5:8])
        updater.on_accept(more, new_positive_ids=more - positives)
        assert trainer.retrain_count == 2
        assert updater.needs_hierarchy_refresh
        updater.acknowledge_hierarchy_refresh()
        assert not updater.needs_hierarchy_refresh

    def test_on_accept_without_new_positives_skips_retrain(self, directions_corpus, directions_featurizer):
        updater, trainer, _ = self._make(directions_corpus, directions_featurizer)
        positives = set(sorted(directions_corpus.positive_ids())[:5])
        updater.initialize(positives)
        updater.on_accept(positives, new_positive_ids=set())
        assert trainer.retrain_count == 1
        assert not updater.needs_hierarchy_refresh

    def test_on_reject_is_noop(self, directions_corpus, directions_featurizer):
        updater, trainer, _ = self._make(directions_corpus, directions_featurizer)
        positives = set(sorted(directions_corpus.positive_ids())[:5])
        updater.initialize(positives)
        updater.on_reject()
        assert trainer.retrain_count == 1

    def test_retrain_every_validation(self, directions_corpus, directions_featurizer):
        trainer = ClassifierTrainer(directions_corpus, directions_featurizer)
        benefit = BenefitScorer(np.zeros(len(directions_corpus)), set())
        with pytest.raises(ValueError):
            ScoreUpdater(trainer, benefit, retrain_every=0)


@pytest.fixture(scope="module")
def darwin_run(directions_corpus, backend_directions_index, directions_featurizer):
    """One shared Darwin(HS) run on the small directions corpus."""
    config = DarwinConfig(
        budget=25, num_candidates=250, min_coverage=2,
        classifier=ClassifierConfig(epochs=30, embedding_dim=30),
    )
    darwin = Darwin(
        directions_corpus, config=config,
        index=backend_directions_index, featurizer=directions_featurizer,
    )
    oracle = GroundTruthOracle(directions_corpus)
    result = darwin.run(oracle, seed_rule_texts=["best way to get to"])
    return darwin, result


class TestDarwinRun:
    def test_result_structure(self, darwin_run):
        _, result = darwin_run
        assert isinstance(result, DarwinResult)
        assert result.queries_used <= 25
        assert len(result.history) == result.queries_used
        assert len(result.recall_curve()) == len(result.history)

    def test_history_is_monotone_in_coverage(self, darwin_run):
        _, result = darwin_run
        covered = [record.covered for record in result.history]
        assert covered == sorted(covered)
        recalls = result.recall_curve()
        assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))

    def test_discovers_rules_beyond_seed(self, darwin_run):
        _, result = darwin_run
        assert len(result.rule_set) >= 2
        assert result.final_recall > 0.3

    def test_accepted_rules_are_precise(self, darwin_run, directions_corpus):
        _, result = darwin_run
        positives = directions_corpus.positive_ids()
        for rule in result.rule_set.rules:
            assert rule.precision(positives) >= 0.8

    def test_covered_ids_match_rule_set(self, darwin_run):
        _, result = darwin_run
        union = set()
        for rule in result.rule_set.rules:
            union |= set(rule.coverage)
        assert union == result.covered_ids

    def test_question_numbers_sequential(self, darwin_run):
        _, result = darwin_run
        numbers = [record.question_number for record in result.history]
        assert numbers == list(range(1, len(numbers) + 1))

    def test_timings_recorded(self, darwin_run):
        _, result = darwin_run
        assert "traversal" in result.timings
        assert "initial_training" in result.timings


class TestDarwinValidation:
    def test_requires_seeds(self, directions_corpus, backend_directions_index, directions_featurizer, fast_config):
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        with pytest.raises(ConfigurationError):
            darwin.start()

    def test_empty_seed_coverage_rejected(self, directions_corpus, backend_directions_index,
                                          directions_featurizer, fast_config):
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        with pytest.raises(ConfigurationError):
            darwin.start(seed_rule_texts=["zzzz qqqq xxxx"])

    def test_stepping_before_start_rejected(self, directions_corpus, backend_directions_index,
                                            directions_featurizer, fast_config):
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        with pytest.raises(ConfigurationError):
            darwin.propose_next()

    def test_unknown_grammar_rejected(self, directions_corpus, backend_directions_index,
                                      directions_featurizer, fast_config):
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        with pytest.raises(ConfigurationError):
            darwin.parse_seed_rule("best way", grammar_name="nope")

    def test_seed_positive_ids_only(self, directions_corpus, backend_directions_index,
                                    directions_featurizer, fast_config):
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        positives = sorted(directions_corpus.positive_ids())[:4]
        oracle = GroundTruthOracle(directions_corpus)
        result = darwin.run(oracle, seed_positive_ids=positives, budget=8)
        assert result.queries_used <= 8
        assert result.rule_set.coverage_size() >= 0

    def test_prewrapped_oracle_budget_reconciled(self, directions_corpus, backend_directions_index,
                                                 directions_featurizer, fast_config):
        """Regression: a pre-wrapped BudgetedOracle whose internal budget
        differs from budget/config.budget must be bounded by the min of the
        two, not by whichever the loop condition happened to use."""
        from repro.core.oracle import BudgetedOracle

        # Internal budget (3) tighter than the explicit budget (10).
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        wrapped = BudgetedOracle(base=GroundTruthOracle(directions_corpus), budget=3)
        result = darwin.run(wrapped, seed_rule_texts=["best way to get to"], budget=10)
        assert result.queries_used <= 3

        # Explicit budget (2) tighter than the internal budget (50).
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        wrapped = BudgetedOracle(base=GroundTruthOracle(directions_corpus), budget=50)
        result = darwin.run(wrapped, seed_rule_texts=["best way to get to"], budget=2)
        assert result.queries_used <= 2
        assert wrapped.queries_used <= 2

    def test_incremental_and_full_refresh_both_work(self, directions_corpus, backend_directions_index,
                                                    directions_featurizer):
        results = {}
        for mode in ("incremental", "full"):
            config = DarwinConfig(
                budget=10, num_candidates=150, hierarchy_refresh=mode,
                classifier=ClassifierConfig(epochs=15, embedding_dim=30),
            )
            darwin = Darwin(
                directions_corpus, config=config,
                index=backend_directions_index, featurizer=directions_featurizer,
            )
            results[mode] = darwin.run(
                GroundTruthOracle(directions_corpus),
                seed_rule_texts=["best way to get to"],
            )
        for result in results.values():
            assert result.queries_used <= 10
            positives = directions_corpus.positive_ids()
            for rule in result.rule_set.rules:
                assert rule.precision(positives) >= 0.8

    def test_local_and_universal_traversals_run(self, directions_corpus, backend_directions_index,
                                                directions_featurizer):
        for traversal in ("local", "universal"):
            config = DarwinConfig(
                budget=8, num_candidates=150, traversal=traversal,
                classifier=ClassifierConfig(epochs=15, embedding_dim=30),
            )
            darwin = Darwin(
                directions_corpus, config=config,
                index=backend_directions_index, featurizer=directions_featurizer,
            )
            result = darwin.run(
                GroundTruthOracle(directions_corpus),
                seed_rule_texts=["best way to get to"],
            )
            assert result.queries_used <= 8


class TestLabelingSession:
    def test_interactive_flow(self, directions_corpus, backend_directions_index,
                              directions_featurizer, fast_config):
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        session = LabelingSession(
            darwin, budget=5, seed_rule_texts=["best way to get to"]
        )
        truth = directions_corpus.positive_ids()
        answered = 0
        while not session.is_done:
            question = session.next_question()
            if question is None:
                break
            assert question.rendered
            assert question.example_texts
            # Answer like the ground-truth oracle would.
            precision = question.rule.precision(truth)
            session.submit_answer(precision >= 0.8)
            answered += 1
        assert answered == session.questions_asked <= 5
        result = session.result()
        assert result.queries_used == answered
        assert len(result.history) == answered

    def test_submit_without_question_raises(self, directions_corpus, backend_directions_index,
                                            directions_featurizer, fast_config):
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        session = LabelingSession(darwin, budget=3, seed_rule_texts=["best way to get to"])
        from repro.errors import BudgetExhaustedError

        with pytest.raises(BudgetExhaustedError):
            session.submit_answer(True)

    def test_next_question_idempotent_until_answered(self, directions_corpus, backend_directions_index,
                                                     directions_featurizer, fast_config):
        darwin = Darwin(
            directions_corpus, config=fast_config,
            index=backend_directions_index, featurizer=directions_featurizer,
        )
        session = LabelingSession(darwin, budget=3, seed_rule_texts=["best way to get to"])
        first = session.next_question()
        second = session.next_question()
        assert first is second
