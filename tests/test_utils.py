"""Tests for repro.utils (rng, timing, validation)."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng, derive_seed, stable_hash
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import ensure_type, require, require_positive, require_probability


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_returns_64_bit_int(self):
        value = stable_hash("token")
        assert 0 <= value < 2**64


class TestDeriveSeedAndRng:
    def test_derive_seed_in_32_bit_range(self):
        assert 0 <= derive_seed(123, "x") < 2**32

    def test_same_namespace_same_stream(self):
        a = derive_rng(7, "negatives").standard_normal(5)
        b = derive_rng(7, "negatives").standard_normal(5)
        assert (a == b).all()

    def test_different_namespace_different_stream(self):
        a = derive_rng(7, "negatives").standard_normal(5)
        b = derive_rng(7, "tiebreak").standard_normal(5)
        assert not (a == b).all()

    def test_different_base_seed_different_stream(self):
        a = derive_rng(1, "x").integers(0, 1000, size=10)
        b = derive_rng(2, "x").integers(0, 1000, size=10)
        assert not (a == b).all()


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure("phase"):
            time.sleep(0.001)
        with watch.measure("phase"):
            time.sleep(0.001)
        assert watch.total("phase") > 0.0
        assert watch.counts["phase"] == 2
        assert watch.mean("phase") <= watch.total("phase")

    def test_unknown_phase_is_zero(self):
        watch = Stopwatch()
        assert watch.total("missing") == 0.0
        assert watch.mean("missing") == 0.0

    def test_as_dict_is_a_copy(self):
        watch = Stopwatch()
        with watch.measure("p"):
            pass
        snapshot = watch.as_dict()
        snapshot["p"] = 999.0
        assert watch.total("p") != 999.0

    def test_as_dict_reports_totals_counts_and_means(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch.measure("p"):
                time.sleep(0.001)
        entry = watch.as_dict()["p"]
        assert set(entry) == {"total", "count", "mean"}
        assert entry["count"] == 3.0
        assert entry["total"] == watch.total("p")
        assert entry["mean"] == pytest.approx(entry["total"] / 3.0)

    def test_timed_context_manager(self):
        with timed() as box:
            time.sleep(0.001)
        assert box[0] > 0.0


class TestValidation:
    def test_require_passes_and_fails(self):
        require(True, "never raised")
        with pytest.raises(ConfigurationError, match="failed"):
            require(False, "failed")

    def test_require_positive(self):
        require_positive(0.1, "x")
        with pytest.raises(ConfigurationError):
            require_positive(0, "x")
        with pytest.raises(ConfigurationError):
            require_positive(-1, "x")

    def test_require_probability(self):
        require_probability(0.0, "p")
        require_probability(1.0, "p")
        with pytest.raises(ConfigurationError):
            require_probability(1.01, "p")
        with pytest.raises(ConfigurationError):
            require_probability(None, "p")

    def test_ensure_type(self):
        assert ensure_type("x", str, "name") == "x"
        with pytest.raises(ConfigurationError):
            ensure_type("x", int, "name")
