"""Kernel/legacy equivalence for the interval-encoded node tables.

Every windowed kernel introduced by the node-table refactor must return
*identical* results to the per-node Python path it replaced: rankings
(``top_by_overlap``/``top_by_coverage``), hierarchy cleanup survivors,
reachability sets, and benefit counts. The hypothesis properties below
compare each kernel against a faithful reference implementation on random
graphs/corpora; the Darwin history test replays a full interactive run with
the legacy paths monkeypatched back in and asserts the question sequence is
unchanged (on both the memory and arena coverage backends, via the
session-parametrized fixtures).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ClassifierConfig, DarwinConfig
from repro.core.benefit import BenefitScorer
from repro.core.darwin import Darwin
from repro.core.oracle import GroundTruthOracle
from repro.datasets import load_dataset
from repro.engine.state import ArrayBundle
from repro.grammars import TokensRegexGrammar
from repro.index import ArenaConfig, CorpusIndex, NodeTable, RuleHierarchy
from repro.index.coverage import (
    CoverageStore,
    batched_new_counts,
    batched_overlap_counts,
)
from repro.index.nodetable import lexicographic_ranks
from repro.rules.heuristic import LabelingHeuristic

_GRAMMAR = TokensRegexGrammar(max_phrase_len=4)


# ----------------------------------------------------------------- strategies
@st.composite
def random_dags(draw):
    """(num_nodes, edges, counts) with edges i->j only for i < j (acyclic)."""
    n = draw(st.integers(min_value=1, max_value=14))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(pairs), max_size=36, unique=True)
    ) if pairs else []
    counts = draw(
        st.lists(st.integers(min_value=0, max_value=40), min_size=n, max_size=n)
    )
    return n, edges, counts


@st.composite
def random_coverages(draw):
    """A list of coverage id-lists plus a covered subset of the universe."""
    universe = draw(st.integers(min_value=1, max_value=60))
    coverages = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=universe - 1),
                min_size=0, max_size=20,
            ),
            min_size=1, max_size=12,
        )
    )
    covered = draw(
        st.lists(st.integers(min_value=0, max_value=universe - 1), max_size=40)
    )
    return universe, coverages, set(covered)


def _mk_rule(tag: int, coverage) -> LabelingHeuristic:
    """A distinct TokensRegex rule carrying frozenset coverage."""
    phrase = " ".join(f"w{digit}" for digit in str(tag))
    return LabelingHeuristic(_GRAMMAR, _GRAMMAR.parse(phrase), frozenset(coverage))


# ------------------------------------------------------------ rank column
class TestLexicographicRanks:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.text(max_size=6)),
            min_size=0, max_size=30,
        )
    )
    @settings(max_examples=80)
    def test_matches_python_sort(self, items):
        counts = np.array([count for count, _ in items], dtype=np.int64)
        reprs = [text for _, text in items]
        ranks = lexicographic_ranks(counts, reprs)
        # Reference: position under (count desc, repr asc), stable.
        order = sorted(
            range(len(items)), key=lambda i: (-counts[i], reprs[i], i)
        )
        expected = np.empty(len(items), dtype=np.int64)
        expected[order] = np.arange(len(items))
        assert ranks.tolist() == expected.tolist()


# ------------------------------------------------------------- graph kernels
def _reference_closure(n, edges, start, forward):
    adjacency = {i: set() for i in range(n)}
    for parent, child in edges:
        if forward:
            adjacency[parent].add(child)
        else:
            adjacency[child].add(parent)
    seen = set()
    frontier = list(adjacency[start])
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(adjacency[node])
    return seen


class TestNodeTableGraph:
    @given(random_dags())
    @settings(max_examples=120, deadline=None)
    def test_reachability_matches_reference(self, dag):
        n, edges, counts = dag
        counts = np.asarray(counts, dtype=np.int64)
        ranks = lexicographic_ranks(counts, [str(i) for i in range(n)])
        table = NodeTable.build(n, edges, counts=counts, ranks=ranks)
        for node in range(n):
            descendants = set(table.descendants_of(node).tolist())
            ancestors = set(table.ancestors_of(node).tolist())
            assert descendants == _reference_closure(n, edges, node, True)
            assert ancestors == _reference_closure(n, edges, node, False)

    @given(random_dags())
    @settings(max_examples=120, deadline=None)
    def test_adjacency_windows_in_rank_order(self, dag):
        n, edges, counts = dag
        counts = np.asarray(counts, dtype=np.int64)
        ranks = lexicographic_ranks(counts, [str(i) for i in range(n)])
        table = NodeTable.build(n, edges, counts=counts, ranks=ranks)
        parents = {i: set() for i in range(n)}
        children = {i: set() for i in range(n)}
        for parent, child in edges:
            children[parent].add(child)
            parents[child].add(parent)
        for node in range(n):
            got_children = table.children_of(node).tolist()
            got_parents = table.parents_of(node).tolist()
            assert set(got_children) == children[node]
            assert set(got_parents) == parents[node]
            assert got_children == sorted(got_children, key=lambda i: ranks[i])
            assert got_parents == sorted(got_parents, key=lambda i: ranks[i])
        assert set(table.roots().tolist()) == {
            i for i in range(n) if not parents[i]
        }
        assert set(table.leaves().tolist()) == {
            i for i in range(n) if not children[i]
        }

    @given(random_dags())
    @settings(max_examples=120, deadline=None)
    def test_forest_intervals_are_exact(self, dag):
        n, edges, counts = dag
        # Thin the edges to a forest: keep the first parent per child.
        seen_children = set()
        forest_edges = []
        for parent, child in edges:
            if child not in seen_children:
                seen_children.add(child)
                forest_edges.append((parent, child))
        counts = np.asarray(counts, dtype=np.int64)
        ranks = lexicographic_ranks(counts, [str(i) for i in range(n)])
        table = NodeTable.build(n, forest_edges, counts=counts, ranks=ranks)
        assert table.is_forest
        for node in range(n):
            window = set(table.descendant_window(node).tolist())
            assert window == _reference_closure(n, forest_edges, node, True)
            for other in range(n):
                assert table.is_ancestor(node, other) == (
                    node in _reference_closure(n, forest_edges, other, False)
                )

    def test_state_roundtrip_is_verbatim(self):
        rng = random.Random(5)
        n = 30
        edges = [
            (i, j) for i in range(n) for j in range(i + 1, n)
            if rng.random() < 0.1
        ]
        counts = np.asarray([rng.randint(0, 9) for _ in range(n)], dtype=np.int64)
        ranks = lexicographic_ranks(counts, [str(i) for i in range(n)])
        table = NodeTable.build(n, edges, counts=counts, ranks=ranks)
        bundle = ArrayBundle()
        state = table.to_state(bundle, "t/")
        restored = NodeTable.from_state(state, ArrayBundle(bundle.as_mapping()))
        for column in NodeTable.__slots__:
            if column == "is_forest":
                assert restored.is_forest == table.is_forest
            else:
                assert getattr(restored, column).tolist() == getattr(
                    table, column
                ).tolist()


# -------------------------------------------------------- batched mask kernels
class TestBatchedCoverageKernels:
    @given(random_coverages())
    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_matches_per_view_probes(self, coverage_backend, tmp_path, case):
        universe, coverages, covered = case
        if coverage_backend == "arena":
            store = CoverageStore(
                backend="arena",
                path=str(tmp_path / "kernels.arena"),
                arena_config=ArenaConfig(),
            )
        else:
            store = CoverageStore()
        views = [store.intern(ids) for ids in coverages]
        store.flush()
        mask = np.zeros(universe, dtype=bool)
        mask[list(covered)] = True
        overlaps = batched_overlap_counts(views, mask)
        news = batched_new_counts(views, mask)
        assert overlaps.tolist() == [v.overlap_with(mask) for v in views]
        assert news.tolist() == [v.new_ids_given(mask).size for v in views]

    def test_empty_views_list(self):
        mask = np.zeros(4, dtype=bool)
        assert batched_overlap_counts([], mask).size == 0
        assert batched_new_counts([], mask).size == 0


# -------------------------------------------------------------- index kernels
def _legacy_top_by_overlap(index, sentence_ids, limit):
    query = set(sentence_ids)
    scored = []
    for key in index.keys():
        overlap = len(set(index.nodes[key].sentence_ids) & query)
        if overlap > 0:
            scored.append((key, overlap))
    scored.sort(
        key=lambda item: (-item[1], -index.nodes[item[0]].count, repr(item[0]))
    )
    return scored[:limit]


def _legacy_top_by_coverage(index, limit, grammar_name=None):
    keys = (
        key for key in index.keys()
        if grammar_name is None or key[0] == grammar_name
    )
    return sorted(keys, key=lambda k: (-index.nodes[k].count, repr(k)))[:limit]


class TestIndexKernelEquivalence:
    def test_top_by_overlap_matches_legacy(self, backend_directions_index):
        index = backend_directions_index
        rng = random.Random(17)
        n = index._num_sentences
        for _ in range(20):
            query = rng.sample(range(n), rng.randint(1, min(60, n)))
            for limit in (1, 7, 50, 10**6):
                assert index.top_by_overlap(query, limit) == \
                    _legacy_top_by_overlap(index, query, limit)
        # Out-of-range and empty queries.
        assert index.top_by_overlap([], 10) == []
        assert index.top_by_overlap([n + 5, -3], 10) == []
        assert index.top_by_overlap(range(n), 0) == []

    def test_top_by_coverage_matches_legacy(self, backend_directions_index):
        index = backend_directions_index
        for limit in (1, 5, 100, 10**6):
            assert index.top_by_coverage(limit) == \
                _legacy_top_by_coverage(index, limit)
            assert index.top_by_coverage(limit, "tokensregex") == \
                _legacy_top_by_coverage(index, limit, "tokensregex")
        assert index.top_by_coverage(0) == []
        assert index.top_by_coverage(3, "no-such-grammar") == []

    def test_coverage_memo_survives_repeat_calls(self, backend_directions_index):
        index = backend_directions_index
        first = index.top_by_coverage(25)
        assert index.top_by_coverage(25) == first
        assert None in index._coverage_order_cache

    def test_node_table_alignment(self, backend_directions_index):
        index = backend_directions_index
        table = index.node_table
        assert table is not None
        assert len(table) == len(index._key_list)
        for key in random.Random(3).sample(index._key_list, 25):
            position = index.node_position(key)
            assert table.count[position] == index.nodes[key].count
            view = index.nodes[key].coverage_view
            if view is not None and view.slot is not None:
                assert table.store_slot[position] == view.slot

    def test_unseal_invalidates_table_and_memo(self, example1_corpus):
        grammar = TokensRegexGrammar(max_phrase_len=4)
        index = CorpusIndex.build(example1_corpus, [grammar], max_depth=4)
        assert index.node_table is not None
        index.top_by_coverage(5)
        assert index._coverage_order_cache
        index._unseal()
        assert index._node_table is None
        assert not index._coverage_order_cache
        index.seal()
        assert index.node_table is not None
        assert index.top_by_coverage(5) == _legacy_top_by_coverage(index, 5)


# ---------------------------------------------------------- hierarchy kernels
def _legacy_cleanup(hierarchy, covered_ids):
    """The pre-batch implementation: per-rule probe + sequential remove()."""
    if isinstance(covered_ids, np.ndarray) and covered_ids.dtype == np.bool_:
        mask, covered_set = covered_ids, set()
    else:
        mask, covered_set = None, set(covered_ids)

    def has_gain(rule):
        view = rule.coverage_view
        if view is not None:
            if mask is not None:
                return bool(view.new_ids_given(mask).size)
            return view.count > view.intersect_count(covered_set)
        if mask is not None:
            return any(
                sid >= mask.size or not mask[sid] for sid in rule.coverage
            )
        return bool(set(rule.coverage) - covered_set)

    removable = [rule for rule in hierarchy._nodes if not has_gain(rule)]
    for rule in removable:
        hierarchy.remove(rule)
    return len(removable)


def _snapshot(hierarchy):
    return (
        set(hierarchy._nodes),
        {rule: frozenset(hierarchy._parents[rule]) for rule in hierarchy._nodes},
        {rule: frozenset(hierarchy._children[rule]) for rule in hierarchy._nodes},
    )


@st.composite
def hierarchy_cases(draw):
    universe = 40
    n = draw(st.integers(min_value=1, max_value=12))
    coverages = [
        draw(
            st.lists(
                st.integers(0, universe - 1), min_size=1, max_size=10
            )
        )
        for _ in range(n)
    ]
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(pairs), max_size=30, unique=True)
    ) if pairs else []
    covered = draw(st.lists(st.integers(0, universe - 1), max_size=50))
    return universe, coverages, edges, set(covered)


class TestHierarchyKernelEquivalence:
    @given(hierarchy_cases())
    @settings(max_examples=60, deadline=None)
    def test_cleanup_survivors_match_sequential_removal(self, case):
        universe, coverages, edges, covered = case
        batch_h, legacy_h = RuleHierarchy(), RuleHierarchy()
        rules = [_mk_rule(100 + i, cov) for i, cov in enumerate(coverages)]
        for rule in rules:
            batch_h.add(rule)
            legacy_h.add(rule)
        for i, j in edges:
            batch_h.add_edge(rules[i], rules[j])
            legacy_h.add_edge(rules[i], rules[j])
        removed_batch = batch_h.cleanup(covered)
        removed_legacy = _legacy_cleanup(legacy_h, covered)
        assert removed_batch == removed_legacy
        assert _snapshot(batch_h) == _snapshot(legacy_h)

    @given(hierarchy_cases())
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_cleanup_mask_path_matches_on_views(
        self, coverage_backend, tmp_path, case
    ):
        universe, coverages, edges, covered = case
        if coverage_backend == "arena":
            store = CoverageStore(
                backend="arena",
                path=str(tmp_path / "cleanup.arena"),
                arena_config=ArenaConfig(),
            )
        else:
            store = CoverageStore()
        batch_h, legacy_h = RuleHierarchy(), RuleHierarchy()
        rules = []
        for i, cov in enumerate(coverages):
            view = store.intern(cov)
            rules.append(_mk_rule(500 + i, cov).with_coverage(view))
        store.flush()
        for rule in rules:
            batch_h.add(rule)
            legacy_h.add(rule)
        for i, j in edges:
            batch_h.add_edge(rules[i], rules[j])
            legacy_h.add_edge(rules[i], rules[j])
        mask = np.zeros(universe, dtype=bool)
        mask[list(covered)] = True
        assert batch_h.cleanup(mask) == _legacy_cleanup(legacy_h, mask)
        assert _snapshot(batch_h) == _snapshot(legacy_h)

    @given(hierarchy_cases())
    @settings(max_examples=60, deadline=None)
    def test_reachability_matches_python_walk(self, case):
        universe, coverages, edges, _ = case
        hierarchy = RuleHierarchy()
        rules = [_mk_rule(300 + i, cov) for i, cov in enumerate(coverages)]
        for rule in rules:
            hierarchy.add(rule)
        for i, j in edges:
            hierarchy.add_edge(rules[i], rules[j])
        for position, rule in enumerate(rules):
            expected_down = {
                rules[j] for j in _reference_closure(
                    len(rules), edges, position, True
                )
            }
            expected_up = {
                rules[j] for j in _reference_closure(
                    len(rules), edges, position, False
                )
            }
            assert hierarchy.descendants(rule) == expected_down
            assert hierarchy.ancestors(rule) == expected_up

    def test_accessors_sorted_by_stable_rank(self):
        rng = random.Random(23)
        hierarchy = RuleHierarchy()
        rules = [
            _mk_rule(700 + i, rng.sample(range(40), rng.randint(1, 8)))
            for i in range(15)
        ]
        for rule in rules:
            hierarchy.add(rule)
        for i in range(15):
            for j in range(i + 1, 15):
                if rng.random() < 0.3:
                    hierarchy.add_edge(rules[i], rules[j])

        def rank_key(rule):
            return (-rule.coverage_size, rule.render())

        for rule in rules:
            for listing in (hierarchy.parents(rule), hierarchy.children(rule)):
                assert [rank_key(r) for r in listing] == sorted(
                    rank_key(r) for r in listing
                )
        for listing in (hierarchy.roots(), hierarchy.leaves()):
            assert [rank_key(r) for r in listing] == sorted(
                rank_key(r) for r in listing
            )


# ------------------------------------------------------------- benefit kernel
class TestBenefitPriming:
    @given(random_coverages())
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_primed_counts_equal_per_rule_probes(
        self, coverage_backend, tmp_path, case
    ):
        universe, coverages, covered = case
        if coverage_backend == "arena":
            store = CoverageStore(
                backend="arena",
                path=str(tmp_path / "benefit.arena"),
                arena_config=ArenaConfig(),
            )
        else:
            store = CoverageStore()
        rules = []
        for i, cov in enumerate(coverages):
            view = store.intern(cov)
            rules.append(_mk_rule(900 + i, cov).with_coverage(view))
        store.flush()
        scores = np.linspace(0.0, 1.0, universe)
        primed = BenefitScorer(scores, covered)
        primed.prime_new_counts(rules)
        plain = BenefitScorer(scores, covered)
        for rule in rules:
            expected = len(set(rule.coverage) - covered)
            assert primed.new_count(rule) == expected
            assert plain.new_count(rule) == expected


# -------------------------------------------------- Darwin history identity
def _run_history(corpus, index, featurizer, budget=12):
    config = DarwinConfig(
        budget=budget, num_candidates=200, min_coverage=2, retrain_every=4,
        hierarchy_refresh="incremental",
        classifier=ClassifierConfig(model="logistic", epochs=10, embedding_dim=30),
    )
    darwin = Darwin(
        corpus, grammars=[TokensRegexGrammar(max_phrase_len=4)],
        config=config, index=index, featurizer=featurizer,
    )
    darwin.start(seed_rule_texts=[_HISTORY_SEEDS[corpus.name]])
    oracle = GroundTruthOracle(corpus)
    history = []
    for _ in range(budget):
        rule = darwin.propose_next()
        if rule is None:
            break
        answer = oracle.ask(rule, darwin.sample_for_query(rule))
        darwin.record_answer(rule, answer.is_useful)
        history.append((rule.render(), answer.is_useful))
    accepted = sorted(r.render() for r in darwin.rule_set.rules)
    return history, accepted


_HISTORY_SEEDS = {
    "directions": "best way to get to",
    "professions": "works as a",
}


@pytest.fixture(scope="module", params=["directions", "professions"])
def history_setup(request, coverage_backend, tmp_path_factory):
    """Corpus + sealed index (per dataset, per coverage backend) + featurizer."""
    from repro.classifier.features import SentenceFeaturizer

    name = request.param
    corpus = load_dataset(name, num_sentences=300, seed=13, parse_trees=False)
    grammar = TokensRegexGrammar(max_phrase_len=4)
    if coverage_backend == "arena":
        path = tmp_path_factory.mktemp("history-arena") / f"{name}.arena"
        index = CorpusIndex.build(
            corpus, [grammar], max_depth=10, min_coverage=2,
            coverage_backend="arena", arena_config=ArenaConfig(path=str(path)),
        )
    else:
        index = CorpusIndex.build(corpus, [grammar], max_depth=10, min_coverage=2)
    featurizer = SentenceFeaturizer.fit(corpus, embedding_dim=30, seed=0)
    return corpus, index, featurizer


class TestDarwinHistoryIdentity:
    def test_history_matches_legacy_paths(self, history_setup, monkeypatch):
        corpus, index, featurizer = history_setup
        new_history, new_accepted = _run_history(corpus, index, featurizer)

        # Patch every refactored hot path back to its pre-refactor behaviour:
        # Python-comparator rankings, unsorted set-order neighbourhoods,
        # per-rule sequential cleanup, and per-rule benefit probes.
        monkeypatch.setattr(
            CorpusIndex, "top_by_overlap",
            lambda self, sentence_ids, limit: _legacy_top_by_overlap(
                self, sentence_ids, limit
            ),
        )
        monkeypatch.setattr(
            CorpusIndex, "top_by_coverage",
            lambda self, limit, grammar_name=None: _legacy_top_by_coverage(
                self, limit, grammar_name
            ),
        )
        monkeypatch.setattr(RuleHierarchy, "cleanup", _legacy_cleanup)
        monkeypatch.setattr(
            RuleHierarchy, "parents",
            lambda self, rule: list(self._parents.get(rule, set())),
        )
        monkeypatch.setattr(
            RuleHierarchy, "children",
            lambda self, rule: list(self._children.get(rule, set())),
        )
        monkeypatch.setattr(
            RuleHierarchy, "roots",
            lambda self: [r for r in self._nodes if not self._parents[r]],
        )
        monkeypatch.setattr(
            BenefitScorer, "prime_new_counts", lambda self, rules: None
        )
        legacy_history, legacy_accepted = _run_history(corpus, index, featurizer)

        assert new_history == legacy_history
        assert new_accepted == legacy_accepted
