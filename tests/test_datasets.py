"""Tests for the template engine and the five dataset generators."""

from __future__ import annotations

import pytest

from repro.datasets import DATASET_NAMES, dataset_spec, load_dataset
from repro.datasets.registry import load_bank, table1_rows
from repro.datasets.templates import TemplateBank, TemplateMode
from repro.errors import DatasetError


class TestTemplateEngine:
    def _bank(self):
        return TemplateBank(
            name="toy",
            positive_modes=(
                TemplateMode("greet", ("hello {name}", "hi {name} how are you")),
            ),
            negative_modes=(
                TemplateMode("other", ("the {thing} is broken", "fix the {thing}")),
            ),
            fillers={"name": ["alice", "bob"], "thing": ["printer", "router"]},
        )

    def test_generates_requested_size_and_fraction(self):
        corpus = self._bank().generate(200, 0.25, seed=1, parse_trees=False)
        assert len(corpus) == 200
        assert corpus.positive_fraction() == pytest.approx(0.25, abs=0.02)

    def test_deterministic_given_seed(self):
        a = self._bank().generate(50, 0.3, seed=7, parse_trees=False)
        b = self._bank().generate(50, 0.3, seed=7, parse_trees=False)
        assert [s.text for s in a] == [s.text for s in b]

    def test_different_seeds_differ(self):
        a = self._bank().generate(50, 0.3, seed=1, parse_trees=False)
        b = self._bank().generate(50, 0.3, seed=2, parse_trees=False)
        assert [s.text for s in a] != [s.text for s in b]

    def test_meta_records_mode(self):
        corpus = self._bank().generate(60, 0.4, seed=0, parse_trees=False)
        for sentence in corpus:
            if sentence.label:
                assert sentence.meta == "greet"
            else:
                assert sentence.meta == "other"

    def test_unknown_slot_rejected(self):
        with pytest.raises(DatasetError):
            TemplateBank(
                name="bad",
                positive_modes=(TemplateMode("m", ("hello {missing}",)),),
                negative_modes=(TemplateMode("n", ("bye",)),),
                fillers={},
            )

    def test_parameter_validation(self):
        bank = self._bank()
        with pytest.raises(DatasetError):
            bank.generate(0, 0.5)
        with pytest.raises(DatasetError):
            bank.generate(10, 0.0)
        with pytest.raises(DatasetError):
            TemplateMode("empty", tuple())

    def test_mode_names(self):
        bank = self._bank()
        assert bank.mode_names() == ["greet"]
        assert bank.mode_names(positive_only=False) == ["greet", "other"]


class TestRegistry:
    def test_all_five_datasets_registered(self):
        assert set(DATASET_NAMES) == {
            "cause-effect", "directions", "musicians", "professions", "tweets",
        }

    def test_spec_matches_table1(self):
        spec = dataset_spec("directions")
        assert spec.paper_num_sentences == 15_300
        assert spec.paper_positive_fraction == pytest.approx(0.038)
        assert spec.task == "Intents"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            dataset_spec("reviews")
        with pytest.raises(DatasetError):
            load_dataset("reviews")

    def test_scale_validation(self):
        with pytest.raises(DatasetError):
            load_dataset("directions", scale=0)

    def test_table1_rows(self):
        rows = table1_rows(scale=0.02, seed=0, names=["directions", "tweets"])
        assert len(rows) == 2
        for row in rows:
            assert row["num_sentences"] >= 50
            assert 0.0 < row["positive_fraction"] < 1.0

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_each_dataset_generates_with_expected_imbalance(self, name):
        spec = dataset_spec(name)
        corpus = load_dataset(name, num_sentences=400, seed=5, parse_trees=False)
        assert len(corpus) == 400
        assert corpus.has_labels()
        assert corpus.positive_fraction() == pytest.approx(
            spec.paper_positive_fraction, abs=0.02
        )

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_banks_expose_seeds_and_keywords(self, name):
        bank = load_bank(name)
        assert bank.default_seed_rules
        assert len(bank.keyword_hints) >= 5
        assert bank.biased_exclude_token

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_default_seed_rule_is_precise(self, name):
        """The documented seed rule must exist in the corpus and be precise."""
        spec = dataset_spec(name)
        # Very imbalanced corpora need more sentences before the seed rule has
        # a couple of matches (professions is 1.1% positive).
        size = 3000 if spec.paper_positive_fraction < 0.03 else 800
        corpus = load_dataset(name, num_sentences=size, seed=3, parse_trees=False)
        bank = load_bank(name)
        seed_phrase = tuple(bank.default_seed_rules[0].lower().split())
        covered = {s.sentence_id for s in corpus if s.contains_phrase(seed_phrase)}
        assert len(covered) >= 2, "seed rule must cover at least two sentences"
        positives = corpus.positive_ids()
        precision = len(covered & positives) / len(covered)
        assert precision >= 0.8

    def test_biased_token_appears_in_positives(self):
        corpus = load_dataset("directions", num_sentences=800, seed=3, parse_trees=False)
        bank = load_bank("directions")
        token = bank.biased_exclude_token
        containing = {s.sentence_id for s in corpus if token in s.tokens}
        assert containing
        positives = corpus.positive_ids()
        assert len(containing & positives) / len(containing) > 0.8

    def test_tweets_alternative_intents(self):
        travel = load_dataset("tweets", num_sentences=300, seed=2,
                              parse_trees=False, target_intent="travel")
        career = load_dataset("tweets", num_sentences=300, seed=2,
                              parse_trees=False, target_intent="career")
        assert travel.positive_fraction() > 0
        assert career.positive_fraction() > 0
        assert travel.name != career.name

    def test_tweets_unknown_intent_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("tweets", num_sentences=100, target_intent="sports")

    def test_positive_modes_are_diverse(self):
        """Positives must be spread over several modes (drives rule diversity)."""
        corpus = load_dataset("directions", num_sentences=1000, seed=0, parse_trees=False)
        modes = {s.meta for s in corpus if s.label}
        assert len(modes) >= 5
