"""Tests for the cross-process serving fleet (:mod:`repro.fleet`).

One module-scoped two-worker fleet serves most tests — building the shared
substrate (index + arena + featurizer) once keeps the suite fast. Tests
spawn uniquely-named tenants so they do not interfere; the crash test kills
a worker on purpose and relies on the supervisor's respawn path to leave
the fleet healthy for the tests after it.

The migration-equivalence and crash-resume tests drive two identically
seeded tenants with identical deterministic answer streams, so their
committed histories must match question for question — the acceptance bar
for "migration does not change what the tenant learns".
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import (
    ClassifierConfig,
    CrowdConfig,
    DarwinConfig,
    FleetConfig,
    GatewayConfig,
)
from repro.errors import ConfigurationError
from repro.fleet import FleetSupervisor, WorkerDiedError
from repro.gateway import FleetBackend, GatewayApp, NotFoundError
from repro.gateway.wire import BadRequestError
from repro.obs.prometheus import parse_prometheus_text

SEED_RULE = "best way to get to"


def fleet_config(**overrides) -> DarwinConfig:
    defaults = dict(
        budget=10,
        num_candidates=250,
        min_coverage=2,
        classifier=ClassifierConfig(epochs=10, embedding_dim=30),
    )
    defaults.update(overrides)
    return DarwinConfig(**defaults)


@pytest.fixture(scope="module")
def fleet(directions_corpus):
    crowd = CrowdConfig(
        num_annotators=2,
        redundancy=1,
        batch_size=1,
        annotator_latency=0.0,
        seed=7,
    )
    supervisor = FleetSupervisor(
        directions_corpus,
        fleet_config(),
        fleet=FleetConfig(workers=2, checkpoint_every_commits=2),
        crowd_config=crowd,
        seeds={"rule_texts": [SEED_RULE]},
        dataset_spec={
            "name": "directions",
            "options": {"num_sentences": 600, "seed": 11,
                        "parse_trees": False},
        },
        allow_debug_ops=True,
    )
    with supervisor:
        yield supervisor


def answer_questions(fleet, tenant_id, count, annotator_id=0):
    """Drive ``count`` committed propose→answer(is_useful=True) rounds."""
    committed = 0
    while committed < count:
        proposal = fleet.call_tenant(
            tenant_id, "propose", {"annotator_id": annotator_id}
        )
        assert proposal["assignment"] is not None, "ran out of questions"
        result = fleet.call_tenant(
            tenant_id,
            "answer",
            {
                "ticket_id": proposal["assignment"]["ticket_id"],
                "annotator_id": annotator_id,
                "is_useful": True,
            },
        )
        if result["committed"]:
            committed += 1


class TestPlacementAndOps:
    def test_spawn_routes_and_status(self, fleet):
        fleet.spawn_tenant("place-0", worker=0)
        fleet.spawn_tenant("place-1", worker=1)
        assert fleet.worker_of("place-0") == 0
        assert fleet.worker_of("place-1") == 1
        status = fleet.status()
        assert [w["worker"] for w in status] == [0, 1]
        assert all(w["alive"] for w in status)
        assert "place-0" in status[0]["tenants"]
        assert "place-1" in status[1]["tenants"]

    def test_duplicate_tenant_rejected(self, fleet):
        fleet.spawn_tenant("dup")
        with pytest.raises(ConfigurationError, match="already exists"):
            fleet.spawn_tenant("dup")

    def test_unknown_tenant_raises_not_found(self, fleet):
        with pytest.raises(NotFoundError, match="no tenant"):
            fleet.call_tenant("ghost", "propose", {"annotator_id": 0})
        with pytest.raises(NotFoundError):
            fleet.worker_of("ghost")

    def test_propose_answer_history_roundtrip(self, fleet):
        fleet.spawn_tenant("ops", worker=0)
        answer_questions(fleet, "ops", 2)
        history = fleet.history("ops")
        assert len(history) == 2
        assert all(
            isinstance(rule, str) and answer is True for rule, answer, _ in history
        )

    def test_least_loaded_placement(self, fleet):
        before = {w["worker"]: len(w["tenants"]) for w in fleet.status()}
        fleet.spawn_tenant("balance-x")
        placed = fleet.worker_of("balance-x")
        assert placed == min(sorted(before), key=before.get)


class TestMigration:
    def test_migration_is_question_for_question_identical(self, fleet):
        """A migrated tenant and a never-moved twin, fed identical answers,
        commit identical histories — migration moves state, not behavior."""
        fleet.spawn_tenant("mig-stay", worker=0)
        fleet.spawn_tenant("mig-move", worker=0)
        answer_questions(fleet, "mig-stay", 3)
        answer_questions(fleet, "mig-move", 3)

        moved = fleet.migrate("mig-move")
        assert moved["from"] == 0 and moved["to"] == 1
        assert fleet.worker_of("mig-move") == 1

        answer_questions(fleet, "mig-stay", 3)
        answer_questions(fleet, "mig-move", 3)
        assert fleet.history("mig-move") == fleet.history("mig-stay")

    def test_migrate_to_same_worker_rejected(self, fleet):
        fleet.spawn_tenant("mig-same", worker=0)
        with pytest.raises(BadRequestError, match="already on worker"):
            fleet.migrate("mig-same", target=0)

    def test_migrate_to_unknown_worker_rejected(self, fleet):
        fleet.spawn_tenant("mig-oob", worker=0)
        with pytest.raises(BadRequestError, match="no worker"):
            fleet.migrate("mig-oob", target=9)


class TestCrashRecovery:
    def test_worker_crash_respawns_and_resumes_from_autosave(self, fleet):
        """Kill a worker mid-session: the next call respawns it and adopts
        the tenant's autosaved overlay checkpoint, so committed history
        survives and the session continues."""
        fleet.spawn_tenant("crash-t", worker=1)
        # checkpoint_every_commits=2 -> 4 commits guarantee an autosave.
        answer_questions(fleet, "crash-t", 4)
        before = fleet.history("crash-t")
        assert len(before) == 4
        old_pid = fleet.status()[1]["pid"]

        with pytest.raises(WorkerDiedError):
            # The crash op never answers; the client sees a dead pipe.
            fleet._ensure_alive(1).call("crash", timeout=10.0)

        # Any routed call transparently respawns and retries.
        after = fleet.history("crash-t")
        assert after == before
        status = fleet.status()[1]
        assert status["alive"] and status["pid"] != old_pid
        # The respawned worker keeps serving: the session continues.
        answer_questions(fleet, "crash-t", 1)
        assert len(fleet.history("crash-t")) == 5

    def test_respawn_is_counted(self, fleet):
        from repro.obs import get_registry

        registry = get_registry()
        if not registry.enabled:
            pytest.skip("obs disabled in this run")
        snapshot = registry.snapshot()
        families = snapshot["metrics"]
        assert "fleet_respawns_total" in families


class TestFleetGateway:
    @pytest.fixture()
    def app(self, fleet, tmp_path):
        config = GatewayConfig(
            checkpoint_dir=str(tmp_path / "ckpt"), allow_debug_ops=False
        )
        return GatewayApp(
            config=config,
            crowd_config=fleet.crowd_config,
            backend=FleetBackend(fleet, config.checkpoint_dir),
        )

    def request(self, app, method, path, body=None):
        status, _, payload = app.handle(
            method, path, {}, json.dumps(body or {}).encode()
        )
        return status, json.loads(payload)

    def test_healthz_reports_fleet_topology(self, app):
        status, body = self.request(app, "GET", "/healthz")
        assert status == 200
        assert body["backend"] == "fleet"
        assert [w["worker"] for w in body["workers"]] == [0, 1]

    def test_propose_and_answer_route_to_workers(self, fleet, app):
        # Tenants spawned before the app was built are routable; the app
        # enumerated them into per-tenant queues at construction.
        tenant = fleet.tenant_ids()[0]
        status, body = self.request(
            app, "POST", f"/tenants/{tenant}/propose", {"annotator_id": 1}
        )
        assert status == 200
        assert body["tenant"] == tenant

    def test_migrate_route(self, fleet, app):
        fleet.spawn_tenant("http-mig", worker=0)
        # The app snapshots tenants at construction; rebuild to pick it up.
        config = GatewayConfig(checkpoint_dir=app.config.checkpoint_dir)
        app2 = GatewayApp(
            config=config,
            crowd_config=fleet.crowd_config,
            backend=FleetBackend(fleet, config.checkpoint_dir),
        )
        status, body = self.request(
            app2, "POST", "/tenants/http-mig/migrate", {}
        )
        assert status == 200
        assert body["from"] == 0 and body["to"] == 1
        assert fleet.worker_of("http-mig") == 1

    def test_metrics_merges_worker_series(self, fleet, app):
        # Touch one tenant on each worker so both registries carry samples.
        for worker in fleet.status():
            if worker["tenants"]:
                self.request(
                    app,
                    "POST",
                    f"/tenants/{worker['tenants'][0]}/propose",
                    {"annotator_id": 0},
                )
        status, headers, payload = app.handle("GET", "/metrics", {}, b"")
        assert status == 200
        families = parse_prometheus_text(payload.decode())
        worker_labels = {
            dict(labels).get("worker")
            for family in families.values()
            for (_, labels) in family["samples"]
        }
        assert {"0", "1"} <= worker_labels

    def test_drain_checkpoints_through_backend(self, fleet, tmp_path):
        config = GatewayConfig(checkpoint_dir=str(tmp_path / "drain"))
        app = GatewayApp(
            config=config,
            crowd_config=fleet.crowd_config,
            backend=FleetBackend(fleet, config.checkpoint_dir),
        )
        paths = app.finish_drain()
        assert paths  # every live tenant left a -final.npz
        for tenant_id, path in paths.items():
            assert path.endswith(f"{tenant_id}-final.npz")
            assert os.path.exists(path)
        # Idempotent: a second call returns the same map without re-saving.
        assert app.finish_drain() == paths


class TestSharedSlab:
    def test_slab_spec_attach_shares_vectors(self, fleet):
        from repro.classifier.features import SharedMemorySlab

        assert fleet.slab is not None
        view = SharedMemorySlab.attach(fleet.slab.spec())
        try:
            assert view.num_vectors == fleet.slab.num_vectors
            # Workers fit their featurizers through this slab; at least the
            # corpus vectors computed during tenant spawns are visible here.
            assert view.ready_count > 0
        finally:
            view.close()

    def test_machine_rss_is_tracked(self, fleet):
        rss = fleet.machine_rss_bytes()
        assert rss > 0


class TestGatewayAppConstruction:
    def test_pool_and_backend_mutually_exclusive(self, fleet, tmp_path):
        config = GatewayConfig(checkpoint_dir=str(tmp_path))
        with pytest.raises(BadRequestError, match="exactly one"):
            GatewayApp(config=config)
