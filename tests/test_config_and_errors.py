"""Tests for repro.config and repro.errors."""

from __future__ import annotations

import pytest

from repro.config import ClassifierConfig, DarwinConfig, DEFAULT_CONFIG
from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    CorpusIndexError,
    OracleError,
    ReproError,
)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc_type in (ConfigurationError, CorpusIndexError, OracleError,
                         BudgetExhaustedError):
            assert issubclass(exc_type, ReproError)

    def test_budget_error_is_oracle_error(self):
        assert issubclass(BudgetExhaustedError, OracleError)

    def test_errors_carry_messages(self):
        with pytest.raises(ConfigurationError, match="broken"):
            raise ConfigurationError("broken")


class TestClassifierConfig:
    def test_defaults_are_valid(self):
        config = ClassifierConfig()
        assert config.model == "logistic"
        assert config.epochs > 0

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassifierConfig(model="transformer")

    def test_non_positive_epochs_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassifierConfig(epochs=0)

    def test_non_positive_learning_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassifierConfig(learning_rate=0.0)

    def test_negative_sample_ratio_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ClassifierConfig(negative_sample_ratio=0.0)

    def test_frozen(self):
        config = ClassifierConfig()
        with pytest.raises(Exception):
            config.epochs = 3  # type: ignore[misc]


class TestDarwinConfig:
    def test_defaults_are_valid(self):
        config = DarwinConfig()
        assert config.traversal == "hybrid"
        assert config.budget == 100
        assert config.tau == 5
        assert config.benefit_cutoff == pytest.approx(0.5)

    @pytest.mark.parametrize("field,value", [
        ("budget", 0),
        ("tau", 0),
        ("num_candidates", 0),
        ("max_sketch_depth", 0),
        ("max_phrase_len", 0),
        ("min_coverage", 0),
        ("oracle_sample_size", 0),
        ("retrain_every", 0),
    ])
    def test_positive_fields_rejected_at_zero(self, field, value):
        with pytest.raises(ConfigurationError):
            DarwinConfig(**{field: value})

    def test_unknown_traversal_rejected(self):
        with pytest.raises(ConfigurationError):
            DarwinConfig(traversal="depth-first")

    def test_benefit_cutoff_bounds(self):
        with pytest.raises(ConfigurationError):
            DarwinConfig(benefit_cutoff=1.5)

    def test_oracle_threshold_bounds(self):
        with pytest.raises(ConfigurationError):
            DarwinConfig(oracle_precision_threshold=0.0)
        with pytest.raises(ConfigurationError):
            DarwinConfig(oracle_precision_threshold=1.2)

    def test_with_overrides_simple_field(self):
        config = DarwinConfig().with_overrides(budget=7, traversal="local")
        assert config.budget == 7
        assert config.traversal == "local"
        # The original is unchanged (frozen dataclass copy semantics).
        assert DEFAULT_CONFIG.budget == 100

    def test_with_overrides_nested_classifier_mapping(self):
        config = DarwinConfig().with_overrides(classifier={"epochs": 3})
        assert config.classifier.epochs == 3
        assert config.classifier.model == "logistic"

    def test_with_overrides_nested_classifier_instance(self):
        replacement = ClassifierConfig(model="mlp")
        config = DarwinConfig().with_overrides(classifier=replacement)
        assert config.classifier.model == "mlp"

    def test_with_overrides_bad_classifier_type(self):
        with pytest.raises(ConfigurationError):
            DarwinConfig().with_overrides(classifier=42)

    def test_with_overrides_unknown_field(self):
        with pytest.raises(ConfigurationError):
            DarwinConfig().with_overrides(nonexistent=1)
