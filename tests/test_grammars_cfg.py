"""Tests for the generic CFG framework."""

from __future__ import annotations

import pytest

from repro.errors import GrammarError
from repro.grammars.cfg import (
    ContextFreeGrammar,
    Production,
    phrase_grammar,
    treematch_grammar,
)


def simple_grammar() -> ContextFreeGrammar:
    """S -> a S | b (a tiny right-linear grammar)."""
    return ContextFreeGrammar(
        "S",
        [
            Production("S", ("a", "S")),
            Production("S", ("b",)),
        ],
    )


class TestProduction:
    def test_str_rendering(self):
        assert str(Production("A", ("x", "A"))) == "A -> x A"
        assert "ε" in str(Production("A", tuple()))


class TestContextFreeGrammar:
    def test_terminals_and_nonterminals_inferred(self):
        grammar = simple_grammar()
        assert grammar.nonterminals == {"S"}
        assert grammar.terminals == {"a", "b"}

    def test_requires_productions(self):
        with pytest.raises(GrammarError):
            ContextFreeGrammar("S", [])

    def test_start_symbol_must_have_productions(self):
        with pytest.raises(GrammarError):
            ContextFreeGrammar("X", [Production("S", ("a",))])

    def test_productions_for(self):
        grammar = simple_grammar()
        assert len(grammar.productions_for("S")) == 2
        assert grammar.productions_for("missing") == []

    def test_is_terminal(self):
        grammar = simple_grammar()
        assert grammar.is_terminal("a")
        assert not grammar.is_terminal("S")

    def test_derivations_shortest_first(self):
        grammar = simple_grammar()
        derivations = list(grammar.derivations(max_steps=4))
        sentences = [d.sentence for d in derivations]
        assert ("b",) in sentences
        assert ("a", "b") in sentences
        assert sentences.index(("b",)) < sentences.index(("a", "a", "b"))

    def test_derivations_respect_max_results(self):
        grammar = simple_grammar()
        derivations = list(grammar.derivations(max_steps=10, max_results=3))
        assert len(derivations) == 3

    def test_derivation_records_productions(self):
        grammar = simple_grammar()
        derivation = next(iter(grammar.derivations(max_steps=2)))
        assert len(derivation) == len(derivation.productions)
        assert str(derivation)

    def test_can_derive(self):
        grammar = simple_grammar()
        assert grammar.can_derive(["a", "a", "b"], max_steps=5)
        assert not grammar.can_derive(["b", "a"], max_steps=5)

    def test_describe_mentions_every_production(self):
        grammar = simple_grammar()
        text = grammar.describe()
        assert "S -> a S" in text
        assert "start: S" in text


class TestPaperGrammars:
    def test_phrase_grammar_derives_phrases(self):
        grammar = phrase_grammar(["best", "way", "to"])
        # 'best way' is derivable: A -> best A -> best way A -> best way ε.
        assert grammar.can_derive(["best", "way"], max_steps=6)

    def test_phrase_grammar_includes_operators(self):
        grammar = phrase_grammar(["a"], allow_gap=True)
        assert "*" in grammar.terminals
        assert "+" in grammar.terminals

    def test_phrase_grammar_without_gap(self):
        grammar = phrase_grammar(["a"], allow_gap=False)
        assert "*" not in grammar.terminals

    def test_treematch_grammar_terminals(self):
        grammar = treematch_grammar(["way", "NOUN"])
        assert "/" in grammar.terminals
        assert "//" in grammar.terminals
        assert "∧" in grammar.terminals
        assert "way" in grammar.terminals

    def test_treematch_grammar_derives_leaf(self):
        grammar = treematch_grammar(["way"])
        assert grammar.can_derive(["way"], max_steps=3)
