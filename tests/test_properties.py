"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitScorer
from repro.evaluation.metrics import binary_f1, binary_precision, binary_recall
from repro.index.coverage import CoverageStore, CoverageView, membership_mask
from repro.evaluation.runner import average_curves
from repro.grammars.tokensregex import TokensRegexGrammar
from repro.index.hierarchy import RuleHierarchy
from repro.labeling.label_matrix import ABSTAIN, LabelMatrix, NEGATIVE, POSITIVE
from repro.labeling.majority_vote import majority_vote
from repro.rules.heuristic import LabelingHeuristic
from repro.text.sentence import Sentence
from repro.text.tokenizer import Tokenizer, tokenize
from repro.utils.rng import derive_rng, stable_hash

_GRAMMAR = TokensRegexGrammar(max_phrase_len=4)

tokens_strategy = st.lists(
    st.sampled_from(["best", "way", "to", "get", "shuttle", "the", "airport",
                     "from", "hotel", "order", "food", "uber", "bart"]),
    min_size=1, max_size=12,
)

text_strategy = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd", "Po", "Zs")),
    max_size=80,
)


class TestTokenizerProperties:
    @given(text_strategy)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.filter_too_much])
    def test_tokenizer_deterministic_and_lowercase(self, text):
        first = tokenize(text)
        second = tokenize(text)
        assert first == second
        assert all(token == token.lower() for token in first)

    @given(text_strategy)
    @settings(max_examples=60)
    def test_tokens_contain_no_whitespace(self, text):
        for token in Tokenizer().tokenize(text):
            assert token.strip() == token
            assert token != ""


class TestGrammarProperties:
    @given(tokens_strategy)
    @settings(max_examples=60)
    def test_enumerated_expressions_match_their_sentence(self, tokens):
        sentence = Sentence(0, " ".join(tokens), tuple(tokens))
        for expression in _GRAMMAR.enumerate_expressions(sentence, max_depth=4):
            assert _GRAMMAR.matches(expression, sentence)

    @given(tokens_strategy)
    @settings(max_examples=60)
    def test_generalization_coverage_is_monotone(self, tokens):
        """A parent (generalization) matches every sentence its child matches."""
        sentence = Sentence(0, " ".join(tokens), tuple(tokens))
        expressions = list(_GRAMMAR.enumerate_expressions(sentence, max_depth=4))
        for expression in expressions[:20]:
            for parent in _GRAMMAR.generalizations(expression):
                assert _GRAMMAR.matches(parent, sentence)

    @given(tokens_strategy, tokens_strategy)
    @settings(max_examples=60)
    def test_is_ancestor_implies_coverage_superset(self, tokens_a, tokens_b):
        sentences = [
            Sentence(0, " ".join(tokens_a), tuple(tokens_a)),
            Sentence(1, " ".join(tokens_b), tuple(tokens_b)),
        ]
        expressions = set()
        for sentence in sentences:
            expressions.update(_GRAMMAR.enumerate_expressions(sentence, max_depth=3))
        expressions = list(expressions)[:15]
        for general in expressions:
            for specific in expressions:
                if _GRAMMAR.is_ancestor(general, specific):
                    covered_specific = {
                        s.sentence_id for s in sentences if _GRAMMAR.matches(specific, s)
                    }
                    covered_general = {
                        s.sentence_id for s in sentences if _GRAMMAR.matches(general, s)
                    }
                    assert covered_specific <= covered_general


class TestMetricProperties:
    ids = st.sets(st.integers(min_value=0, max_value=30), max_size=20)

    @given(ids, ids)
    @settings(max_examples=100)
    def test_metrics_bounded(self, predicted, actual):
        for metric in (binary_precision, binary_recall, binary_f1):
            value = metric(predicted, actual)
            assert 0.0 <= value <= 1.0

    @given(ids)
    @settings(max_examples=50)
    def test_perfect_prediction_is_one(self, ids_value):
        if ids_value:
            assert binary_f1(ids_value, ids_value) == 1.0

    @given(ids, ids)
    @settings(max_examples=100)
    def test_f1_between_min_and_max_of_pr(self, predicted, actual):
        p = binary_precision(predicted, actual)
        r = binary_recall(predicted, actual)
        f1 = binary_f1(predicted, actual)
        assert f1 <= max(p, r) + 1e-12
        assert f1 >= min(p, r) - 1e-12 or f1 == 0.0


class TestBenefitProperties:
    coverage = st.sets(st.integers(min_value=0, max_value=19), min_size=1, max_size=15)
    covered = st.sets(st.integers(min_value=0, max_value=19), max_size=10)

    @given(coverage, covered, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=100)
    def test_benefit_bounded_by_new_coverage(self, coverage, covered, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(20)
        scorer = BenefitScorer(scores, covered)
        rule = LabelingHeuristic(_GRAMMAR, tuple(f"t{i}" for i in sorted(coverage)))
        rule = rule.with_coverage(coverage)
        benefit = scorer.benefit(rule)
        new_count = len(coverage - covered)
        assert 0.0 <= benefit <= new_count + 1e-9
        if new_count:
            assert 0.0 <= scorer.average_benefit(rule) <= 1.0 + 1e-9
        else:
            assert benefit == 0.0

    @given(coverage, covered, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_growing_covered_set_never_increases_benefit(self, coverage, covered, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(20)
        rule = LabelingHeuristic(_GRAMMAR, tuple(f"x{i}" for i in sorted(coverage)))
        rule = rule.with_coverage(coverage)
        small = BenefitScorer(scores, covered).benefit(rule)
        grown = BenefitScorer(scores, covered | {0, 1, 2}).benefit(rule)
        assert grown <= small + 1e-9


class TestHierarchyProperties:
    @given(st.lists(st.sets(st.integers(0, 15), min_size=1, max_size=8),
                    min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_cleanup_never_removes_gainful_rules(self, coverages):
        hierarchy = RuleHierarchy()
        rules = []
        for position, coverage in enumerate(coverages):
            rule = LabelingHeuristic(_GRAMMAR, (f"rule{position}",)).with_coverage(coverage)
            if hierarchy.add(rule):
                rules.append(rule)
        covered = {0, 1, 2, 3}
        hierarchy.cleanup(covered)
        for rule in rules:
            gains = set(rule.coverage) - covered
            assert (rule in hierarchy) == bool(gains)


class TestCoverageStoreProperties:
    """Set-semantics equivalence of the columnar coverage layer (interned
    int32 arrays / bitsets) against plain Python sets on random universes."""

    ids = st.sets(st.integers(min_value=0, max_value=200), max_size=60)

    @given(ids)
    @settings(max_examples=100)
    def test_to_set_round_trip(self, ids_value):
        store = CoverageStore(universe_size=201)
        view = store.intern(ids_value)
        assert isinstance(view, CoverageView)
        assert view.to_set() == frozenset(ids_value)
        assert set(view) == ids_value
        assert len(view) == view.count == len(ids_value)
        for sid in ids_value:
            assert sid in view
        assert -1 not in view
        assert 10_000 not in view

    @given(ids, ids)
    @settings(max_examples=100)
    def test_intersection_union_subtract_counts(self, a, b):
        store = CoverageStore(universe_size=201)
        view_a, view_b = store.intern(a), store.intern(b)
        assert view_a.intersect_count(view_b) == len(a & b)
        assert view_a.intersect_count(b) == len(a & b)
        assert set(view_a.subtract(view_b).tolist()) == a - b
        assert set(view_a.subtract(b).tolist()) == a - b
        union = store.union([view_a, view_b])
        assert union.to_set() == frozenset(a | b)
        mask = store.new_mask()
        view_a.union_into(mask)
        view_b.union_into(mask)
        assert store.from_mask(mask) is union  # interning dedups content

    @given(ids, ids)
    @settings(max_examples=100)
    def test_set_protocol_matches_frozenset(self, a, b):
        store = CoverageStore(universe_size=201)
        view = store.intern(a)
        other = frozenset(b)
        assert (view == other) == (frozenset(a) == other)
        assert (view <= other) == (frozenset(a) <= other)
        assert (view & other) == (frozenset(a) & other)
        assert (view | other) == (frozenset(a) | other)
        assert (view - other) == (frozenset(a) - other)
        assert (other - view) == (other - frozenset(a))
        assert hash(view) == hash(frozenset(a))

    @given(ids, ids)
    @settings(max_examples=100)
    def test_mask_primitives(self, a, b):
        store = CoverageStore(universe_size=201)
        view = store.intern(a)
        mask = membership_mask(b, 201)
        assert view.overlap_with(mask) == len(a & b)
        assert set(view.new_ids_given(mask).tolist()) == a - b

    @given(ids)
    @settings(max_examples=60)
    def test_interning_is_identity_preserving(self, ids_value):
        store = CoverageStore(universe_size=201)
        first = store.intern(ids_value)
        second = store.intern(sorted(ids_value))
        third = store.intern(np.array(sorted(ids_value), dtype=np.int64))
        assert first is second is third
        assert store.intern(first) is first

    @given(st.sets(st.integers(min_value=0, max_value=63), min_size=16, max_size=64),
           st.sets(st.integers(min_value=0, max_value=63), min_size=16, max_size=64))
    @settings(max_examples=60)
    def test_dense_bitset_path_agrees_with_sets(self, a, b):
        # Small universe + dense coverage forces the packed-bitset fast path.
        store = CoverageStore(universe_size=64)
        view_a, view_b = store.intern(a), store.intern(b)
        assert view_a._packed_bits() is not None
        assert view_a.intersect_count(view_b) == len(a & b)
        assert view_b.intersect_count(view_a) == len(a & b)


class TestLabelMatrixProperties:
    votes_strategy = st.lists(
        st.lists(st.sampled_from([POSITIVE, NEGATIVE, ABSTAIN]), min_size=2, max_size=4),
        min_size=1, max_size=30,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)

    @given(votes_strategy)
    @settings(max_examples=80)
    def test_majority_vote_bounded_and_abstain_default(self, rows):
        matrix = LabelMatrix(np.array(rows))
        probabilities = majority_vote(matrix, default=0.5)
        assert np.all((probabilities >= 0.0) & (probabilities <= 1.0))
        for row_index, row in enumerate(rows):
            if all(v == ABSTAIN for v in row):
                assert probabilities[row_index] == 0.5


class TestUtilsProperties:
    @given(st.lists(st.lists(st.floats(0, 1), min_size=1, max_size=10),
                    min_size=1, max_size=5))
    @settings(max_examples=60)
    def test_average_curves_bounded(self, curves):
        averaged = average_curves(curves)
        assert len(averaged) == max(len(c) for c in curves)
        assert all(0.0 <= v <= 1.0 for v in averaged)

    @given(st.text(max_size=30), st.text(max_size=30))
    @settings(max_examples=80)
    def test_stable_hash_consistency(self, a, b):
        assert stable_hash(a, b) == stable_hash(a, b)
        if a != b:
            assert stable_hash(a) != stable_hash(b)

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=10))
    @settings(max_examples=50)
    def test_derive_rng_reproducible(self, seed, namespace):
        a = derive_rng(seed, namespace).integers(0, 10**6)
        b = derive_rng(seed, namespace).integers(0, 10**6)
        assert a == b
