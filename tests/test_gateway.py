"""Tests for the HTTP gateway: wire schemas, auth, admission queues, the
in-process app surface, and the ``repro serve-http`` CLI error paths.

Everything here runs without opening a socket: :class:`GatewayApp.handle`
takes ``(method, path, headers, body)`` and returns ``(status, headers,
bytes)``, so routing, auth, backpressure, deadlines, draining, and the error
envelopes are all testable as plain function calls. The one real-socket
end-to-end pass (subprocess boot, urllib traffic, SIGTERM drain, resume)
lives in ``examples/gateway_smoke.py`` and runs as the CI ``gateway-smoke``
job.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import main
from repro.config import ClassifierConfig, CrowdConfig, DarwinConfig, GatewayConfig
from repro.errors import ConfigurationError, OracleError
from repro.gateway import (
    BadRequestError,
    DeadlineExceededError,
    DrainingError,
    ForbiddenError,
    GatewayApp,
    GatewayJob,
    QueueFullError,
    TenantQueue,
    TokenAuthenticator,
    UnauthorizedError,
    build_server,
)
from repro.gateway import wire
from repro.serving import TenantPool

SEED_RULE = "best way to get to"


# --------------------------------------------------------------------- wire
class TestWireParsing:
    def test_empty_body_parses_as_empty_object(self):
        assert wire.parse_json_body(b"") == {}
        assert wire.parse_json_body(b"  \n ") == {}

    def test_non_object_body_rejected(self):
        with pytest.raises(BadRequestError):
            wire.parse_json_body(b"[1, 2]")

    def test_invalid_json_rejected(self):
        with pytest.raises(BadRequestError):
            wire.parse_json_body(b"{not json")

    def test_oversized_body_rejected(self):
        with pytest.raises(BadRequestError, match="exceeds"):
            wire.parse_json_body(b"x" * (wire.MAX_BODY_BYTES + 1))

    def test_propose_requires_integer_annotator(self):
        assert wire.propose_request({"annotator_id": 3}) == {"annotator_id": 3}
        with pytest.raises(BadRequestError):
            wire.propose_request({"annotator_id": "three"})
        # bool is an int subclass; it must not slip through as annotator 1.
        with pytest.raises(BadRequestError):
            wire.propose_request({"annotator_id": True})

    def test_unknown_fields_rejected(self):
        with pytest.raises(BadRequestError, match="unknown field"):
            wire.propose_request({"annotator_id": 0, "surprise": 1})

    def test_answer_requires_boolean_vote(self):
        parsed = wire.answer_request(
            {"ticket_id": 7, "annotator_id": 0, "is_useful": False}
        )
        assert parsed == {"ticket_id": 7, "annotator_id": 0, "is_useful": False}
        with pytest.raises(BadRequestError):
            wire.answer_request(
                {"ticket_id": 7, "annotator_id": 0, "is_useful": "yes"}
            )

    @pytest.mark.parametrize(
        "name", ["../escape", "a/b", "a\\b", ".hidden", ""]
    )
    def test_checkpoint_name_traversal_rejected(self, name):
        with pytest.raises(BadRequestError):
            wire.checkpoint_request({"name": name})

    def test_checkpoint_name_optional(self):
        assert wire.checkpoint_request({}) == {"name": None}
        assert wire.checkpoint_request({"name": "snap-1"}) == {"name": "snap-1"}

    def test_deadline_ms_validation(self):
        assert wire.deadline_ms({}) is None
        assert wire.deadline_ms({"deadline_ms": 250}) == 250.0
        for bad in (0, -5, True, "fast"):
            with pytest.raises(BadRequestError):
                wire.deadline_ms({"deadline_ms": bad})


class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "exc, status",
        [
            (BadRequestError("x"), 400),
            (UnauthorizedError("x"), 401),
            (ForbiddenError("x"), 403),
            (QueueFullError("x"), 429),
            (DrainingError("x"), 503),
            (DeadlineExceededError("x"), 504),
            (ConfigurationError("x"), 400),
            (OracleError("x"), 409),
            (ValueError("internal"), 500),
        ],
    )
    def test_status_mapping(self, exc, status):
        got_status, _, body = wire.error_envelope(exc)
        assert got_status == status
        envelope = json.loads(body)["error"]
        assert envelope["type"] == type(exc).__name__
        assert envelope["status"] == status

    def test_retry_after_header(self):
        _, headers, _ = wire.error_envelope(QueueFullError("full", retry_after=7))
        assert headers["Retry-After"] == "7"
        _, headers, _ = wire.error_envelope(QueueFullError("full"))
        assert "Retry-After" not in headers


# --------------------------------------------------------------------- auth
class TestTokenAuthenticator:
    def test_disabled_allows_everything(self):
        auth = TokenAuthenticator(None)
        assert not auth.enabled
        auth.authorize(None, "tenant-0")  # no raise

    def test_wildcard_and_scoped_tokens(self):
        auth = TokenAuthenticator(
            {"admin": "*", "alpha": "tenant-0", "team": ["tenant-1", "tenant-2"]}
        )
        auth.authorize("Bearer admin", "tenant-9")
        auth.authorize("Bearer alpha", "tenant-0")
        auth.authorize("bearer team", "tenant-2")  # scheme is case-insensitive
        with pytest.raises(ForbiddenError):
            auth.authorize("Bearer alpha", "tenant-1")

    @pytest.mark.parametrize(
        "header", [None, "", "Bearer", "Bearer   ", "Basic alpha", "alpha"]
    )
    def test_missing_or_malformed_header(self, header):
        auth = TokenAuthenticator({"alpha": "*"})
        with pytest.raises(UnauthorizedError):
            auth.authorize(header, "tenant-0")

    def test_unknown_token(self):
        auth = TokenAuthenticator({"alpha": "*"})
        with pytest.raises(UnauthorizedError):
            auth.authorize("Bearer beta", "tenant-0")

    def test_bad_table_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenAuthenticator({"": "*"})
        with pytest.raises(ConfigurationError):
            TokenAuthenticator({"tok": []})
        with pytest.raises(ConfigurationError):
            TokenAuthenticator({"tok": 7})

    def test_from_file_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            TokenAuthenticator.from_file(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            TokenAuthenticator.from_file(str(bad))
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        with pytest.raises(ConfigurationError, match="non-empty"):
            TokenAuthenticator.from_file(str(empty))
        listy = tmp_path / "list.json"
        listy.write_text("[1]")
        with pytest.raises(ConfigurationError, match="non-empty"):
            TokenAuthenticator.from_file(str(listy))

    def test_from_file_none_disables(self):
        assert not TokenAuthenticator.from_file(None).enabled


# ------------------------------------------------------------------- queues
class TestGatewayJob:
    def test_runs_and_returns_value(self):
        job = GatewayJob(lambda: 42, deadline=None)
        job.execute()
        assert job.result() == 42

    def test_closure_error_reraised_on_result(self):
        job = GatewayJob(lambda: 1 / 0, deadline=None)
        job.execute()
        with pytest.raises(ZeroDivisionError):
            job.result()

    def test_expired_job_never_runs(self):
        ran = []
        job = GatewayJob(lambda: ran.append(1), deadline=time.monotonic() - 1)
        job.execute()
        assert ran == []
        with pytest.raises(DeadlineExceededError):
            job.result()

    def test_request_side_expire_cancels_pending_job(self):
        job = GatewayJob(lambda: 1, deadline=time.monotonic() + 0.05)
        # Nobody executes it; result() must expire it at the deadline.
        with pytest.raises(DeadlineExceededError):
            job.result()
        assert job.state == "expired"

    def test_expire_loses_race_to_worker(self):
        job = GatewayJob(lambda: "done", deadline=time.monotonic() + 60)
        job.execute()
        assert job.expire() is False
        assert job.result() == "done"


class TestTenantQueue:
    def test_serial_execution_in_admission_order(self):
        q = TenantQueue("t", depth=8)
        try:
            seen = []
            jobs = [
                q.submit(lambda i=i: seen.append(i), deadline=None)
                for i in range(5)
            ]
            for job in jobs:
                job.result()
            assert seen == [0, 1, 2, 3, 4]
        finally:
            q.close(timeout=10)

    def test_full_queue_raises_429_error(self):
        q = TenantQueue("t", depth=1, retry_after=3)
        started = threading.Event()
        release = threading.Event()

        def occupy():
            started.set()
            release.wait()

        try:
            q.submit(occupy, deadline=None)
            assert started.wait(5)                  # worker is now occupied
            q.submit(lambda: None, deadline=None)   # fills the single slot
            with pytest.raises(QueueFullError) as excinfo:
                q.submit(lambda: None, deadline=None)
            assert excinfo.value.retry_after == 3
        finally:
            release.set()
            q.close(timeout=10)

    def test_draining_queue_refuses_submissions(self):
        q = TenantQueue("t", depth=4)
        try:
            q.begin_drain()
            with pytest.raises(DrainingError):
                q.submit(lambda: None, deadline=None)
        finally:
            q.close(timeout=10)

    def test_queued_job_past_deadline_returns_504(self):
        q = TenantQueue("t", depth=4)
        try:
            release = threading.Event()
            q.submit(release.wait, deadline=None)
            stuck = q.submit(lambda: "late", deadline=time.monotonic() + 0.1)
            with pytest.raises(DeadlineExceededError):
                stuck.result()
            release.set()
        finally:
            q.close(timeout=10)

    def test_close_is_idempotent(self):
        q = TenantQueue("t", depth=2)
        q.close(timeout=10)
        q.close(timeout=10)

    def test_expired_jobs_release_their_slots(self):
        """Regression: a storm of timed-out requests must not hold the queue
        full — expiry reclaims the admission slot immediately, so fresh
        traffic is admitted instead of bouncing with 429."""
        q = TenantQueue("t", depth=2, retry_after=1)
        started = threading.Event()
        release = threading.Event()

        def occupy():
            started.set()
            release.wait()

        try:
            q.submit(occupy, deadline=None)
            assert started.wait(5)  # worker busy: submissions stay queued
            storm = [
                q.submit(lambda: None, deadline=time.monotonic() + 0.01)
                for _ in range(2)
            ]
            for job in storm:
                with pytest.raises(DeadlineExceededError):
                    job.result()  # expires the job, reclaiming its slot
            # Before the fix the two expired jobs still occupied both
            # slots and this fresh request was rejected with 429.
            fresh = q.submit(lambda: "served", deadline=None)
            release.set()
            assert fresh.result() == "served"
        finally:
            release.set()
            q.close(timeout=10)

    def test_close_settles_pending_jobs_of_wedged_worker(self):
        """Regression: close(timeout) on a queue whose worker is stuck used
        to leave pending jobs' waiters blocked forever; they must all be
        settled with DrainingError before close reports the wedge."""
        from repro.gateway import GatewayError

        q = TenantQueue("t", depth=4)
        started = threading.Event()
        release = threading.Event()
        q.submit(lambda: (started.set(), release.wait()), deadline=None)
        assert started.wait(5)
        stuck = q.submit(lambda: "never runs", deadline=None)
        outcome = []

        def wait_on_stuck():
            try:
                stuck.result()
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                outcome.append(exc)

        waiter = threading.Thread(target=wait_on_stuck, daemon=True)
        waiter.start()
        with pytest.raises(GatewayError, match="did not stop"):
            q.close(timeout=0.2)
        waiter.join(timeout=5)
        assert not waiter.is_alive(), "waiter still blocked after close()"
        assert len(outcome) == 1 and isinstance(outcome[0], DrainingError)
        release.set()

    def test_result_rethrows_copy_and_preserves_worker_traceback(self):
        """Regression: result() used to raise the worker's exception object
        itself, grafting each request thread's traceback onto it; it must
        raise a chained copy and leave the original's traceback intact."""
        def boom():
            raise OracleError("no such ticket")

        job = GatewayJob(boom, deadline=None)
        job.execute()
        with job._lock:
            original = job._error
        worker_tb = original.__traceback__
        assert worker_tb is not None
        raised = []
        for _ in range(2):  # every waiter gets its own copy
            try:
                job.result()
            except OracleError as exc:
                raised.append(exc)
        assert len(raised) == 2
        for exc in raised:
            assert exc is not original
            assert exc.__cause__ is original
            assert str(exc) == str(original)
        assert raised[0] is not raised[1]
        assert original.__traceback__ is worker_tb


# ------------------------------------------------------------ app (no socket)
@pytest.fixture(scope="module")
def gateway_pool(directions_corpus):
    config = DarwinConfig(
        budget=10,
        num_candidates=250,
        min_coverage=2,
        classifier=ClassifierConfig(epochs=10, embedding_dim=30),
    )
    with TenantPool(
        directions_corpus, config, seeds={"rule_texts": [SEED_RULE]}
    ) as pool:
        pool.spawn_many(2)
        yield pool


@pytest.fixture()
def gateway_app(gateway_pool, tmp_path):
    return GatewayApp(
        gateway_pool,
        GatewayConfig(
            port=0,
            queue_depth=4,
            checkpoint_dir=str(tmp_path / "ckpts"),
            allow_debug_ops=True,
        ),
        CrowdConfig(
            num_annotators=2, redundancy=1, batch_size=4, budget=10,
            annotator_latency=0.0,
        ),
    )


def _call(app, method, path, payload=None, headers=None):
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    status, response_headers, raw = app.handle(
        method, path, headers or {}, body
    )
    parsed = (
        json.loads(raw)
        if response_headers.get("Content-Type", "").startswith("application/json")
        else raw
    )
    return status, response_headers, parsed


class TestGatewayApp:
    def test_healthz_reports_tenants(self, gateway_app):
        status, _, body = _call(gateway_app, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["tenants"] == sorted(gateway_app.pool.tenants)
        assert body["auth"] is False

    def test_metrics_route_is_prometheus(self, gateway_app):
        status, headers, raw = _call(gateway_app, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")

    def test_propose_then_answer_commits(self, gateway_app):
        tenant = sorted(gateway_app.pool.tenants)[0]
        status, _, body = _call(
            gateway_app, "POST", f"/tenants/{tenant}/propose",
            {"annotator_id": 0},
        )
        assert status == 200
        assignment = body["assignment"]
        assert assignment is not None
        assert assignment["rule"]
        assert isinstance(assignment["sample_ids"], list)
        status, _, body = _call(
            gateway_app, "POST", f"/tenants/{tenant}/answer",
            {"ticket_id": assignment["ticket_id"], "annotator_id": 0,
             "is_useful": True},
        )
        assert status == 200
        assert body["committed"] is True
        assert body["record"]["answer"] is True

    def test_checkpoint_writes_file(self, gateway_app, tmp_path):
        tenant = sorted(gateway_app.pool.tenants)[1]
        status, _, body = _call(
            gateway_app, "POST", f"/tenants/{tenant}/checkpoint",
            {"name": "snap"},
        )
        assert status == 200
        assert body["path"].endswith("snap.npz")
        import os
        assert os.path.exists(body["path"])

    def test_unknown_route_and_tenant_404(self, gateway_app):
        status, _, body = _call(gateway_app, "GET", "/nope")
        assert status == 404
        status, _, body = _call(
            gateway_app, "POST", "/tenants/ghost/propose", {"annotator_id": 0}
        )
        assert status == 404
        assert body["error"]["type"] == "NotFoundError"

    def test_wrong_method_405(self, gateway_app):
        tenant = sorted(gateway_app.pool.tenants)[0]
        status, _, body = _call(gateway_app, "GET", f"/tenants/{tenant}/propose")
        assert status == 405
        status, _, _ = _call(gateway_app, "POST", "/healthz")
        assert status == 405

    def test_bad_body_becomes_400_envelope(self, gateway_app):
        tenant = sorted(gateway_app.pool.tenants)[0]
        status, _, body = _call(
            gateway_app, "POST", f"/tenants/{tenant}/propose",
            {"annotator_id": "zero"},
        )
        assert status == 400
        assert body["error"]["type"] == "BadRequestError"

    def test_vote_on_unknown_ticket_is_409(self, gateway_app):
        tenant = sorted(gateway_app.pool.tenants)[0]
        status, _, body = _call(
            gateway_app, "POST", f"/tenants/{tenant}/answer",
            {"ticket_id": 999_999, "annotator_id": 0, "is_useful": True},
        )
        assert status == 409
        assert body["error"]["type"] == "OracleError"

    def test_auth_enforced_when_configured(self, gateway_pool, tmp_path):
        app = GatewayApp(
            gateway_pool,
            GatewayConfig(port=0, checkpoint_dir=str(tmp_path / "c")),
            authenticator=TokenAuthenticator({"tok": "tenant-0"}),
        )
        status, _, body = _call(
            app, "POST", "/tenants/tenant-0/propose", {"annotator_id": 0}
        )
        assert status == 401
        status, _, _ = _call(
            app, "POST", "/tenants/tenant-0/checkpoint", {},
            headers={"Authorization": "Bearer tok"},
        )
        assert status == 200
        status, _, body = _call(
            app, "POST", "/tenants/tenant-1/propose", {"annotator_id": 0},
            headers={"authorization": "Bearer tok"},  # case-insensitive
        )
        assert status == 403
        # /healthz and /metrics stay open for probes and scrapers.
        assert _call(app, "GET", "/healthz")[0] == 200
        assert _call(app, "GET", "/metrics")[0] == 200

    def test_draining_app_rejects_with_503(self, gateway_pool, tmp_path):
        app = GatewayApp(
            gateway_pool,
            GatewayConfig(
                port=0, retry_after_s=5, checkpoint_dir=str(tmp_path / "c")
            ),
        )
        app.begin_drain()
        status, headers, body = _call(
            app, "POST", "/tenants/tenant-0/propose", {"annotator_id": 0}
        )
        assert status == 503
        assert headers["Retry-After"] == "5"
        assert body["error"]["type"] == "DrainingError"
        status, _, body = _call(app, "GET", "/healthz")
        assert status == 503
        assert body["status"] == "draining"

    def test_finish_drain_checkpoints_every_tenant(self, gateway_pool, tmp_path):
        import os
        app = GatewayApp(
            gateway_pool,
            GatewayConfig(port=0, checkpoint_dir=str(tmp_path / "drain")),
        )
        paths = app.finish_drain()
        assert sorted(paths) == sorted(gateway_pool.tenants)
        for tenant_id, path in paths.items():
            assert path.endswith(f"{tenant_id}-final.npz")
            assert os.path.exists(path)
        # Idempotent: a second call returns the same map without re-saving.
        assert app.finish_drain() == paths

    def test_unknown_backend_rejected(self, gateway_pool, tmp_path):
        app = GatewayApp(
            gateway_pool,
            GatewayConfig(
                port=0, backend="twisted", checkpoint_dir=str(tmp_path / "c")
            ),
        )
        with pytest.raises(ConfigurationError, match="unknown gateway backend"):
            build_server(app)


# ---------------------------------------------------------------------- CLI
class TestServeHttpCli:
    def test_bad_port_exits_2(self, capsys):
        assert main(["serve-http", "--port", "70000"]) == 2
        assert "serve-http:" in capsys.readouterr().err

    def test_missing_arena_directory_exits_2(self, capsys):
        exit_code = main([
            "serve-http", "--coverage-backend", "arena",
            "--arena-path", "/nonexistent-gateway-dir/pool.arena",
        ])
        assert exit_code == 2
        assert "arena directory does not exist" in capsys.readouterr().err

    def test_invalid_auth_token_file_exits_2(self, tmp_path, capsys):
        exit_code = main([
            "serve-http", "--auth-tokens", str(tmp_path / "missing.json"),
        ])
        assert exit_code == 2
        assert "auth token file not found" in capsys.readouterr().err

    def test_malformed_auth_token_file_exits_2(self, tmp_path, capsys):
        tokens = tmp_path / "tokens.json"
        tokens.write_text("{broken")
        exit_code = main(["serve-http", "--auth-tokens", str(tokens)])
        assert exit_code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve-http"])
        assert args.port == 8080
        assert args.queue_depth == 32
        assert args.coverage_backend == "memory"
        assert args.allow_debug_ops is False
