"""Tests for Sentence, Vocabulary, Corpus and the embedding model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.corpus import Corpus
from repro.text.embeddings import EmbeddingModel, build_embeddings
from repro.text.sentence import Sentence
from repro.text.vocabulary import Vocabulary


class TestSentence:
    def test_contains_phrase(self):
        sentence = Sentence(0, "best way to get", ("best", "way", "to", "get"))
        assert sentence.contains_phrase(("way", "to"))
        assert sentence.contains_phrase(("best",))
        assert not sentence.contains_phrase(("to", "way"))
        assert sentence.contains_phrase(())

    def test_ngrams(self):
        sentence = Sentence(0, "a b c", ("a", "b", "c"))
        grams = sentence.ngrams(2)
        assert ("a",) in grams and ("b", "c") in grams
        assert ("a", "b", "c") not in grams
        assert len(grams) == 5

    def test_ngrams_longer_than_sentence(self):
        sentence = Sentence(0, "a", ("a",))
        assert sentence.ngrams(5) == (("a",),)

    def test_tag_alignment_enforced(self):
        with pytest.raises(ValueError):
            Sentence(0, "a b", ("a", "b"), tags=("DET",))

    def test_len(self):
        assert len(Sentence(0, "a b", ("a", "b"))) == 2


class TestVocabulary:
    def test_build_and_lookup(self):
        vocab = Vocabulary.from_sentences([["a", "b"], ["a", "c"]])
        assert "a" in vocab
        assert vocab.id_of("a") >= 2  # after <unk>, <pad>
        assert vocab.token_of(vocab.id_of("a")) == "a"

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary.from_sentences([["a"]])
        assert vocab.id_of("zzz") == 0

    def test_min_count_filters(self):
        vocab = Vocabulary.from_sentences([["a", "a", "b"]], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_max_size_caps(self):
        vocab = Vocabulary.from_sentences([["a", "a", "b", "c"]], max_size=1)
        assert len(vocab.content_tokens()) == 1

    def test_encode(self):
        vocab = Vocabulary.from_sentences([["a", "b"]])
        encoded = vocab.encode(["a", "zzz"])
        assert encoded[0] == vocab.id_of("a")
        assert encoded[1] == 0

    def test_cannot_add_after_freeze(self):
        vocab = Vocabulary.from_sentences([["a"]])
        with pytest.raises(RuntimeError):
            vocab.add_sentence(["b"])

    def test_min_count_validation(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)


class TestCorpus:
    def test_from_texts_preprocesses(self, example1_corpus):
        assert len(example1_corpus) == 6
        first = example1_corpus[0]
        assert first.tokens[0] == "what"
        assert len(first.tags) == len(first.tokens)
        assert first.tree is not None

    def test_ids_are_consecutive(self, example1_corpus):
        for expected, sentence in enumerate(example1_corpus):
            assert sentence.sentence_id == expected

    def test_positive_and_negative_ids(self, example1_corpus):
        assert example1_corpus.positive_ids() == {0, 1, 3}
        assert example1_corpus.negative_ids() == {2, 4, 5}
        assert example1_corpus.has_labels()
        assert example1_corpus.positive_fraction() == pytest.approx(0.5)

    def test_labels_must_align(self):
        with pytest.raises(ValueError):
            Corpus.from_texts(["a", "b"], labels=[True])

    def test_subset_renumbers(self, example1_corpus):
        subset = example1_corpus.subset([1, 3])
        assert len(subset) == 2
        assert [s.sentence_id for s in subset] == [0, 1]
        assert subset[0].text == example1_corpus[1].text

    def test_describe(self, example1_corpus):
        info = example1_corpus.describe()
        assert info["num_sentences"] == 6
        assert info["num_positives"] == 3
        assert info["vocabulary_size"] > 5

    def test_vocabulary_cached(self, example1_corpus):
        assert example1_corpus.vocabulary() is example1_corpus.vocabulary()

    def test_unlabeled_corpus(self):
        corpus = Corpus.from_texts(["hello world"])
        assert not corpus.has_labels()
        assert corpus.positive_ids() == set()

    def test_bad_sentence_ids_rejected(self):
        sentence = Sentence(3, "a", ("a",))
        with pytest.raises(ValueError):
            Corpus([sentence])


class TestEmbeddings:
    def test_build_embeddings_shapes(self, example1_corpus):
        model = build_embeddings((s.tokens for s in example1_corpus), dim=16, min_count=1)
        assert model.dim == 16
        vector = model.vector("way")
        assert vector.shape == (16,)
        assert np.isfinite(vector).all()

    def test_oov_fallback_is_deterministic(self):
        model = EmbeddingModel(8, {})
        assert np.allclose(model.vector("zzz"), model.vector("zzz"))
        assert not np.allclose(model.vector("zzz"), model.vector("qqq"))

    def test_sentence_vector_mean(self):
        vectors = {"a": np.ones(4), "b": np.ones(4)}
        model = EmbeddingModel(4, vectors)
        sentence_vec = model.sentence_vector(["a", "b"])
        assert sentence_vec.shape == (4,)

    def test_sentence_vector_empty(self):
        model = EmbeddingModel(4, {})
        assert np.allclose(model.sentence_vector([]), np.zeros(4))

    def test_sentence_matrix_padding(self):
        model = EmbeddingModel(4, {"a": np.ones(4)})
        matrix = model.sentence_matrix(["a"], max_len=3)
        assert matrix.shape == (3, 4)
        assert np.allclose(matrix[1], 0.0)

    def test_similarity_of_cooccurring_words(self, directions_corpus):
        model = build_embeddings(
            (s.tokens for s in directions_corpus), dim=30, min_count=2, seed=1
        )
        # Words that co-occur with the same contexts should be more similar
        # than unrelated words on average; use a weak sanity check.
        sim_related = model.similarity("airport", "shuttle")
        sim_unrelated = model.similarity("airport", "towels")
        assert sim_related > sim_unrelated - 0.5

    def test_most_similar_excludes_self(self, example1_corpus):
        model = build_embeddings((s.tokens for s in example1_corpus), dim=8, min_count=1)
        neighbours = model.most_similar("way", top_k=3)
        assert all(token != "way" for token, _ in neighbours)

    def test_bad_vector_shape_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingModel(4, {"a": np.ones(3)})

    def test_dim_must_be_positive(self):
        with pytest.raises(ValueError):
            EmbeddingModel(0, {})
