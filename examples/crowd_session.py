"""Concurrent crowd-annotation session (the paper's Section 4.3 setting).

Four simulated annotators verify candidate rules concurrently: the crowd
coordinator hands each of them distinct questions (or redundant copies of the
same question when ``--redundancy`` > 1), aggregates votes by majority, and
batches classifier retrains across answers. Run::

    python examples/crowd_session.py
    python examples/crowd_session.py --redundancy 3 --noise 0.2
"""

from __future__ import annotations

import argparse

from repro import CrowdConfig, Darwin, DarwinConfig, run_crowd
from repro.datasets import load_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=30,
                        help="committed-question budget (default 30)")
    parser.add_argument("--annotators", type=int, default=4)
    parser.add_argument("--redundancy", type=int, default=1,
                        help="votes per question, majority wins (default 1)")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="answers per retrain/refresh batch (default 8)")
    parser.add_argument("--latency", type=float, default=0.02,
                        help="simulated annotator think time in seconds")
    parser.add_argument("--noise", type=float, default=0.0,
                        help="per-annotator answer-flip probability")
    args = parser.parse_args()

    corpus = load_dataset("directions", num_sentences=1500, seed=7)
    darwin = Darwin(corpus, config=DarwinConfig(budget=args.budget,
                                                num_candidates=800))
    crowd_config = CrowdConfig(
        num_annotators=args.annotators,
        redundancy=args.redundancy,
        batch_size=args.batch_size,
        annotator_latency=args.latency,
        label_noise=args.noise,
        seed=7,
    )

    print(f"Loaded {len(corpus)} sentences; seed rule: 'best way to get to'")
    print(f"Dispatching to {args.annotators} annotators "
          f"(redundancy {args.redundancy}, batch size {args.batch_size}, "
          f"~{1000 * args.latency:.0f}ms think time)...\n")

    outcome = run_crowd(darwin, config=crowd_config,
                        seed_rule_texts=["best way to get to"])

    crowd = outcome.crowd
    result = outcome.darwin_result
    print(f"Committed {crowd.questions_committed} questions from "
          f"{crowd.votes_collected} votes in {outcome.wall_seconds:.2f}s "
          f"({outcome.answers_per_sec:.1f} answers/s).")
    print("Votes per annotator: "
          + ", ".join(f"#{a}={v}" for a, v in
                      sorted(crowd.votes_per_annotator.items())))
    print(f"\nAccepted rules ({len(result.rule_set)}):")
    for rule in result.rule_set.rules:
        print(f"  - {rule.render()!r:40s} |C_r| = {rule.coverage_size}")
    print(f"\nFinal coverage (recall over positives): {result.final_recall:.2f}")


if __name__ == "__main__":
    main()
