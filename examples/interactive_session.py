"""Interactive rule-verification session (the paper's Figure 2 workflow).

Darwin proposes one candidate rule at a time together with a few matching
sentences; you answer y/n. Run interactively::

    python examples/interactive_session.py

or let the built-in simulated annotator answer for you (no input needed)::

    python examples/interactive_session.py --auto
"""

from __future__ import annotations

import argparse
import sys

from repro import Darwin, DarwinConfig, LabelingSession
from repro.datasets import load_dataset


def ask_human(question) -> bool:
    """Prompt the user for a YES/NO judgement on a candidate rule."""
    print("\n" + "=" * 70)
    print(f"Is the following rule useful for the 'directions' intent?\n")
    print(f"    RULE: {question.rendered}\n")
    print("Example sentences matching the rule:")
    for text in question.example_texts:
        print(f"    - {text}")
    while True:
        reply = input("\nUseful? [y/n] ").strip().lower()
        if reply in {"y", "yes"}:
            return True
        if reply in {"n", "no"}:
            return False
        print("please answer 'y' or 'n'")


def ask_simulated(question, corpus) -> bool:
    """Auto-answer like the paper's oracle: YES iff coverage is 80% positive."""
    positives = corpus.positive_ids()
    precision = question.rule.precision(positives)
    answer = precision >= 0.8
    print(f"[auto] {question.rendered!r:40s} precision={precision:.2f} -> "
          f"{'YES' if answer else 'NO'}")
    return answer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--auto", action="store_true",
                        help="answer questions with a simulated annotator")
    parser.add_argument("--budget", type=int, default=25,
                        help="number of questions to answer (default 25)")
    args = parser.parse_args()

    corpus = load_dataset("directions", num_sentences=1500, seed=7)
    darwin = Darwin(corpus, config=DarwinConfig(budget=args.budget, num_candidates=800))
    session = LabelingSession(
        darwin, budget=args.budget, seed_rule_texts=["best way to get to"]
    )

    print(f"Loaded {len(corpus)} sentences; seed rule: 'best way to get to'")
    print(f"You will be asked up to {args.budget} questions.\n")

    while not session.is_done:
        question = session.next_question()
        if question is None:
            print("Darwin has no more candidate rules to propose.")
            break
        if args.auto or not sys.stdin.isatty():
            answer = ask_simulated(question, corpus)
        else:
            answer = ask_human(question)
        record = session.submit_answer(answer)
        print(f"    -> coverage now {record.covered} sentences "
              f"(recall {record.recall:.2f})")

    print("\n" + "=" * 70)
    print(f"Accepted rules after {session.questions_asked} questions:")
    for rule in session.accepted_rules():
        print(f"  - {rule}")
    result = session.result()
    print(f"\nfinal coverage (recall over positives): {result.final_recall:.2f}")


if __name__ == "__main__":
    main()
