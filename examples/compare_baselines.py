"""Compare Darwin against Snuba, Active Learning and Keyword Sampling.

Reproduces (at small scale) the core comparisons of the paper's evaluation on
the musicians entity-extraction task:

* Figure 7-style: Darwin seeded with 25 labeled sentences vs. Snuba given the
  same 25 (and then 10x more) labeled sentences,
* Figure 9-style: classifier F-score of Darwin(HS) vs. AL and KS under the
  same question budget.

Run with::

    python examples/compare_baselines.py
"""

from __future__ import annotations

from repro.baselines import ActiveLearningBaseline, KeywordSamplingBaseline, SnubaBaseline
from repro.config import ClassifierConfig, DarwinConfig
from repro.experiments.common import prepare_dataset
from repro.experiments.seed_size import sample_labeled_subset


def main() -> None:
    config = DarwinConfig(
        budget=60,
        num_candidates=1000,
        classifier=ClassifierConfig(epochs=40, embedding_dim=40),
    )
    setting = prepare_dataset("musicians", scale=0.08, seed=11, config=config)
    corpus = setting.corpus
    truth = corpus.positive_ids()
    print(f"musicians corpus: {len(corpus)} sentences, {len(truth)} positives")

    # ------------------------------------------------------------- Figure 7
    print("\n== Darwin vs Snuba (coverage of positives) ==")
    for seed_size in (25, 250):
        subset = sample_labeled_subset(setting, size=seed_size, seed=1)
        labels = {i: bool(corpus[i].label) for i in subset}

        snuba = SnubaBaseline(corpus).run(subset, labels=labels)
        darwin = setting.run_darwin(
            traversal="hybrid",
            budget=60,
            seed_positive_ids=[i for i in subset if labels[i]],
        )
        print(f"  {seed_size:4d} labeled seeds | "
              f"Snuba coverage: {snuba.coverage:.2f} "
              f"({len(snuba.rule_set)} rules) | "
              f"Darwin(HS) coverage: {darwin.final_recall:.2f} "
              f"({len(darwin.rule_set)} rules, {darwin.queries_used} questions)")

    # ------------------------------------------------------------- Figure 9
    print("\n== classifier F-score under the same question budget ==")
    budget = 60
    darwin = setting.run_darwin(traversal="hybrid", budget=budget)
    active = ActiveLearningBaseline(
        corpus, classifier_config=config.classifier, featurizer=setting.featurizer
    ).run(budget=budget)
    keyword = KeywordSamplingBaseline(
        corpus, keywords=setting.keyword_hints,
        classifier_config=config.classifier, featurizer=setting.featurizer,
    ).run(budget=budget)

    print(f"  Darwin(HS):        F1 = {darwin.final_f1:.2f}")
    print(f"  Active Learning:   F1 = {active.final_f1:.2f}")
    print(f"  Keyword Sampling:  F1 = {keyword.final_f1:.2f}")

    print("\ndiscovered rules (first 10):")
    for rule in darwin.rule_set.rules[:10]:
        print(f"  - {rule.render()}")


if __name__ == "__main__":
    main()
