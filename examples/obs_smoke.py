"""Observability smoke test: telemetry must be complete, parseable, and off
by default.

Two modes, both exercised by CI's ``obs-smoke`` job:

* no arguments — run a short directions session with :mod:`repro.obs`
  enabled, then validate the whole surface end to end: the snapshot holds
  darwin-phase histograms, cache hit/miss counters and tenant gauges; the
  Prometheus exposition round-trips through the repo's own parser; the
  ``--metrics-out`` snapshot file reads back; and a second, telemetry-off
  run records nothing (the NullRegistry guarantee);
* ``--snapshot PATH`` — validate a snapshot file some other process wrote
  (CI points this at the output of ``repro run --metrics-out``).

Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro import DarwinEngine, obs

SPEC = {
    "dataset": {"name": "directions", "num_sentences": 1000, "seed": 7,
                "parse_trees": False},
    "config": {"budget": 8, "traversal": "hybrid", "num_candidates": 400,
               "grammars": ["tokensregex"], "oracle": "ground_truth",
               "classifier": {"model": "logistic", "epochs": 12}},
    "seeds": {"rule_texts": ["best way to get to"]},
}

REQUIRED_FAMILIES = (
    "darwin_phase_seconds",
    "darwin_questions_total",
    "darwin_retrains_total",
    "feature_cache_hits",
    "feature_cache_misses",
    "coverage_interned",
    "tenant_questions",
)

REQUIRED_PHASES = {"index_build", "propose", "oracle_answer", "retrain"}


def check_snapshot(snapshot: dict, source: str) -> list:
    """Failures found in one metrics snapshot dict (the ``snapshot()`` shape)."""
    failures = []
    if not snapshot.get("enabled"):
        return [f"{source}: snapshot says metrics were disabled"]
    metrics = snapshot.get("metrics", {})
    for family in REQUIRED_FAMILIES:
        if family not in metrics:
            failures.append(f"{source}: metric family {family!r} missing")
    phase_family = metrics.get("darwin_phase_seconds", {})
    phases = {
        entry.get("labels", {}).get("phase")
        for entry in phase_family.get("series", [])
    }
    missing = REQUIRED_PHASES - phases
    if missing:
        failures.append(f"{source}: darwin phases missing: {sorted(missing)}")
    summary = obs.summarize_snapshot(snapshot)
    if not summary.get("questions", {}).get("total"):
        failures.append(f"{source}: summary records zero questions")

    # The exposition must round-trip through the repo's own parser.
    text = obs.render_snapshot(snapshot)
    try:
        parsed = obs.parse_prometheus_text(text)
    except ValueError as exc:
        return failures + [f"{source}: exposition does not parse: {exc}"]
    for family in REQUIRED_FAMILIES:
        if family in metrics and family not in parsed:
            failures.append(f"{source}: {family!r} absent from exposition")
    return failures


def validate_file(path: str) -> list:
    payload = obs.read_snapshot(path)
    failures = check_snapshot(payload.get("metrics", {}), path)
    failures += check_stats_exposition(path)
    return failures


def check_stats_exposition(path: str) -> list:
    """``repro stats --format prometheus`` must emit parseable exposition.

    Drives the real CLI handler (captured stdout), then round-trips the text
    through :func:`repro.obs.parse_prometheus_text` — covering the
    snapshot→CLI→exposition→parser loop, not just the in-process renderer.
    """
    import contextlib
    import io

    from repro.cli import main as repro_main

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        exit_code = repro_main(
            ["stats", "--metrics", path, "--format", "prometheus"]
        )
    if exit_code != 0:
        return [f"{path}: repro stats --format prometheus exited {exit_code}"]
    text = stdout.getvalue()
    try:
        parsed = obs.parse_prometheus_text(text)
    except ValueError as exc:
        return [f"{path}: repro stats exposition does not parse: {exc}"]
    if not parsed:
        return [f"{path}: repro stats exposition parsed to zero families"]
    print(f"repro stats exposition: {len(parsed)} families parse back")
    return []


def run_session() -> list:
    registry = obs.enable()
    try:
        engine = DarwinEngine.from_config(SPEC)
        result = engine.run()
        print(f"instrumented run: {result.queries_used} questions, "
              f"{len(result.rule_set)} rules")
        failures = check_snapshot(registry.snapshot(), "live registry")
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "metrics.json"
            obs.write_snapshot(out)
            failures += validate_file(str(out))
    finally:
        obs.disable()

    # Telemetry off: the same session must record nothing, anywhere.
    disabled = DarwinEngine.from_config(SPEC).run()
    print(f"telemetry-off run: {disabled.queries_used} questions")
    if obs.get_registry().snapshot() != {"enabled": False, "metrics": {}}:
        failures.append("NullRegistry recorded series with telemetry off")
    if obs.get_tracer().spans():
        failures.append("NullTracer retained spans with telemetry off")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="validate this --metrics-out file instead of "
                             "running a session")
    args = parser.parse_args()
    failures = (
        validate_file(args.snapshot) if args.snapshot else run_session()
    )
    if failures:
        print("obs smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("obs smoke passed: snapshot complete, exposition parses, "
          "disabled path records nothing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
