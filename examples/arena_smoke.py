"""Arena round-trip smoke test: the mmap coverage backend must be invisible.

Builds an arena-backed engine, checkpoints it mid-run, resumes from the
checkpoint (which reattaches the memory-mapped arena by reference and
verifies its content digest), and diffs the completed history against the
same run on the plain in-memory backend. Exits non-zero on any divergence —
CI runs this to guard the "arena is a pure storage swap" guarantee.
"""

from __future__ import annotations

import copy
import sys
import tempfile
from pathlib import Path

from repro import DarwinEngine

SPEC = {
    "dataset": {"name": "directions", "num_sentences": 500, "seed": 3,
                "parse_trees": False},
    "config": {"budget": 16, "traversal": "hybrid", "num_candidates": 400,
               "grammars": ["tokensregex"], "oracle": "ground_truth",
               "classifier": {"model": "logistic", "epochs": 12}},
    "seeds": {"rule_texts": ["best way to get to"]},
}


def main() -> int:
    in_memory = DarwinEngine.from_config(SPEC).run()
    print(f"memory backend: {in_memory.queries_used} questions, "
          f"{len(in_memory.rule_set)} rules, recall {in_memory.final_recall:.3f}")

    with tempfile.TemporaryDirectory() as tmp:
        spec = copy.deepcopy(SPEC)
        spec["config"]["index"] = {
            "coverage_backend": "arena",
            "arena_path": str(Path(tmp) / "arena_smoke.arena"),
            "bitset_cache_bytes": 1 << 20,
        }
        checkpoint = str(Path(tmp) / "arena_smoke.npz")

        interrupted = DarwinEngine.from_config(spec)
        backend = interrupted.darwin.index.store.backend
        if backend != "arena":
            print(f"FAIL: expected arena backend, got {backend!r}")
            return 1
        interrupted.run(budget=8)
        interrupted.save(checkpoint)
        print(f"arena engine checkpointed after "
              f"{interrupted.questions_asked} questions "
              f"(arena: {interrupted.darwin.index.store.arena.path})")

        resumed = DarwinEngine.load(checkpoint)
        if resumed.darwin.index.store.backend != "arena":
            print("FAIL: resumed engine lost the arena backend")
            return 1
        arena_result = resumed.run(budget=16)
    print(f"arena resumed:  {arena_result.queries_used} questions, "
          f"{len(arena_result.rule_set)} rules, "
          f"recall {arena_result.final_recall:.3f}")

    if arena_result.history != in_memory.history:
        for memory_rec, arena_rec in zip(in_memory.history, arena_result.history):
            marker = "  " if memory_rec == arena_rec else "!!"
            print(f"{marker} q{memory_rec.question_number}: "
                  f"{memory_rec.rule!r} vs {arena_rec.rule!r}")
        print("FAIL: arena-backed history diverged from the in-memory backend")
        return 1
    print("OK: arena-backed checkpoint/resume history is identical to the "
          "in-memory backend")
    return 0


if __name__ == "__main__":
    sys.exit(main())
