"""Quickstart: discover labeling rules for a hotel-concierge intent classifier.

This reproduces the paper's running example (Example 1): given a corpus of
guest questions and a single seed rule, Darwin interactively discovers a set
of precise rules whose union covers most questions asking for directions or
transportation, then reports the weak labels they imply.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Darwin, DarwinConfig, GroundTruthOracle
from repro.datasets import load_dataset


def main() -> None:
    # 1. A labeled corpus (ground truth is used only to simulate the oracle).
    corpus = load_dataset("directions", num_sentences=2000, seed=7)
    print(f"corpus: {len(corpus)} sentences, "
          f"{100 * corpus.positive_fraction():.1f}% positive")

    # 2. Configure and build Darwin. The corpus is indexed once; the benefit
    #    classifier and candidate hierarchy are (re)built during the run.
    config = DarwinConfig(budget=60, num_candidates=1000)
    darwin = Darwin(corpus, config=config)

    # 3. The oracle: answers YES when a rule's coverage is >= 80% positive,
    #    exactly how the paper simulates annotators.
    oracle = GroundTruthOracle(corpus, precision_threshold=0.8)

    # 4. Run the interactive loop from a single seed rule.
    result = darwin.run(oracle, seed_rule_texts=["best way to get to"])

    print(f"\nasked {result.queries_used} questions, "
          f"accepted {len(result.rule_set)} rules")
    print(f"coverage (recall over positives): {result.final_recall:.2f}")
    print(f"benefit-classifier F1:            {result.final_f1:.2f}")

    print("\ndiscovered rules:")
    for rule in result.rule_set.rules:
        print(f"  - {rule.render()!r:40s} covers {rule.coverage_size} sentences")

    print("\ncoverage after each question:")
    curve = result.recall_curve()
    for question in range(9, len(curve), 10):
        print(f"  after {question + 1:3d} questions: {curve[question]:.2f}")

    # 5. The union coverage P is the weak-label set you would train on.
    weak_positive_ids = sorted(result.covered_ids)[:5]
    print("\nsample weakly-labeled positives:")
    for sentence_id in weak_positive_ids:
        print(f"  [{sentence_id}] {corpus[sentence_id].text}")


if __name__ == "__main__":
    main()
