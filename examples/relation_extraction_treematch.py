"""Relation extraction with the TreeMatch grammar and a Snorkel-style pipeline.

This example exercises the parts of Darwin beyond simple phrase rules:

1. the corpus is the cause-effect relation-extraction task,
2. Darwin searches over *two* grammars at once — TokensRegex phrases and
   TreeMatch patterns over dependency parse trees (Definition 3),
3. the discovered rules are handed to the generative label model (the role
   Snorkel plays in the paper's Table 2) and an end classifier is trained on
   the de-noised labels.

Run with::

    python examples/relation_extraction_treematch.py
"""

from __future__ import annotations

from repro import Darwin, DarwinConfig, GroundTruthOracle
from repro.config import ClassifierConfig
from repro.datasets import load_dataset
from repro.grammars import TokensRegexGrammar, TreeMatchGrammar
from repro.labeling import LabelMatrix, WeakSupervisionPipeline


def main() -> None:
    # Dependency trees are required by the TreeMatch grammar.
    corpus = load_dataset("cause-effect", num_sentences=1500, seed=3, parse_trees=True)
    print(f"cause-effect corpus: {len(corpus)} sentences, "
          f"{100 * corpus.positive_fraction():.1f}% positive")

    grammars = [
        TokensRegexGrammar(max_phrase_len=4),
        TreeMatchGrammar(max_pattern_size=3),
    ]
    config = DarwinConfig(
        budget=60,
        num_candidates=1200,
        max_sketch_depth=6,
        classifier=ClassifierConfig(epochs=40),
    )
    darwin = Darwin(corpus, grammars=grammars, config=config)
    oracle = GroundTruthOracle(corpus)

    result = darwin.run(oracle, seed_rule_texts=["was caused by"])
    print(f"\nasked {result.queries_used} questions, "
          f"accepted {len(result.rule_set)} rules, "
          f"coverage {result.final_recall:.2f}")

    print("\ndiscovered rules by grammar:")
    for rule in result.rule_set.rules:
        print(f"  [{rule.grammar.name:11s}] {rule.render()!r} "
              f"covers {rule.coverage_size}")

    # ----------------------------------------------------------- label model
    matrix = LabelMatrix.from_rule_set(result.rule_set, corpus)
    print("\nlabel matrix summary:", matrix.summary())

    pipeline = WeakSupervisionPipeline(corpus, featurizer=darwin.featurizer)
    direct = pipeline.train_end_classifier(result.rule_set, use_label_model=False)
    denoised = pipeline.train_end_classifier(result.rule_set, use_label_model=True)
    print(f"\nend classifier trained on raw rule labels:      F1 = {direct.f1:.2f}")
    print(f"end classifier trained on de-noised labels:      F1 = {denoised.f1:.2f}")
    print("(Table 2's observation: with precise rules, de-noising changes little)")


if __name__ == "__main__":
    main()
