"""Resume smoke test: checkpoint/resume must replay question-for-question.

Runs 10 questions, checkpoints, resumes for 10 more, and diffs the resulting
history against 20 questions asked straight through. Exits non-zero on any
mismatch — CI runs this to guard the engine's replay guarantee.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import DarwinEngine

SPEC = {
    "dataset": {"name": "directions", "num_sentences": 500, "seed": 3,
                "parse_trees": False},
    "config": {"budget": 20, "traversal": "hybrid", "num_candidates": 400,
               "grammars": ["tokensregex"], "oracle": "ground_truth",
               "classifier": {"model": "logistic", "epochs": 12}},
    "seeds": {"rule_texts": ["best way to get to"]},
}


def main() -> int:
    straight = DarwinEngine.from_config(SPEC).run()
    print(f"straight run: {straight.queries_used} questions, "
          f"{len(straight.rule_set)} rules, recall {straight.final_recall:.3f}")

    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "resume_smoke.npz")
        interrupted = DarwinEngine.from_config(SPEC)
        interrupted.run(budget=10)
        interrupted.save(path)
        print(f"checkpointed after {interrupted.questions_asked} questions")

        resumed_engine = DarwinEngine.load(path)
        resumed = resumed_engine.run(budget=20)
    print(f"resumed run:  {resumed.queries_used} questions, "
          f"{len(resumed.rule_set)} rules, recall {resumed.final_recall:.3f}")

    if resumed.history != straight.history:
        for straight_rec, resumed_rec in zip(straight.history, resumed.history):
            marker = "  " if straight_rec == resumed_rec else "!!"
            print(f"{marker} q{straight_rec.question_number}: "
                  f"{straight_rec.rule!r} vs {resumed_rec.rule!r}")
        print("FAIL: resumed history diverged from the straight run")
        return 1
    if resumed.rule_set.describe() != straight.rule_set.describe():
        print("FAIL: accepted rule sets differ")
        return 1
    print("OK: resume replayed question-for-question identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
