"""End-to-end smoke test of the serving fleet (the CI ``fleet-smoke`` job).

Boots ``repro serve-http --workers 2`` as a real subprocess on an ephemeral
port — a supervisor with two worker processes behind the HTTP gateway —
and drives it over the wire with nothing but ``urllib``:

1. **topology** — ``/healthz`` reports the fleet backend with both workers
   alive and every tenant placed on exactly one of them,
2. **session flow** — propose → answer cycles commit against workers
   reached over the supervisor's pipe RPC,
3. **migration** — ``POST /tenants/{id}/migrate`` moves a tenant to the
   other worker mid-session and the tenant keeps answering afterwards,
4. **crash recovery** — SIGKILL the worker now hosting the migrated
   tenant; the supervisor respawns it (new pid in ``/healthz``) and the
   tenant's next propose/answer round succeeds,
5. **merged metrics** — ``GET /metrics`` is one valid exposition carrying
   series from both workers, distinguished by the ``worker`` label,
6. **graceful drain** — SIGTERM writes a final checkpoint per tenant and
   exits 0.

Run with::

    PYTHONPATH=src python examples/fleet_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs import parse_prometheus_text  # noqa: E402

failures: List[str] = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def request(
    base: str,
    method: str,
    path: str,
    payload: Optional[Dict[str, object]] = None,
    timeout: float = 120.0,
) -> Tuple[int, Dict[str, object]]:
    req = urllib.request.Request(
        base + path,
        method=method,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def placement(base: str) -> Dict[str, Dict[str, object]]:
    """tenant id -> its worker's status row, from /healthz."""
    _, body = request(base, "GET", "/healthz")
    return {
        tenant: worker
        for worker in body["workers"]
        for tenant in worker["tenants"]
    }


def commit_round(base: str, tenant: str) -> bool:
    """One propose → answer(is_useful=True) cycle; True when it committed."""
    status, body = request(
        base, "POST", f"/tenants/{tenant}/propose", {"annotator_id": 0}
    )
    if status != 200 or not body.get("assignment"):
        return False
    status, body = request(
        base, "POST", f"/tenants/{tenant}/answer",
        {"ticket_id": body["assignment"]["ticket_id"], "annotator_id": 0,
         "is_useful": True},
    )
    return status == 200 and bool(body.get("committed"))


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="fleet-smoke-")
    ready_file = os.path.join(tmp, "ready.json")
    checkpoint_dir = os.path.join(tmp, "ckpts")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-http",
         "--dataset", "directions", "--num-sentences", "600",
         "--seed", "11", "--workers", "2", "--tenants", "2",
         "--budget", "20", "--epochs", "10", "--port", "0",
         "--allow-debug-ops", "--ready-file", ready_file,
         "--checkpoint-dir", checkpoint_dir],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        print("== boot ==")
        for _ in range(900):
            if os.path.exists(ready_file):
                break
            if proc.poll() is not None:
                print(proc.stderr.read(), file=sys.stderr)
                check(False, "serve-http exited before becoming ready")
                return 1
            time.sleep(0.2)
        check(os.path.exists(ready_file), "ready file written")
        ready = json.load(open(ready_file))
        base = ready["url"]
        tenants = ready["tenants"]
        check(ready.get("workers") == 2, "ready file reports 2 workers")
        check(len(tenants) == 2, f"2 tenants spawned ({tenants})")

        print("== topology ==")
        status, body = request(base, "GET", "/healthz")
        check(status == 200 and body.get("backend") == "fleet",
              f"healthz reports the fleet backend (got {body.get('backend')})")
        workers = body.get("workers", [])
        check(len(workers) == 2 and all(w["alive"] for w in workers),
              "both workers alive")
        placed = placement(base)
        check(sorted(placed) == sorted(tenants),
              "every tenant placed on exactly one worker")

        print("== session flow ==")
        committed = sum(commit_round(base, tenants[0]) for _ in range(3))
        check(committed >= 3,
              f"3 propose/answer cycles committed over RPC ({committed})")

        print("== migration ==")
        source = placed[tenants[0]]["worker"]
        status, body = request(
            base, "POST", f"/tenants/{tenants[0]}/migrate", {}
        )
        check(status == 200, f"migrate returns 200 (got {status}: {body})")
        check(body.get("from") == source and body.get("to") is not None
              and body["to"] != source,
              f"tenant moved off worker {source} (got {body})")
        placed = placement(base)
        check(placed[tenants[0]]["worker"] == body.get("to"),
              "healthz shows the new placement")
        check(commit_round(base, tenants[0]),
              "migrated tenant commits its next answer")

        print("== crash recovery ==")
        victim = placed[tenants[0]]
        old_pid = victim["pid"]
        os.kill(int(old_pid), signal.SIGKILL)
        check(commit_round(base, tenants[0]),
              "next propose/answer round succeeds after SIGKILL "
              "(supervisor respawned the worker)")
        placed = placement(base)
        survivor = placed[tenants[0]]
        check(survivor["alive"] and survivor["pid"] != old_pid,
              f"worker {victim['worker']} respawned with a new pid "
              f"({old_pid} -> {survivor['pid']})")

        print("== merged metrics ==")
        with urllib.request.urlopen(base + "/metrics", timeout=60) as resp:
            exposition = resp.read().decode("utf-8")
        families = parse_prometheus_text(exposition)
        worker_labels = {
            dict(labels).get("worker")
            for family in families.values()
            for (_, labels) in family["samples"]
        }
        check({"0", "1"} <= worker_labels,
              f"metrics carry series from both workers "
              f"(worker labels {sorted(label for label in worker_labels if label)})")

        print("== graceful drain (SIGTERM) ==")
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=180)
        check(proc.returncode == 0,
              f"serve-http exited 0 after SIGTERM (got {proc.returncode})")
        if proc.returncode != 0:
            print(err, file=sys.stderr)
        for tenant in tenants:
            final = os.path.join(checkpoint_dir, f"{tenant}-final.npz")
            check(os.path.exists(final),
                  f"final drain checkpoint written for {tenant}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    if failures:
        print(f"\nfleet smoke FAILED ({len(failures)} checks):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nfleet smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
