"""End-to-end smoke test of the HTTP gateway (the CI ``gateway-smoke`` job).

Boots ``repro serve-http`` as a real subprocess on an ephemeral port and
drives it over the wire with nothing but ``urllib``:

1. **session flow** — bearer-authenticated propose → answer → checkpoint
   against a small built corpus, including the 401/403/404/400/409 error
   envelopes,
2. **deterministic backpressure** — with ``--queue-depth 1`` and the debug
   sleep op, one request occupies the tenant worker and a second fills the
   single queue slot, so a third *must* come back 429 with ``Retry-After``,
3. **metrics round-trip** — ``GET /metrics`` parses with the repo's own
   ``parse_prometheus_text`` and carries the gateway request/queue families,
4. **graceful drain** — SIGTERM makes the process stop admitting (503),
   finish in-flight work, write final checkpoints + a metrics snapshot, and
   exit 0; the checkpoint is then resumed in *this* process and driven a
   few questions further, proving the drain state is a real resume point.

Run with::

    PYTHONPATH=src python examples/gateway_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs import parse_prometheus_text  # noqa: E402

TOKEN = "smoke-secret-token"
WRONG_TENANT_TOKEN = "other-tenant-token"

failures: List[str] = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def request(
    base: str,
    method: str,
    path: str,
    payload: Optional[Dict[str, object]] = None,
    token: Optional[str] = TOKEN,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, str], Dict[str, object]]:
    req = urllib.request.Request(
        base + path,
        method=method,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    if token is not None:
        req.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="gateway-smoke-")
    ready_file = os.path.join(tmp, "ready.json")
    tokens_file = os.path.join(tmp, "tokens.json")
    checkpoint_dir = os.path.join(tmp, "ckpts")
    metrics_file = os.path.join(tmp, "final-metrics.json")
    with open(tokens_file, "w", encoding="utf-8") as handle:
        json.dump({TOKEN: "*", WRONG_TENANT_TOKEN: "tenant-does-not-exist"},
                  handle)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-http",
         "--dataset", "directions", "--num-sentences", "600",
         "--tenants", "1", "--budget", "20", "--seed", "11",
         "--epochs", "10", "--port", "0", "--queue-depth", "1",
         "--allow-debug-ops", "--auth-tokens", tokens_file,
         "--ready-file", ready_file, "--checkpoint-dir", checkpoint_dir,
         "--metrics-out", metrics_file],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        print("== boot ==")
        for _ in range(600):
            if os.path.exists(ready_file):
                break
            if proc.poll() is not None:
                print(proc.stderr.read(), file=sys.stderr)
                check(False, "serve-http exited before becoming ready")
                return 1
            time.sleep(0.2)
        check(os.path.exists(ready_file), "ready file written")
        ready = json.load(open(ready_file))
        base = ready["url"]
        tenant = ready["tenants"][0]
        print(f"  gateway at {base}, tenant {tenant!r}")

        print("== auth ==")
        status, _, body = request(base, "POST", f"/tenants/{tenant}/propose",
                                  {"annotator_id": 0}, token=None)
        check(status == 401 and body["error"]["status"] == 401,
              f"missing token -> 401 envelope (got {status})")
        status, _, _ = request(base, "POST", f"/tenants/{tenant}/propose",
                               {"annotator_id": 0}, token="nonsense")
        check(status == 401, f"unknown token -> 401 (got {status})")
        status, _, _ = request(base, "POST", f"/tenants/{tenant}/propose",
                               {"annotator_id": 0}, token=WRONG_TENANT_TOKEN)
        check(status == 403, f"unentitled token -> 403 (got {status})")

        print("== session flow ==")
        committed = 0
        record = None
        for _ in range(3):
            status, _, body = request(base, "POST",
                                      f"/tenants/{tenant}/propose",
                                      {"annotator_id": 0})
            if status != 200 or not body.get("assignment"):
                break
            assignment = body["assignment"]
            status, _, body = request(
                base, "POST", f"/tenants/{tenant}/answer",
                {"ticket_id": assignment["ticket_id"], "annotator_id": 0,
                 "is_useful": True})
            if status == 200 and body.get("committed"):
                committed = body["questions_committed"]
                record = body["record"]
        check(committed >= 3, f"3 propose/answer cycles committed ({committed})")
        check(bool(record) and "rule" in record and "recall" in record,
              "committed answer returns the query record")
        status, _, body = request(base, "POST", f"/tenants/{tenant}/checkpoint",
                                  {"name": "mid-session"})
        check(status == 200 and os.path.exists(body.get("path", "")),
              "client-requested checkpoint written")

        print("== error envelopes ==")
        status, _, body = request(base, "POST", "/tenants/nope/propose",
                                  {"annotator_id": 0})
        check(status == 404, f"unknown tenant -> 404 (got {status})")
        status, _, body = request(base, "POST", f"/tenants/{tenant}/propose",
                                  {"annotator_id": "zero"})
        check(status == 400 and body["error"]["type"] == "BadRequestError",
              f"malformed body -> 400 envelope (got {status})")
        status, _, body = request(base, "POST", f"/tenants/{tenant}/answer",
                                  {"ticket_id": 999999, "annotator_id": 0,
                                   "is_useful": True})
        check(status == 409 and body["error"]["type"] == "OracleError",
              f"vote on closed ticket -> 409 OracleError (got {status})")

        print("== deterministic 429 (queue depth 1) ==")
        # One request occupies the single worker, a second fills the single
        # queue slot; submitted in that order, a third can only be refused.
        stalls = [
            threading.Thread(
                target=request,
                args=(base, "POST", f"/tenants/{tenant}/debug/sleep",
                      {"seconds": 1.5}),
                daemon=True)
            for _ in range(2)
        ]
        stalls[0].start()
        time.sleep(0.3)
        stalls[1].start()
        time.sleep(0.3)
        status, headers, body = request(base, "POST",
                                        f"/tenants/{tenant}/propose",
                                        {"annotator_id": 0})
        check(status == 429, f"full queue -> 429 (got {status})")
        check(headers.get("Retry-After") is not None,
              f"429 carries Retry-After (got {headers.get('Retry-After')!r})")
        check(body.get("error", {}).get("type") == "QueueFullError",
              "429 body is the QueueFullError envelope")
        for stall in stalls:
            stall.join(timeout=30)

        print("== /metrics round-trip ==")
        with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
            exposition = response.read().decode("utf-8")
        families = parse_prometheus_text(exposition)
        for family in ("gateway_requests_total", "gateway_request_seconds",
                       "gateway_rejected_total", "gateway_queue_depth"):
            check(family in families, f"exposition carries {family}")
        samples = families.get("gateway_rejected_total", {}).get("samples", {})
        rejected = sum(
            value for (_, labels), value in samples.items()
            if ("reason", "queue_full") in labels
        )
        check(rejected >= 1, f"queue_full rejections counted ({rejected})")

        print("== graceful drain (SIGTERM) ==")
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        check(proc.returncode == 0,
              f"serve-http exited 0 after SIGTERM (got {proc.returncode})")
        if proc.returncode != 0:
            print(err, file=sys.stderr)
        final_ckpt = os.path.join(checkpoint_dir, f"{tenant}-final.npz")
        check(os.path.exists(final_ckpt), "final drain checkpoint written")
        check(os.path.exists(metrics_file), "final metrics snapshot written")

        print("== resume the drain checkpoint ==")
        from repro.engine.engine import DarwinEngine

        engine = DarwinEngine.load(final_ckpt)
        check(engine.questions_asked >= committed,
              f"checkpoint holds the committed questions "
              f"({engine.questions_asked} >= {committed})")
        result = engine.run(budget=engine.questions_asked + 2)
        check(result.queries_used == engine.questions_asked,
              f"resumed engine answered 2 more questions "
              f"({result.queries_used} total)")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    if failures:
        print(f"\ngateway smoke FAILED ({len(failures)} checks):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ngateway smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
