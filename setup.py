"""Setuptools shim.

The offline environment ships setuptools 65.x without the ``wheel`` package,
so PEP 660 editable installs (which require ``bdist_wheel``) are unavailable.
Keeping a ``setup.py`` and omitting the ``[build-system]`` table from
``pyproject.toml`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` code path, which works offline. All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
