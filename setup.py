"""Package metadata and the ``repro`` console entry point.

The offline environment ships setuptools 65.x without the ``wheel`` package,
so PEP 660 editable installs (which require ``bdist_wheel``) are unavailable.
Keeping the metadata in ``setup.py`` (and omitting a ``[build-system]``
table) lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
code path, which works offline and still installs the ``repro`` console
script.
"""

import os
import re

from setuptools import find_packages, setup


def _read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    init_path = os.path.join(here, "src", "repro", "__init__.py")
    with open(init_path, encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.M)
    if not match:
        raise RuntimeError("could not find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-darwin",
    version=_read_version(),
    description=(
        "Reproduction of 'Adaptive Rule Discovery for Labeling Text Data' "
        "(Darwin), with a declarative engine API and checkpoint/resume"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
