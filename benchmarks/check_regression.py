"""CI perf-regression gate: compare a fresh bench run against committed numbers.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_index_scale.json --current /tmp/BENCH_index_scale.json

The committed ``BENCH_*.json`` files are the thresholds: for each benchmark a
small table below names its **headline metrics** — the numbers the PRs that
introduced them claimed — and the gate fails when any of them regresses more
than ``--tolerance`` (default 25%) against the committed value.

All gated metrics are deliberately *machine-relative* (speedups and ratios
between two arms measured in the same run, plus exact-equivalence booleans),
never absolute milliseconds: a CI runner is slower than the machine that
produced the committed file, but it is slower for both arms, so the ratios
hold. Entries are matched by ``num_sentences`` where a benchmark sweeps
sizes; sizes present in only one file are reported and skipped, so the CI
smoke run can gate a subset of the committed sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

# metric path, direction ("higher" = bigger is better, "lower" = smaller is
# better, "true" = exact boolean that must hold in the current run).
Headline = Tuple[str, str]

HEADLINES: Dict[str, Dict[str, List[Headline]]] = {
    "bench_index_scale": {
        "per_size": [
            ("top_by_overlap.speedup", "higher"),
            ("per_question_loop.speedup", "higher"),
        ],
        "top_level": [],
    },
    "bench_hierarchy": {
        "per_size": [
            ("cleanup.speedup", "higher"),
            ("cleanup.survivors_match", "true"),
            ("benefit_sweep.speedup", "higher"),
            ("benefit_sweep.counts_match", "true"),
        ],
        "top_level": [],
    },
    "bench_crowd": {
        "per_size": [],
        "top_level": [
            ("throughput.speedup", "higher"),
            ("equivalence.rule_set_match", "true"),
            ("equivalence.history_match", "true"),
        ],
    },
    "bench_arena": {
        "per_size": [
            ("headline.per_question_ratio", "lower"),
            ("headline.coverage_resident_ratio", "lower"),
            ("headline.history_match", "true"),
        ],
        "top_level": [],
    },
    "bench_tenants": {
        "per_size": [
            ("headline.shared_resident_ratio", "lower"),
            ("headline.history_match", "true"),
        ],
        "top_level": [],
    },
    "bench_gateway": {
        "per_size": [],
        "top_level": [
            ("knee.speedup", "higher"),
            ("knee.p95_bounded", "true"),
            ("overload.saw_backpressure", "true"),
            ("overload.graceful", "true"),
        ],
    },
    "bench_fleet": {
        "per_size": [],
        "top_level": [
            ("headline.history_match", "true"),
            ("headline.rss_beats_isolated", "true"),
            ("headline.speedup_ok", "true"),
            ("headline.rss_vs_isolated_ratio", "lower"),
        ],
    },
}


def _lookup(record: Dict[str, Any], dotted: str) -> Optional[Any]:
    value: Any = record
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def _check_metric(
    label: str,
    path: str,
    direction: str,
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: float,
    failures: List[str],
) -> None:
    base_value = _lookup(baseline, path)
    current_value = _lookup(current, path)
    if current_value is None:
        failures.append(f"{label} {path}: missing from the current run")
        return
    if direction == "true":
        status = "ok" if current_value is True else "FAIL"
        print(f"  {label} {path}: {current_value} (must be true) [{status}]")
        if current_value is not True:
            failures.append(f"{label} {path}: expected true, got {current_value!r}")
        return
    if base_value is None:
        print(f"  {label} {path}: {current_value} (no baseline, informational)")
        return
    base_value = float(base_value)
    current_value = float(current_value)
    if direction == "higher":
        threshold = base_value * (1.0 - tolerance)
        ok = current_value >= threshold
        comparison = ">="
    else:
        threshold = base_value * (1.0 + tolerance)
        ok = current_value <= threshold
        comparison = "<="
    status = "ok" if ok else "FAIL"
    print(
        f"  {label} {path}: {current_value:.4g} (baseline {base_value:.4g}, "
        f"must be {comparison} {threshold:.4g}) [{status}]"
    )
    if not ok:
        failures.append(
            f"{label} {path}: {current_value:.4g} regressed past "
            f"{comparison} {threshold:.4g} (baseline {base_value:.4g}, "
            f"tolerance {tolerance:.0%})"
        )


def _diff_metrics(label: str, baseline: Dict[str, Any], current: Dict[str, Any]) -> None:
    """Informational tail-latency diff of two ``metrics`` blocks.

    Benchmarks run with ``--obs`` embed per-phase p50/p95 (see
    ``bench_utils.metrics_block``). Absolute latencies are machine-dependent,
    so this prints the deltas for eyeballing and never fails the gate; it is
    silent when either side lacks a block (e.g. a metrics-disabled gate run).
    """
    base_block = baseline.get("metrics")
    current_block = current.get("metrics")
    if not isinstance(base_block, dict) or not isinstance(current_block, dict):
        return
    shared = sorted(set(base_block) & set(current_block))
    if shared:
        print(f"  {label} tail latency (informational, not gated):")
    for phase in shared:
        base_entry, current_entry = base_block[phase], current_block[phase]
        parts = []
        for quantile in ("p50_ms", "p95_ms"):
            base_q = float(base_entry.get(quantile, 0.0))
            current_q = float(current_entry.get(quantile, 0.0))
            ratio = f" ({current_q / base_q:.2f}x)" if base_q > 0 else ""
            parts.append(f"{quantile} {current_q:.3g} vs {base_q:.3g}{ratio}")
        print(f"    {phase}: " + ", ".join(parts))


def check(baseline: Dict[str, Any], current: Dict[str, Any], tolerance: float) -> List[str]:
    """Compare two bench payloads; returns the list of failure messages."""
    name = baseline.get("benchmark")
    if current.get("benchmark") != name:
        return [
            f"benchmark mismatch: baseline is {name!r}, "
            f"current is {current.get('benchmark')!r}"
        ]
    spec = HEADLINES.get(str(name))
    if spec is None:
        return [f"no headline metrics registered for benchmark {name!r}"]
    failures: List[str] = []
    for path, direction in spec["top_level"]:
        _check_metric(str(name), path, direction, baseline, current, tolerance, failures)
    if spec["per_size"]:
        base_by_size = {
            entry.get("num_sentences"): entry
            for entry in baseline.get("results", [])
        }
        current_by_size = {
            entry.get("num_sentences"): entry
            for entry in current.get("results", [])
        }
        shared = sorted(set(base_by_size) & set(current_by_size))
        if not shared:
            return failures + [
                f"{name}: no common corpus sizes between baseline "
                f"({sorted(base_by_size)}) and current ({sorted(current_by_size)})"
            ]
        skipped = sorted(set(base_by_size) - set(current_by_size))
        if skipped:
            print(f"  {name}: baseline sizes {skipped} not in this run, skipped")
        for size in shared:
            for path, direction in spec["per_size"]:
                _check_metric(
                    f"{name}[{size}]", path, direction,
                    base_by_size[size], current_by_size[size],
                    tolerance, failures,
                )
            _diff_metrics(
                f"{name}[{size}]", base_by_size[size], current_by_size[size]
            )
    else:
        _diff_metrics(str(name), baseline, current)
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_*.json threshold file")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly generated bench JSON to gate")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    args = parser.parse_args()

    try:
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read bench files: {exc}", file=sys.stderr)
        return 2

    print(f"perf gate: {args.current} vs committed {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    failures = check(baseline, current, args.tolerance)
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
