"""Section 4.5 annotator experiment: perfect oracle vs. simulated crowd."""

from __future__ import annotations

from repro.experiments.annotators import annotator_experiment

from bench_utils import extra_info_from, report_curves


def test_annotator_quality(benchmark, directions_setting, bench_budget):
    """Darwin under a perfect oracle, one noisy annotator, and a crowd of three."""
    result = benchmark.pedantic(
        annotator_experiment,
        kwargs={"setting": directions_setting, "budget": bench_budget,
                "flip_prob": 0.1, "num_annotators": 3},
        rounds=1, iterations=1,
    )
    report_curves(result, "Section 4.5 directions: oracle vs. human annotators")
    accepted = result.metadata["accepted_rules"]
    imprecise = result.metadata["imprecise_accepted_rules"]
    print("accepted rules per oracle:", accepted)
    print("imprecise acceptances per oracle:", imprecise)
    benchmark.extra_info.update(extra_info_from(result))
    benchmark.extra_info["imprecise_accepted_rules"] = imprecise

    finals = result.final_values()
    # Paper shape: crowd answers (majority of 3, ~10% per-sentence error) keep
    # Darwin close to the perfect-oracle run, and false acceptances stay rare.
    assert finals["perfect oracle"] >= 0.6
    assert finals["crowd (majority of 3)"] >= finals["perfect oracle"] * 0.6
    assert imprecise["perfect oracle"] == 0
    assert imprecise["crowd (majority of 3)"] <= max(3, accepted["crowd (majority of 3)"] // 3)
