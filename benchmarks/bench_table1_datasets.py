"""Table 1: dataset statistics of the generated corpora."""

from __future__ import annotations

from repro.experiments.dataset_stats import format_table1, table1


def test_table1_dataset_statistics(benchmark, bench_scale):
    """Regenerate Table 1 and print generated-vs-paper statistics."""
    rows = benchmark.pedantic(
        table1, kwargs={"scale": bench_scale, "seed": 7}, rounds=1, iterations=1
    )
    print()
    print(format_table1(rows))
    benchmark.extra_info["datasets"] = {
        row["dataset"]: {
            "num_sentences": row["num_sentences"],
            "positive_fraction": round(float(row["positive_fraction"]), 4),
        }
        for row in rows
    }
    assert len(rows) == 5
    for row in rows:
        # The generated imbalance must track the paper's Table 1 ratios.
        assert abs(row["positive_fraction"] - row["paper_positive_fraction"]) < 0.02
