"""Figure 7: coverage vs. random seed-set size — Snuba vs. Darwin(HS)."""

from __future__ import annotations

import pytest

from repro.experiments.seed_size import seed_size_experiment

from bench_utils import extra_info_from, report_series_over

SEED_SIZES = (25, 50, 125, 250)


@pytest.mark.parametrize("dataset_fixture", ["directions_setting", "musicians_setting"])
def test_fig7_seed_size(benchmark, request, dataset_fixture, bench_budget):
    """Figure 7(a)/(b): fraction of positives identified vs. #seed sentences."""
    setting = request.getfixturevalue(dataset_fixture)
    result = benchmark.pedantic(
        seed_size_experiment,
        kwargs={"setting": setting, "seed_sizes": SEED_SIZES, "budget": bench_budget},
        rounds=1, iterations=1,
    )
    report_series_over(
        result, "#seed sentences", SEED_SIZES,
        title=f"Figure 7 ({setting.dataset}): coverage vs. seed size",
    )
    benchmark.extra_info.update(extra_info_from(result))

    darwin = result.series["Darwin(HS)"]
    snuba = result.series["Snuba"]
    # Paper shape: Darwin already finds the majority of positives with the
    # smallest seed set, while Snuba needs far more labeled data to catch up.
    assert darwin[0] >= 0.5
    assert darwin[0] > snuba[0]
