"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence

from repro import obs
from repro.evaluation.reporting import format_curve_table, format_table
from repro.evaluation.runner import ExperimentResult

BENCH_PHASE_HELP = "Wall-clock seconds per benchmark phase"


def bench_registry() -> obs.MetricsRegistry:
    """Install and return a fresh live registry for one benchmark arm.

    Benchmarks that want a ``metrics`` block in their ``BENCH_*.json`` call
    this *before* constructing engines (instruments resolve their registry at
    construction time), then hand the returned registry to
    :func:`metrics_block` once the arm finishes. Callers own the lifecycle:
    call :func:`repro.obs.disable` (or ``bench_registry()`` again for the
    next arm) so series never leak across measurements.
    """
    return obs.enable(registry=obs.MetricsRegistry(), tracer=obs.NullTracer())


@contextmanager
def timed_phase(phase: str, registry: Optional[object] = None) -> Iterator[None]:
    """Time a block into the shared ``bench_phase_seconds`` histogram.

    Under the default :class:`~repro.obs.NullRegistry` this costs two
    ``perf_counter`` calls and a no-op method — safe to leave in place for
    metrics-disabled runs.
    """
    active = registry if registry is not None else obs.get_registry()
    child = active.histogram(
        "bench_phase_seconds", BENCH_PHASE_HELP, labels=("phase",)
    ).labels(phase=phase)
    start = time.perf_counter()
    try:
        yield
    finally:
        child.observe(time.perf_counter() - start)


def metrics_block(registry: Optional[object] = None) -> Dict[str, Dict[str, float]]:
    """Per-phase tail-latency digest for a ``BENCH_*.json`` ``metrics`` block.

    Collapses every histogram family in the registry's snapshot into
    ``{"family{label=value}": {count, mean_ms, p50_ms, p95_ms}}`` so
    ``check_regression.py`` can diff tail latency between a fresh run and the
    committed baseline (informational — absolute latencies are
    machine-dependent, so they never gate).
    """
    active = registry if registry is not None else obs.get_registry()
    snapshot = active.snapshot()
    block: Dict[str, Dict[str, float]] = {}
    for name, family in sorted(snapshot.get("metrics", {}).items()):
        if family.get("kind") != "histogram":
            continue
        for entry in family.get("series", []):
            labels = entry.get("labels", {})
            suffix = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            key = f"{name}{{{suffix}}}" if suffix else name
            block[key] = {
                "count": float(entry.get("count", 0)),
                "mean_ms": round(1000.0 * float(entry.get("mean", 0.0)), 4),
                "p50_ms": round(1000.0 * float(entry.get("p50", 0.0)), 4),
                "p95_ms": round(1000.0 * float(entry.get("p95", 0.0)), 4),
            }
    return block


def report_curves(result: ExperimentResult, title: str, step: int = 10) -> None:
    """Print an experiment's curves in the layout the paper's figures use."""
    print()
    print(format_curve_table(result.series, step=step, title=title))
    finals = result.final_values()
    print("final values: " + ", ".join(f"{k}={v:.3f}" for k, v in finals.items()))


def report_series_over(result: ExperimentResult, x_label: str,
                       x_values: Sequence[object], title: str) -> None:
    """Print series measured over an explicit x-axis (seed sizes, epochs...)."""
    headers = [x_label] + list(result.series.keys())
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for series in result.series.values():
            row.append(series[index] if index < len(series) else "")
        rows.append(row)
    print()
    print(format_table(headers, rows, title=title))


def extra_info_from(result: ExperimentResult) -> Dict[str, object]:
    """Compact summary attached to pytest-benchmark's JSON output."""
    info: Dict[str, object] = {"experiment": result.name}
    for label, value in result.final_values().items():
        info[f"final::{label}"] = round(float(value), 4)
    return info
