"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.evaluation.reporting import format_curve_table, format_table
from repro.evaluation.runner import ExperimentResult


def report_curves(result: ExperimentResult, title: str, step: int = 10) -> None:
    """Print an experiment's curves in the layout the paper's figures use."""
    print()
    print(format_curve_table(result.series, step=step, title=title))
    finals = result.final_values()
    print("final values: " + ", ".join(f"{k}={v:.3f}" for k, v in finals.items()))


def report_series_over(result: ExperimentResult, x_label: str,
                       x_values: Sequence[object], title: str) -> None:
    """Print series measured over an explicit x-axis (seed sizes, epochs...)."""
    headers = [x_label] + list(result.series.keys())
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for series in result.series.values():
            row.append(series[index] if index < len(series) else "")
        rows.append(row)
    print()
    print(format_table(headers, rows, title=title))


def extra_info_from(result: ExperimentResult) -> Dict[str, object]:
    """Compact summary attached to pytest-benchmark's JSON output."""
    info: Dict[str, object] = {"experiment": result.name}
    for label, value in result.final_values().items():
        info[f"final::{label}"] = round(float(value), 4)
    return info
