"""Figure 10: coverage and F-score curves on the highly-imbalanced professions data."""

from __future__ import annotations

from repro.experiments.coverage_curves import coverage_experiment
from repro.experiments.fscore_curves import fscore_experiment

from bench_utils import extra_info_from, report_curves


def test_fig10a_professions_coverage(benchmark, professions_setting, bench_budget):
    """Figure 10(a): heuristic coverage on professions (LS vs US vs HS)."""
    result = benchmark.pedantic(
        coverage_experiment,
        kwargs={
            "setting": professions_setting,
            "budget": bench_budget,
            "methods": ("Darwin(HS)", "Darwin(US)", "Darwin(LS)"),
        },
        rounds=1, iterations=1,
    )
    report_curves(result, "Figure 10(a) professions: coverage vs. #questions")
    benchmark.extra_info.update(extra_info_from(result))
    assert result.final_values()["Darwin(HS)"] >= 0.5


def test_fig10b_professions_fscore(benchmark, professions_setting, bench_budget):
    """Figure 10(b): classifier F-score on professions (Darwin vs AL/KS/HighP)."""
    result = benchmark.pedantic(
        fscore_experiment,
        kwargs={"setting": professions_setting, "budget": bench_budget},
        rounds=1, iterations=1,
    )
    report_curves(result, "Figure 10(b) professions: F-score vs. #questions")
    benchmark.extra_info.update(extra_info_from(result))
    finals = result.final_values()
    # Paper shape: Darwin beats active learning. Note: on the *synthetic*
    # professions corpus the keyword-sampling baseline is stronger than in the
    # paper because the generated positives are concentrated around the ten
    # hint keywords (see EXPERIMENTS.md); we therefore only require Darwin to
    # stay in the same range rather than dominate KS here.
    assert finals["Darwin(HS)"] >= 0.5
    assert finals["Darwin(HS)"] >= finals["AL"] - 0.05
    assert finals["Darwin(HS)"] >= finals["KS"] - 0.3
