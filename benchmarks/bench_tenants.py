"""Multi-tenant serving benchmark (shared read-only arena PR).

Measures what the tenant-pool design claims:

* **correctness** — every tenant's question history is question-for-question
  identical to a solo engine with the same config (tenancy is a packaging
  change, never a behavioural one),
* **sublinear memory** — the shared substrate (read-only arena residency,
  CSR inverted map, feature cache) exists once per pool: its resident bytes
  at N tenants must stay below 1.3x the single-tenant pool (the acceptance
  bound, enforced here *and* relative-gated in CI via
  ``benchmarks/check_regression.py``), while per-tenant overlays stay small,
* **throughput** — committed answers/sec with every tenant's crowd
  multiplexed on one event loop.

Each arm runs in a forked child so ``ru_maxrss`` is per-arm. Results are
written to ``BENCH_tenants.json``; the CI ``perf-gate`` job re-runs the small
size against the committed file.

Run with::

    PYTHONPATH=src python benchmarks/bench_tenants.py [--sizes 5000 50000]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from bench_isolate import peak_rss_bytes, run_isolated

from repro.config import ClassifierConfig, CrowdConfig, DarwinConfig, IndexConfig
from repro.datasets import load_dataset
from repro.engine.engine import DarwinEngine
from repro.serving import TenantPool, serve

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_tenants.json"

SEED_RULE = "best way to get to"


def _config(budget: int, arena_path: Optional[str]) -> DarwinConfig:
    index = (
        IndexConfig(coverage_backend="arena", arena_path=arena_path)
        if arena_path is not None
        else IndexConfig()
    )
    return DarwinConfig(
        budget=budget,
        num_candidates=2000,
        min_coverage=2,
        classifier=ClassifierConfig(model="logistic", epochs=10, embedding_dim=30),
        index=index,
    )


def run_solo_arm(num_sentences: int, budget: int) -> Dict[str, object]:
    """A plain single-user engine (memory backend): the history oracle.

    Deliberately *not* a 1-tenant pool: tenant histories are compared against
    an engine with no pool machinery at all, so the equality also re-proves
    memory==arena parity end to end.
    """
    corpus = load_dataset(
        "directions", num_sentences=num_sentences, seed=7, parse_trees=False
    )
    engine = DarwinEngine(
        corpus,
        config=_config(budget, None),
        seeds={"rule_texts": [SEED_RULE]},
    )
    start = time.perf_counter()
    result = engine.run()
    return {
        "arm": "solo",
        "loop_seconds": round(time.perf_counter() - start, 4),
        "questions": result.queries_used,
        "history": [(rec.rule, rec.answer) for rec in result.history],
        "peak_rss_bytes": peak_rss_bytes(),
    }


def run_pool_arm(
    num_sentences: int, budget: int, tenants: int, arena_path: str
) -> Dict[str, object]:
    """A pool of ``tenants`` engines over one shared read-only arena."""
    corpus = load_dataset(
        "directions", num_sentences=num_sentences, seed=7, parse_trees=False
    )
    config = _config(budget, arena_path)
    crowd = CrowdConfig(
        num_annotators=2,
        redundancy=1,
        batch_size=1,  # sequentially consistent with the serial loop
        budget=budget,
        annotator_latency=0.0,
    )
    build_start = time.perf_counter()
    with TenantPool(corpus, config, seeds={"rule_texts": [SEED_RULE]}) as pool:
        build_seconds = time.perf_counter() - build_start
        report = serve(pool, num_tenants=tenants, crowd_config=crowd)
        memory = report.memory
        histories = {
            tenant_id: [
                (rec.rule, rec.answer)
                for rec in result.crowd.darwin_result.history
            ]
            for tenant_id, result in report.results.items()
        }
        cache = pool.featurizer.cache.stats()
    return {
        "arm": f"pool-{tenants}",
        "tenants": tenants,
        "build_seconds": round(build_seconds, 4),
        "serve_seconds": round(report.wall_seconds, 4),
        "questions_committed": report.questions_committed,
        "answers_per_sec": round(report.answers_per_sec, 2),
        "histories": histories,
        "shared_resident_bytes": int(memory["shared_resident_bytes"]),
        "tenant_resident_bytes": int(memory["tenant_resident_bytes"]),
        "arena_file_bytes": int(memory.get("arena_file_bytes", 0)),
        "feature_cache": cache,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def measure_scale(num_sentences: int, budget: int, tenants: int) -> Dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="bench-tenants-") as tmp:
        solo = run_isolated(run_solo_arm, num_sentences, budget)
        pool_one = run_isolated(
            run_pool_arm, num_sentences, budget, 1,
            os.path.join(tmp, "pool1.arena"),
        )
        pool_many = run_isolated(
            run_pool_arm, num_sentences, budget, tenants,
            os.path.join(tmp, f"pool{tenants}.arena"),
        )

    solo_history = solo.pop("history")
    histories = list(pool_one.pop("histories").values()) + list(
        pool_many.pop("histories").values()
    )
    history_match = all(history == solo_history for history in histories)
    shared_ratio = pool_many["shared_resident_bytes"] / max(
        pool_one["shared_resident_bytes"], 1
    )
    headline = {
        "history_match": history_match,
        "shared_resident_ratio": round(shared_ratio, 4),
        "rss_ratio": round(
            pool_many["peak_rss_bytes"] / max(pool_one["peak_rss_bytes"], 1), 3
        ),
        "tenant_overlay_bytes_each": int(
            pool_many["tenant_resident_bytes"] / max(pool_many["tenants"], 1)
        ),
        "answers_per_sec": pool_many["answers_per_sec"],
    }
    return {
        "num_sentences": num_sentences,
        "tenants": tenants,
        "solo": solo,
        "pool_one": pool_one,
        "pool_many": pool_many,
        "headline": headline,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[5000, 50000],
        help="corpus sizes (sentences); the acceptance claim is the 50k "
             "point, the 5k point doubles as the CI smoke size",
    )
    parser.add_argument("--tenants", type=int, default=16,
                        help="tenant engines in the many-tenant arm")
    parser.add_argument("--budget", type=int, default=12,
                        help="per-tenant committed-question budget")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH)
    args = parser.parse_args()

    results: List[Dict[str, object]] = []
    acceptance_ok = True
    for size in args.sizes:
        print(f"== {size} sentences, {args.tenants} tenants ==")
        entry = measure_scale(size, args.budget, args.tenants)
        results.append(entry)
        headline = entry["headline"]
        pool_many, pool_one = entry["pool_many"], entry["pool_one"]
        print(f"  histories identical to solo : {headline['history_match']}")
        print(f"  shared resident bytes       : "
              f"{pool_many['shared_resident_bytes']:,} B at {args.tenants} "
              f"tenants vs {pool_one['shared_resident_bytes']:,} B at 1 "
              f"({headline['shared_resident_ratio']}x, bound 1.3x)")
        print(f"  per-tenant overlay          : "
              f"{headline['tenant_overlay_bytes_each']:,} B")
        print(f"  peak RSS                    : "
              f"{pool_many['peak_rss_bytes'] / 1e6:.0f} MB vs "
              f"{pool_one['peak_rss_bytes'] / 1e6:.0f} MB "
              f"({headline['rss_ratio']}x for {args.tenants}x tenants)")
        print(f"  throughput                  : "
              f"{headline['answers_per_sec']:.1f} answers/s "
              f"({pool_many['serve_seconds']:.2f}s serve)")
        if not headline["history_match"]:
            acceptance_ok = False
            print("  ACCEPTANCE FAIL: tenant history diverged from solo")
        if headline["shared_resident_ratio"] >= 1.3:
            acceptance_ok = False
            print("  ACCEPTANCE FAIL: shared resident bytes grew >= 1.3x")

    payload = {
        "benchmark": "bench_tenants",
        "dataset": "directions",
        "tenants": args.tenants,
        "budget": args.budget,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0 if acceptance_ok else 1


if __name__ == "__main__":
    sys.exit(main())
