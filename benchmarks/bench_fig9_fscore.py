"""Figure 9(e-h): classifier F-score vs. #questions for Darwin(HS), AL, KS, HighP."""

from __future__ import annotations

import pytest

from repro.experiments.fscore_curves import fscore_experiment

from bench_utils import extra_info_from, report_curves

FIGURES = {
    "musicians_setting": "Figure 9(e) musicians",
    "cause_effect_setting": "Figure 9(f) cause-effect",
    "directions_setting": "Figure 9(g) directions",
    "tweets_setting": "Figure 9(h) food-tweets",
}


@pytest.mark.parametrize("dataset_fixture", sorted(FIGURES))
def test_fig9_classifier_fscore(benchmark, request, dataset_fixture, bench_budget):
    """F-score curves of the classifier trained with each technique's labels."""
    setting = request.getfixturevalue(dataset_fixture)
    result = benchmark.pedantic(
        fscore_experiment,
        kwargs={"setting": setting, "budget": bench_budget},
        rounds=1, iterations=1,
    )
    report_curves(result, f"{FIGURES[dataset_fixture]}: F-score vs. #questions")
    benchmark.extra_info.update(extra_info_from(result))

    finals = result.final_values()
    # Paper shape: Darwin(HS) dominates the instance-labeling baselines, whose
    # classifiers are trained on only a handful of labeled sentences.
    assert finals["Darwin(HS)"] >= 0.55
    assert finals["Darwin(HS)"] >= finals["AL"] - 0.05
    assert finals["Darwin(HS)"] >= finals["KS"] - 0.05
