"""Fork-isolation helpers shared by the memory-measuring benchmarks.

``bench_arena.py`` and ``bench_tenants.py`` both need each measurement arm to
run in its own forked child so ``ru_maxrss`` reflects that arm alone; this
module holds the one implementation of that protocol (fork + pipe, error
payloads surfaced to the parent, inline fallback for sandboxes without fork).
"""

from __future__ import annotations

import resource
import time
from typing import Callable, Dict

from repro.obs import get_registry


def peak_rss_bytes() -> int:
    """This process's peak resident set size (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _run_child(pipe, target: Callable[..., Dict[str, object]], args) -> None:
    try:
        pipe.send(target(*args))
    except BaseException as exc:  # surface the failure to the parent
        pipe.send({"error": f"{type(exc).__name__}: {exc}"})
    finally:
        pipe.close()


def run_isolated(target: Callable[..., Dict[str, object]], *args) -> Dict[str, object]:
    """Run ``target(*args)`` in a forked child; returns its payload dict.

    The payload gains an ``rss_isolated`` flag: True when the arm ran in its
    own child (clean RSS), False when no fork support existed and it ran
    inline. A child that dies without reporting (e.g. OOM-killed) raises —
    that IS the benchmark's answer for the arm; the workload is never
    silently re-run inline in the parent.

    Each arm's wall time lands in the parent registry's
    ``bench_phase_seconds{phase="isolated_<target>"}`` histogram (the child's
    own metrics die with the fork) and rides in the payload as
    ``wall_seconds``, so memory benchmarks get tail-latency series for free
    when observability is enabled.
    """
    observe = get_registry().histogram(
        "bench_phase_seconds", "Wall-clock seconds per benchmark phase",
        labels=("phase",),
    ).labels(phase=f"isolated_{target.__name__}")
    start = time.perf_counter()
    try:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        parent_end, child_end = context.Pipe(duplex=False)
        process = context.Process(target=_run_child, args=(child_end, target, args))
        process.start()
    except (ImportError, OSError, PermissionError):
        payload = target(*args)
        payload["rss_isolated"] = False
    else:
        child_end.close()
        try:
            payload = parent_end.recv()
        except EOFError:
            process.join()
            raise RuntimeError(
                f"benchmark arm {target.__name__}{args!r} crashed (exit code "
                f"{process.exitcode}); likely out of memory"
            ) from None
        process.join()
        payload["rss_isolated"] = True
    elapsed = time.perf_counter() - start
    observe.observe(elapsed)
    payload["wall_seconds"] = round(elapsed, 4)
    if "error" in payload:
        raise RuntimeError(f"benchmark arm failed: {payload['error']}")
    return payload
