"""Hierarchy/benefit kernel benchmark (interval-encoded node table PR).

Measures, at 10k / 50k synthetic sentences, the three hierarchy-side hot
paths that the node-table refactor turned into batched kernels:

* **build** — ``build_hierarchy`` over ``num_candidates`` generated rules
  (edge discovery + the first interval numbering),
* **cleanup** — the batched one-pass ``RuleHierarchy.cleanup`` (one fused
  ``batched_new_counts`` probe + one reconnection sweep) against the
  pre-refactor sequential path (per-rule mask probe + per-rule ``remove()``
  with O(parents×children) re-linking),
* **benefit sweep** — the per-propose gain filter over every live candidate:
  ``prime_new_counts`` (one concatenated mask gather) + cached ``new_count``
  reads, against one ``overlap_with`` mask probe per rule per propose.

Both arms of each pair run in the same process on the same inputs, and the
gated metrics are the in-run speedups plus exact-equivalence booleans
(survivor sets and counts must match), so the thresholds are machine-relative.

Run with::

    PYTHONPATH=src python benchmarks/bench_hierarchy.py [--sizes 10000 50000]
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core.benefit import BenefitScorer
from repro.core.candidates import CandidateOptions, generate_candidates
from repro.core.hierarchy_builder import build_hierarchy
from repro.datasets import load_dataset
from repro.grammars.tokensregex import TokensRegexGrammar
from repro.index.hierarchy import RuleHierarchy
from repro.index.trie_index import CorpusIndex

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_hierarchy.json"


def _time(fn, repeats: int = 5) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# --------------------------------------------------------------------- legacy
def legacy_cleanup(hierarchy: RuleHierarchy, covered_ids) -> int:
    """Pre-refactor cleanup: per-rule gain probe + sequential ``remove()``."""
    if isinstance(covered_ids, np.ndarray) and covered_ids.dtype == np.bool_:
        mask, covered_set = covered_ids, set()
    else:
        mask, covered_set = None, set(covered_ids)

    def has_gain(rule) -> bool:
        view = rule.coverage_view
        if view is not None:
            if mask is not None:
                return bool(view.new_ids_given(mask).size)
            return view.count > view.intersect_count(covered_set)
        if mask is not None:
            return any(
                sid >= mask.size or not mask[sid] for sid in rule.coverage
            )
        return bool(set(rule.coverage) - covered_set)

    removable = [rule for rule in hierarchy._nodes if not has_gain(rule)]
    for rule in removable:
        hierarchy.remove(rule)
    return len(removable)


def legacy_benefit_sweep(scorer: BenefitScorer, rules) -> List[int]:
    """Pre-refactor gain filter: one cached per-rule probe per propose.

    ``invalidate()`` first puts the scorer in the post-retrain cold state, so
    every ``new_count`` pays its per-rule ``overlap_with`` mask probe — exactly
    what the gain filter cost before ``prime_new_counts`` existed.
    """
    scorer.invalidate()
    return [scorer.new_count(rule) for rule in rules]


def _clone_hierarchy(rules, edges) -> RuleHierarchy:
    hierarchy = RuleHierarchy()
    for rule in rules:
        hierarchy.add(rule)
    for parent, child in edges:
        hierarchy.add_edge(parent, child)
    return hierarchy


# ------------------------------------------------------------------ measures
def measure_scale(num_sentences: int, num_candidates: int) -> Dict[str, object]:
    corpus = load_dataset("directions", num_sentences=num_sentences, seed=7)
    grammar = TokensRegexGrammar(max_phrase_len=4)
    index = CorpusIndex.build(corpus, [grammar], max_depth=10, min_coverage=2)

    positives = sorted(corpus.positive_ids())
    seed_positives = set(positives[: max(10, len(positives) // 5)])
    options = CandidateOptions(num_candidates=num_candidates, min_coverage=2)
    candidates = generate_candidates(index, seed_positives, options)

    # --- hierarchy build (includes the first interval numbering) ------------
    build_s = _time(
        lambda: build_hierarchy(candidates, index=index, covered_ids=set()),
        repeats=3,
    )
    base = build_hierarchy(candidates, index=index, covered_ids=set())
    edges = [
        (parent, child)
        for parent in base.rules()
        for child in base.children(parent)
    ]
    rules = base.rules()

    # Covered mask mimicking a mid-run state: union of the few largest
    # coverages, so cleanup has real work (some rules die, most survive).
    mask = np.zeros(num_sentences, dtype=bool)
    for rule in sorted(rules, key=lambda r: -r.coverage_size)[:5]:
        mask[np.asarray(list(rule.coverage), dtype=np.int64)] = True

    # --- cleanup: batched one-pass vs sequential remove() -------------------
    def run_new_cleanup():
        hierarchy = _clone_hierarchy(rules, edges)
        start = time.perf_counter()
        removed = hierarchy.cleanup(mask)
        return time.perf_counter() - start, removed, hierarchy

    def run_legacy_cleanup():
        hierarchy = _clone_hierarchy(rules, edges)
        start = time.perf_counter()
        removed = legacy_cleanup(hierarchy, mask)
        return time.perf_counter() - start, removed, hierarchy

    new_samples, legacy_samples = [], []
    for _ in range(5):
        elapsed, new_removed, new_hierarchy = run_new_cleanup()
        new_samples.append(elapsed)
        elapsed, legacy_removed, legacy_hierarchy = run_legacy_cleanup()
        legacy_samples.append(elapsed)
    survivors_match = (
        new_removed == legacy_removed
        and set(new_hierarchy.rules()) == set(legacy_hierarchy.rules())
        and all(
            set(new_hierarchy.children(rule)) == set(legacy_hierarchy.children(rule))
            for rule in new_hierarchy.rules()
        )
    )
    cleanup_new_s = statistics.median(new_samples)
    cleanup_legacy_s = statistics.median(legacy_samples)

    # --- per-propose benefit sweep over all live candidates -----------------
    scores = np.linspace(0.0, 1.0, num_sentences)
    covered = set(np.flatnonzero(mask).tolist())
    scorer = BenefitScorer(scores, covered)

    def new_sweep() -> List[int]:
        # invalidate() puts the scorer in the post-retrain cold state; the
        # sweep itself is what every propose step pays after that.
        scorer.invalidate()
        scorer.prime_new_counts(rules)
        return [scorer.new_count(rule) for rule in rules]

    benefit_new_s = _time(new_sweep)
    benefit_legacy_s = _time(lambda: legacy_benefit_sweep(scorer, rules))
    counts_match = new_sweep() == legacy_benefit_sweep(scorer, rules)

    return {
        "num_sentences": num_sentences,
        "hierarchy": {
            "num_rules": len(rules),
            "num_edges": len(edges),
            "build_ms": round(1000 * build_s, 4),
            "removed_by_cleanup": int(new_removed),
        },
        "cleanup": {
            "new_ms": round(1000 * cleanup_new_s, 4),
            "legacy_ms": round(1000 * cleanup_legacy_s, 4),
            "speedup": round(cleanup_legacy_s / max(cleanup_new_s, 1e-9), 2),
            "survivors_match": bool(survivors_match),
        },
        "benefit_sweep": {
            "new_ms": round(1000 * benefit_new_s, 4),
            "legacy_ms": round(1000 * benefit_legacy_s, 4),
            "speedup": round(benefit_legacy_s / max(benefit_new_s, 1e-9), 2),
            "counts_match": bool(counts_match),
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10000, 50000],
        help="corpus sizes (sentences) to measure",
    )
    parser.add_argument("--candidates", type=int, default=2000,
                        help="candidate pool size for hierarchy construction")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH)
    args = parser.parse_args()

    results: List[Dict[str, object]] = []
    for size in args.sizes:
        print(f"== {size} sentences ==")
        entry = measure_scale(size, num_candidates=args.candidates)
        results.append(entry)
        hierarchy = entry["hierarchy"]
        cleanup = entry["cleanup"]
        sweep = entry["benefit_sweep"]
        print(f"  hierarchy build : {hierarchy['build_ms']:.1f}ms "
              f"({hierarchy['num_rules']} rules, {hierarchy['num_edges']} edges)")
        print(f"  cleanup         : {cleanup['new_ms']:.2f}ms vs "
              f"{cleanup['legacy_ms']:.2f}ms legacy  ({cleanup['speedup']}x, "
              f"match={cleanup['survivors_match']})")
        print(f"  benefit sweep   : {sweep['new_ms']:.3f}ms vs "
              f"{sweep['legacy_ms']:.3f}ms legacy  ({sweep['speedup']}x, "
              f"match={sweep['counts_match']})")

    payload = {
        "benchmark": "bench_hierarchy",
        "dataset": "directions",
        "num_candidates": args.candidates,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
