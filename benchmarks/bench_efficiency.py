"""Section 4.5 efficiency experiment: wall-clock breakdown vs. corpus size."""

from __future__ import annotations

from repro.config import ClassifierConfig, DarwinConfig
from repro.experiments.efficiency import efficiency_experiment
from repro.evaluation.reporting import format_table

SCALES = (0.04, 0.08, 0.16)


def test_efficiency_breakdown(benchmark):
    """Index build / hierarchy generation / traversal timings at three corpus sizes."""
    config = DarwinConfig(
        budget=30, num_candidates=800, min_coverage=2,
        classifier=ClassifierConfig(epochs=30, embedding_dim=40),
    )
    result = benchmark.pedantic(
        efficiency_experiment,
        kwargs={"dataset": "directions", "scales": SCALES, "budget": 30,
                "config": config, "seed": 7},
        rounds=1, iterations=1,
    )
    sizes = result.metadata["corpus_sizes"]
    headers = ["#sentences"] + list(result.series.keys())
    rows = []
    for index, size in enumerate(sizes):
        row = [size] + [result.series[phase][index] for phase in result.series]
        rows.append(row)
    print()
    print(format_table(headers, rows,
                       title="Section 4.5: wall-clock breakdown (seconds)"))
    benchmark.extra_info["corpus_sizes"] = sizes
    benchmark.extra_info["index_build_seconds"] = [
        round(v, 3) for v in result.series["index_build"]
    ]

    index_times = result.series["index_build"]
    # Index construction must grow roughly linearly with corpus size: going
    # from the smallest to the largest corpus (4x) should cost well under the
    # quadratic factor (16x), with slack for timer noise on small values.
    if index_times[0] > 0.01:
        assert index_times[-1] <= index_times[0] * (sizes[-1] / sizes[0]) * 3.0
