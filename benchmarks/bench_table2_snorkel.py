"""Table 2: F-score of Darwin's labels with and without Snorkel-style de-noising."""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_table
from repro.experiments.snorkel_table import snorkel_experiment

DATASETS = [
    ("musicians_setting", "M"),
    ("cause_effect_setting", "C"),
    ("directions_setting", "D"),
    ("tweets_setting", "F"),
]

_collected_rows = []


@pytest.mark.parametrize("dataset_fixture,column", DATASETS)
def test_table2_darwin_vs_snorkel(benchmark, request, dataset_fixture, column,
                                  bench_budget):
    """One Table 2 column: end-classifier F1 for Darwin vs Darwin+Snorkel."""
    setting = request.getfixturevalue(dataset_fixture)
    result = benchmark.pedantic(
        snorkel_experiment,
        kwargs={"setting": setting, "budget": bench_budget},
        rounds=1, iterations=1,
    )
    finals = result.final_values()
    row = [
        column,
        setting.dataset,
        finals["Darwin"],
        finals["Darwin+Snorkel"],
        result.metadata["num_rules"],
    ]
    _collected_rows.append(row)
    print()
    print(format_table(
        ["col", "dataset", "Darwin", "Darwin+Snorkel", "#rules"],
        _collected_rows,
        title="Table 2: Darwin vs Darwin+Snorkel (end-classifier F1)",
    ))
    benchmark.extra_info["darwin_f1"] = round(finals["Darwin"], 4)
    benchmark.extra_info["darwin_snorkel_f1"] = round(finals["Darwin+Snorkel"], 4)

    # Paper shape: de-noising neither rescues poor rules nor destroys good
    # ones — the two columns stay close on every dataset.
    assert finals["Darwin"] >= 0.45
    assert abs(finals["Darwin"] - finals["Darwin+Snorkel"]) <= 0.3
