"""Figure 9(a-d): rule coverage vs. #questions for Darwin(HS/US/LS) and HighP."""

from __future__ import annotations

import pytest

from repro.experiments.coverage_curves import coverage_experiment

from bench_utils import extra_info_from, report_curves

FIGURES = {
    "musicians_setting": "Figure 9(a) musicians",
    "cause_effect_setting": "Figure 9(b) cause-effect",
    "directions_setting": "Figure 9(c) directions",
    "tweets_setting": "Figure 9(d) food-tweets",
}


@pytest.mark.parametrize("dataset_fixture", sorted(FIGURES))
def test_fig9_rule_coverage(benchmark, request, dataset_fixture, bench_budget):
    """Coverage curves for all traversal strategies plus the HighP baseline."""
    setting = request.getfixturevalue(dataset_fixture)
    result = benchmark.pedantic(
        coverage_experiment,
        kwargs={"setting": setting, "budget": bench_budget},
        rounds=1, iterations=1,
    )
    report_curves(result, f"{FIGURES[dataset_fixture]}: coverage vs. #questions")
    benchmark.extra_info.update(extra_info_from(result))

    finals = result.final_values()
    # Paper shape: Darwin(HS) reaches high coverage within the budget and is
    # never dominated by the HighP baseline at the end of the run.
    assert finals["Darwin(HS)"] >= 0.6
    assert finals["Darwin(HS)"] >= finals["highP"] - 0.05
    # LocalSearch is the strategy that plateaus when precise rules are spread
    # out; it should never end above HybridSearch by a large margin.
    assert finals["Darwin(HS)"] >= finals["Darwin(LS)"] - 0.1
