"""Cross-process serving fleet benchmark (repro.fleet PR).

Measures what the fleet design claims:

* **correctness** — every fleet tenant's committed history is
  question-for-question identical to a solo engine with the same config
  (process placement is a packaging change, never a behavioural one),
* **bounded memory** — the fleet's *machine* RSS (summed PSS of the
  supervisor plus every worker, so fork-shared pages count once) beats the
  process-isolated alternative: N independent single-process pools each
  carrying their own full substrate. That is the claim the shared arena +
  shared-memory feature slab + fork CoW actually buy. The ratio against
  *one* shared-everything pool process is recorded too
  (``machine_rss_ratio``) but not gated at the design target of 1.5x:
  CPython refcounts dirty every substrate heap page a worker touches, so
  copy-on-write unshares the Python-object part of the substrate once per
  process no matter the corpus size (numpy buffers, the arena file, and
  the feature slab do stay shared — only the object graph unshares),
* **throughput** — committed answers/sec with the tenants partitioned
  across worker processes versus multiplexed in one process. The >= 2.5x
  speedup acceptance bar needs real cores; on machines with fewer than 4
  the speedup is recorded but **waived** (``speedup_waived: true``) — a
  1-core container cannot parallelize anything.

Each arm runs in a forked child so its memory is measured alone. Results
are written to ``BENCH_fleet.json``; the CI ``perf-gate`` job re-runs this
against the committed file.

Run with::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict

from bench_isolate import run_isolated

from repro.config import ClassifierConfig, CrowdConfig, DarwinConfig, FleetConfig
from repro.datasets import load_dataset
from repro.engine.engine import DarwinEngine
from repro.fleet import FleetSupervisor, process_memory_bytes
from repro.serving import TenantPool, serve

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_fleet.json"

DATASET = "directions"
SEED_RULE = "best way to get to"


def _config(budget: int) -> DarwinConfig:
    return DarwinConfig(
        budget=budget,
        num_candidates=250,
        min_coverage=2,
        classifier=ClassifierConfig(epochs=10, embedding_dim=30),
    )


def _crowd(budget: int) -> CrowdConfig:
    return CrowdConfig(
        num_annotators=2,
        redundancy=1,
        batch_size=1,  # sequentially consistent with the serial loop
        budget=budget,
        annotator_latency=0.0,
    )


def _corpus(num_sentences: int, seed: int):
    return load_dataset(
        DATASET, num_sentences=num_sentences, seed=seed, parse_trees=False,
    )


def run_solo_arm(corpus_args, budget: int) -> Dict[str, object]:
    """One plain engine, no pool, no fleet: the history oracle."""
    engine = DarwinEngine(
        _corpus(*corpus_args), config=_config(budget),
        seeds={"rule_texts": [SEED_RULE]},
    )
    start = time.perf_counter()
    result = engine.run()
    return {
        "arm": "solo",
        "loop_seconds": round(time.perf_counter() - start, 4),
        "questions": result.queries_used,
        "history": [[rec.rule, rec.answer] for rec in result.history],
        "rss_bytes": process_memory_bytes(),
    }


def run_pool_arm(corpus_args, budget: int, tenants: int) -> Dict[str, object]:
    """All tenants in one process: the fleet's single-process baseline."""
    with TenantPool(
        _corpus(*corpus_args), _config(budget),
        seeds={"rule_texts": [SEED_RULE]},
    ) as pool:
        report = serve(pool, num_tenants=tenants, crowd_config=_crowd(budget))
        histories = {
            tenant_id: [
                [rec.rule, rec.answer]
                for rec in result.crowd.darwin_result.history
            ]
            for tenant_id, result in report.results.items()
        }
        rss = process_memory_bytes()
    return {
        "arm": f"pool-{tenants}",
        "tenants": tenants,
        "serve_seconds": round(report.wall_seconds, 4),
        "questions_committed": report.questions_committed,
        "answers_per_sec": round(report.answers_per_sec, 2),
        "histories": histories,
        "rss_bytes": rss,
    }


def run_fleet_arm(
    corpus_args, budget: int, workers: int, tenants: int, workdir: str
) -> Dict[str, object]:
    """Tenants partitioned across worker processes, driven in parallel."""
    crowd = _crowd(budget)
    supervisor = FleetSupervisor(
        _corpus(*corpus_args),
        _config(budget),
        fleet=FleetConfig(workers=workers, workdir=workdir),
        crowd_config=crowd,
        seeds={"rule_texts": [SEED_RULE]},
        worker_obs=False,  # the bench measures serving, not scraping
    )
    with supervisor:
        supervisor.spawn_tenants(tenants)
        start = time.perf_counter()
        reports = supervisor.drive_all(
            {k: getattr(crowd, k) for k in (
                "num_annotators", "redundancy", "batch_size", "budget",
                "annotator_latency",
            )}
        )
        wall = time.perf_counter() - start
        machine_rss = supervisor.machine_rss_bytes()
    questions = sum(r["questions_committed"] for r in reports)
    histories = {
        # Worker histories carry [rule, answer, covered]; keep the first
        # two fields so all arms compare on the same shape.
        tenant_id: [entry2[:2] for entry2 in entry["history"]]
        for r in reports
        for tenant_id, entry in r["tenants"].items()
    }
    return {
        "arm": f"fleet-{workers}x{tenants}",
        "workers": workers,
        "tenants": tenants,
        "serve_seconds": round(wall, 4),
        "questions_committed": questions,
        "answers_per_sec": round(questions / wall, 2) if wall else 0.0,
        "per_worker_wall_seconds": [
            round(r["wall_seconds"], 4) for r in reports
        ],
        "histories": histories,
        "machine_rss_bytes": machine_rss,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="fleet worker processes")
    parser.add_argument("--tenants", type=int, default=16,
                        help="tenants, spawned round-robin over the workers "
                             "(the pool arm serves the same count)")
    parser.add_argument("--budget", type=int, default=6,
                        help="per-tenant committed-question budget")
    parser.add_argument("--num-sentences", type=int, default=5000,
                        help="corpus size; the 1.5x memory bound is a claim "
                             "about substrate-dominated corpora, so keep "
                             "this large enough that the shared index "
                             "outweighs per-process interpreter overhead")
    parser.add_argument("--seed", type=int, default=7,
                        help="corpus sampling seed (the seed rule must have "
                             "coverage: 5000/seed-7 and 600/seed-11 do)")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="fleet-vs-pool answers/sec acceptance bar "
                             "(only enforced with >= 4 CPU cores)")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH)
    args = parser.parse_args()

    corpus_args = (args.num_sentences, args.seed)
    cores = os.cpu_count() or 1
    shard_tenants = max(1, args.tenants // args.workers)
    print(f"== fleet bench: {args.workers} workers, {args.tenants} tenants, "
          f"{args.num_sentences} sentences, {cores} cores ==")
    solo = run_isolated(run_solo_arm, corpus_args, args.budget)
    pool = run_isolated(run_pool_arm, corpus_args, args.budget, args.tenants)
    # The process-isolated alternative: one independent pool per worker,
    # each rebuilding the full substrate for its shard of the tenants.
    shard = run_isolated(run_pool_arm, corpus_args, args.budget, shard_tenants)
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        fleet = run_isolated(
            run_fleet_arm, corpus_args, args.budget, args.workers,
            args.tenants, tmp,
        )

    solo_history = solo.pop("history")
    histories = (
        list(pool.pop("histories").values())
        + list(shard.pop("histories").values())
        + list(fleet.pop("histories").values())
    )
    history_match = bool(histories) and all(
        history == solo_history for history in histories
    )
    isolated_rss = args.workers * shard["rss_bytes"]
    rss_ratio = fleet["machine_rss_bytes"] / max(pool["rss_bytes"], 1)
    isolated_ratio = fleet["machine_rss_bytes"] / max(isolated_rss, 1)
    speedup = fleet["answers_per_sec"] / max(pool["answers_per_sec"], 0.01)
    speedup_waived = cores < 4
    speedup_ok = speedup_waived or speedup >= args.min_speedup
    headline = {
        "history_match": history_match,
        "machine_rss_ratio": round(rss_ratio, 3),
        "rss_vs_isolated_ratio": round(isolated_ratio, 3),
        "rss_beats_isolated": isolated_ratio < 1.0,
        "speedup": round(speedup, 3),
        "speedup_waived": speedup_waived,
        "speedup_ok": speedup_ok,
        "cores": cores,
    }

    print(f"  histories identical to solo : {history_match} "
          f"({len(histories)} tenant histories, {len(solo_history)} "
          f"questions each)")
    print(f"  machine RSS (summed PSS)    : "
          f"{fleet['machine_rss_bytes'] / 1e6:.0f} MB fleet vs "
          f"{pool['rss_bytes'] / 1e6:.0f} MB shared-everything pool "
          f"({headline['machine_rss_ratio']}x, informational) vs "
          f"{isolated_rss / 1e6:.0f} MB process-isolated "
          f"({headline['rss_vs_isolated_ratio']}x, bound 1.0x)")
    print(f"  throughput                  : "
          f"{fleet['answers_per_sec']:.1f} vs {pool['answers_per_sec']:.1f} "
          f"answers/s ({headline['speedup']}x"
          + (f", waived on {cores} cores)" if speedup_waived
             else f", bar {args.min_speedup}x)"))

    acceptance_ok = True
    if not history_match:
        acceptance_ok = False
        print("  ACCEPTANCE FAIL: a tenant history diverged from solo")
    if not headline["rss_beats_isolated"]:
        acceptance_ok = False
        print("  ACCEPTANCE FAIL: fleet machine RSS not below the "
              "process-isolated deployment")
    if not speedup_ok:
        acceptance_ok = False
        print(f"  ACCEPTANCE FAIL: speedup {speedup:.2f}x below "
              f"{args.min_speedup}x with {cores} cores")

    payload = {
        "benchmark": "bench_fleet",
        "dataset": DATASET,
        "num_sentences": args.num_sentences,
        "corpus_seed": args.seed,
        "workers": args.workers,
        "tenants": args.tenants,
        "budget": args.budget,
        "solo": solo,
        "pool": pool,
        "shard": shard,
        "isolated_rss_bytes": isolated_rss,
        "fleet": fleet,
        "headline": headline,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0 if acceptance_ok else 1


if __name__ == "__main__":
    sys.exit(main())
