"""Figure 12: sensitivity to the HybridSearch parameter tau and to the seed rule."""

from __future__ import annotations

from repro.experiments.sensitivity import seed_rule_sweep, tau_sweep

from bench_utils import extra_info_from, report_curves

TAUS = (3, 5, 7, 9)
SEED_RULES = (
    "composer",
    "piano",
    "beethoven taught piano to the daughters of a countess",
)


def test_fig12a_tau_sensitivity(benchmark, musicians_setting, bench_budget):
    """Figure 12(a): Darwin(HS) coverage for tau in {3,5,7,9} on musicians."""
    result = benchmark.pedantic(
        tau_sweep,
        kwargs={"setting": musicians_setting, "taus": TAUS, "budget": bench_budget},
        rounds=1, iterations=1,
    )
    report_curves(result, "Figure 12(a) musicians: sensitivity to tau")
    benchmark.extra_info.update(extra_info_from(result))
    finals = result.final_values()
    # Paper shape: performance is insensitive to tau.
    assert max(finals.values()) - min(finals.values()) <= 0.35
    assert all(value >= 0.4 for value in finals.values())


def test_fig12b_seed_rule_sensitivity(benchmark, musicians_setting, bench_budget):
    """Figure 12(b): Darwin(HS) coverage for three different seed rules."""
    result = benchmark.pedantic(
        seed_rule_sweep,
        kwargs={
            "setting": musicians_setting,
            "seed_rules": SEED_RULES,
            "budget": bench_budget,
        },
        rounds=1, iterations=1,
    )
    report_curves(result, "Figure 12(b) musicians: sensitivity to the seed rule")
    for position, seed_rule in enumerate(SEED_RULES, start=1):
        print(f"  Rule {position}: {seed_rule!r}")
    benchmark.extra_info.update(extra_info_from(result))
    finals = result.final_values()
    # Paper shape: all three seeds converge to similar coverage.
    assert all(value >= 0.4 for value in finals.values())
