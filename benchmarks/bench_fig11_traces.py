"""Figure 11: example HybridSearch traversal traces on two datasets."""

from __future__ import annotations

import pytest

from repro.experiments.traversal_traces import traversal_trace_experiment

from bench_utils import extra_info_from


@pytest.mark.parametrize("dataset_fixture", ["cause_effect_setting", "directions_setting"])
def test_fig11_traversal_trace(benchmark, request, dataset_fixture):
    """Print the sequence of queried rules (the content of Figure 11)."""
    setting = request.getfixturevalue(dataset_fixture)
    result = benchmark.pedantic(
        traversal_trace_experiment,
        kwargs={"setting": setting, "budget": 40},
        rounds=1, iterations=1,
    )
    print(f"\nFigure 11 ({setting.dataset}): HybridSearch traversal trace")
    print(f"seed rule(s): {', '.join(result.metadata['seed_rules'])}")
    for entry in result.metadata["trace"]:
        marker = "+" if entry["answer"] == "YES" else "-"
        print(f"  {entry['question']:>3} [{marker}] {entry['rule']}  "
              f"(|C_r|={entry['coverage']})")
    accepted = result.metadata["accepted_rules"]
    print(f"accepted rule path: {' -> '.join(accepted) if accepted else '(none)'}")

    benchmark.extra_info.update(extra_info_from(result))
    benchmark.extra_info["accepted_rules"] = accepted
    # The trace must contain accepted rules beyond the seed, including ones
    # sharing no token with it (the paper's 'best way to get to' -> 'shuttle to'
    # style jump).
    assert accepted
    seed_tokens = set()
    for seed in result.metadata["seed_rules"]:
        seed_tokens.update(seed.lower().split())
    assert any(not (set(rule.split()) & seed_tokens) for rule in accepted)
