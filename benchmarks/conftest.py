"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints the corresponding rows/series. Datasets are generated at a reduced
scale (the ``BENCH_SCALE`` constant) so the full harness completes in a few
minutes on a laptop; pass ``--bench-scale`` to run closer to paper scale.
"""

from __future__ import annotations

import pytest

from repro.config import ClassifierConfig, DarwinConfig
from repro.experiments.common import ExperimentSetting, prepare_dataset

DEFAULT_BENCH_SCALE = 0.06
DEFAULT_BENCH_BUDGET = 60


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        type=float,
        default=DEFAULT_BENCH_SCALE,
        help="Fraction of each dataset's paper-scale size to generate "
             f"(default {DEFAULT_BENCH_SCALE}).",
    )
    parser.addoption(
        "--bench-budget",
        action="store",
        type=int,
        default=DEFAULT_BENCH_BUDGET,
        help=f"Oracle-query budget per run (default {DEFAULT_BENCH_BUDGET}).",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> float:
    return float(request.config.getoption("--bench-scale"))


@pytest.fixture(scope="session")
def bench_budget(request) -> int:
    return int(request.config.getoption("--bench-budget"))


@pytest.fixture(scope="session")
def bench_config() -> DarwinConfig:
    """Darwin configuration shared by all benchmark runs."""
    return DarwinConfig(
        budget=DEFAULT_BENCH_BUDGET,
        num_candidates=1000,
        min_coverage=2,
        classifier=ClassifierConfig(epochs=40, embedding_dim=40),
    )


def _prepare(name: str, scale: float, config: DarwinConfig, seed: int = 7,
             **kwargs) -> ExperimentSetting:
    return prepare_dataset(name, scale=scale, seed=seed, config=config, **kwargs)


@pytest.fixture(scope="session")
def directions_setting(bench_scale, bench_config) -> ExperimentSetting:
    return _prepare("directions", bench_scale, bench_config)


@pytest.fixture(scope="session")
def musicians_setting(bench_scale, bench_config) -> ExperimentSetting:
    return _prepare("musicians", bench_scale, bench_config)


@pytest.fixture(scope="session")
def cause_effect_setting(bench_scale, bench_config) -> ExperimentSetting:
    return _prepare("cause-effect", bench_scale, bench_config)


@pytest.fixture(scope="session")
def tweets_setting(bench_scale, bench_config) -> ExperimentSetting:
    # The tweets corpus is small (2130 sentences); keep at least half of it.
    return _prepare("tweets", max(bench_scale, 0.5), bench_config)


@pytest.fixture(scope="session")
def professions_setting(bench_scale, bench_config) -> ExperimentSetting:
    # professions defaults to 50K sentences; scale it down further but keep the
    # 1.1% imbalance that makes it the hardest dataset.
    return _prepare("professions", min(bench_scale, 0.05), bench_config)
