"""Figure 8: coverage vs. *biased* seed-set size — Snuba vs. Darwin(HS).

The seed pool excludes every sentence containing the dataset's characteristic
token ("shuttle" for directions, "composer" for musicians), so Snuba has no
evidence for that positive mode while Darwin can still reach it.
"""

from __future__ import annotations

import pytest

from repro.experiments.seed_size import seed_size_experiment

from bench_utils import extra_info_from, report_series_over

SEED_SIZES = (25, 50, 200)


@pytest.mark.parametrize("dataset_fixture", ["directions_setting", "musicians_setting"])
def test_fig8_biased_seed(benchmark, request, dataset_fixture, bench_budget):
    """Figure 8(a)/(b): coverage vs. biased seed size."""
    setting = request.getfixturevalue(dataset_fixture)
    result = benchmark.pedantic(
        seed_size_experiment,
        kwargs={
            "setting": setting,
            "seed_sizes": SEED_SIZES,
            "budget": bench_budget,
            "biased": True,
        },
        rounds=1, iterations=1,
    )
    report_series_over(
        result, "#seed sentences (biased)", SEED_SIZES,
        title=f"Figure 8 ({setting.dataset}): coverage vs. biased seed size "
              f"(excluding '{setting.biased_exclude_token}')",
    )
    benchmark.extra_info.update(extra_info_from(result))

    darwin = result.series["Darwin(HS)"]
    snuba = result.series["Snuba"]
    # Paper shape: the bias barely affects Darwin while Snuba stays below it.
    assert darwin[0] >= 0.5
    assert all(d >= s for d, s in zip(darwin, snuba))
