"""Memory-mapped coverage arena benchmark (larger-than-memory corpora PR).

Compares the in-memory coverage backend against the mmap arena backend at
each corpus size, measuring what the arena design actually trades:

* **index build time** — sketch merge + interning (one bulk column append
  for the arena vs heap allocation for memory),
* **resident-set ceiling** — each arm runs in its own forked child process
  and reports its ``ru_maxrss`` peak, plus the store's exact coverage
  accounting: the memory backend pins every interned column on the heap,
  the arena keeps only the LRU bitset cache + offsets resident while the
  values column lives in the file (OS page cache),
* **per-question loop latency** — the full Darwin loop on both backends,
  with the histories asserted identical (the arena must be a pure storage
  swap, never a behavioural one).

Results are written to ``BENCH_arena.json`` next to the repo root; the CI
``perf-gate`` job re-runs the small size and feeds the committed file to
``benchmarks/check_regression.py`` so the arena-vs-memory ratios can never
silently regress.

Run with::

    PYTHONPATH=src python benchmarks/bench_arena.py [--sizes 5000 50000]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from bench_isolate import peak_rss_bytes, run_isolated

from repro.config import ClassifierConfig, DarwinConfig
from repro.core.darwin import Darwin
from repro.core.oracle import BudgetedOracle, GroundTruthOracle
from repro.datasets import load_dataset
from repro.grammars.tokensregex import TokensRegexGrammar
from repro.index.arena import ArenaConfig
from repro.index.trie_index import CorpusIndex

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_arena.json"


def run_arm(
    backend: str,
    num_sentences: int,
    budget: int,
    bitset_cache_bytes: int,
    arena_path: Optional[str],
) -> Dict[str, object]:
    """Build the index and drive the Darwin loop on one backend.

    Designed to run inside a forked child so ``ru_maxrss`` reflects this
    arm alone; returns a plain JSON-able dict.
    """
    corpus = load_dataset(
        "directions", num_sentences=num_sentences, seed=7, parse_trees=False
    )
    grammar = TokensRegexGrammar(max_phrase_len=4)
    arena_config = (
        ArenaConfig(path=arena_path, bitset_cache_bytes=bitset_cache_bytes)
        if backend == "arena"
        else None
    )

    start = time.perf_counter()
    index = CorpusIndex.build(
        corpus,
        [grammar],
        max_depth=10,
        min_coverage=2,
        coverage_backend=backend,
        arena_config=arena_config,
    )
    build_seconds = time.perf_counter() - start

    config = DarwinConfig(
        budget=budget,
        num_candidates=2000,
        min_coverage=2,
        retrain_every=5,
        hierarchy_refresh="incremental",
        classifier=ClassifierConfig(model="logistic", epochs=10, embedding_dim=30),
    )
    darwin = Darwin(corpus, grammars=[grammar], config=config, index=index)
    darwin.start(seed_rule_texts=["best way to get to"])
    oracle = BudgetedOracle(base=GroundTruthOracle(corpus), budget=budget)
    loop_start = time.perf_counter()
    while oracle.queries_used < budget:
        rule = darwin.propose_next()
        if rule is None:
            break
        answer = oracle.ask(rule, darwin.sample_for_query(rule))
        darwin.record_answer(rule, answer.is_useful)
    loop_seconds = time.perf_counter() - loop_start
    questions = max(oracle.queries_used, 1)

    store = index.store
    result: Dict[str, object] = {
        "backend": backend,
        "build_seconds": round(build_seconds, 4),
        "loop_seconds": round(loop_seconds, 4),
        "questions": oracle.queries_used,
        "per_question_ms": round(1000.0 * loop_seconds / questions, 4),
        "history": [(rec.rule, rec.answer) for rec in darwin.history],
        "final_recall": round(darwin.rule_set.recall(corpus.positive_ids()), 4),
        "num_nodes": len(index) - 1,
        "interned_coverages": store.num_interned,
        "coverage_column_bytes": store.bytes_interned,
        "coverage_resident_bytes": store.resident_coverage_bytes,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if backend == "arena":
        result["bitset_cache"] = store.bitset_cache_stats()
        result["arena_file_bytes"] = os.path.getsize(store.arena.path)
    return result


def measure_scale(
    num_sentences: int, budget: int, bitset_cache_bytes: int
) -> Dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="bench-arena-") as tmp:
        arena_path = os.path.join(tmp, f"bench-{num_sentences}.arena")
        memory = run_isolated(
            run_arm, "memory", num_sentences, budget, bitset_cache_bytes, None
        )
        arena = run_isolated(
            run_arm, "arena", num_sentences, budget, bitset_cache_bytes, arena_path
        )
    history_match = memory.pop("history") == arena.pop("history")
    headline = {
        "per_question_ratio": round(
            arena["per_question_ms"] / max(memory["per_question_ms"], 1e-9), 3
        ),
        "build_ratio": round(
            arena["build_seconds"] / max(memory["build_seconds"], 1e-9), 3
        ),
        "coverage_resident_ratio": round(
            arena["coverage_resident_bytes"]
            / max(memory["coverage_resident_bytes"], 1), 4
        ),
        "history_match": history_match,
    }
    return {
        "num_sentences": num_sentences,
        "memory": memory,
        "arena": arena,
        "headline": headline,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[5000, 50000],
        help="corpus sizes (sentences) to measure; the paper-scale claim is "
             "the 50k point, the 5k point doubles as the CI smoke size",
    )
    parser.add_argument("--budget", type=int, default=40,
                        help="oracle budget for the per-question loop runs")
    parser.add_argument("--bitset-cache-bytes", type=int, default=8 << 20,
                        help="arena LRU bitset budget (resident ceiling knob)")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH)
    args = parser.parse_args()

    results: List[Dict[str, object]] = []
    for size in args.sizes:
        print(f"== {size} sentences ==")
        entry = measure_scale(size, args.budget, args.bitset_cache_bytes)
        results.append(entry)
        memory, arena, headline = entry["memory"], entry["arena"], entry["headline"]
        print(f"  build              : {arena['build_seconds']:.2f}s arena vs "
              f"{memory['build_seconds']:.2f}s memory "
              f"({headline['build_ratio']}x)")
        print(f"  per-question loop  : {arena['per_question_ms']:.2f}ms vs "
              f"{memory['per_question_ms']:.2f}ms "
              f"({headline['per_question_ratio']}x, "
              f"history match: {headline['history_match']})")
        print(f"  coverage resident  : {arena['coverage_resident_bytes']:,} B "
              f"arena (cache) vs {memory['coverage_resident_bytes']:,} B heap "
              f"({headline['coverage_resident_ratio']}x); "
              f"arena file {arena['arena_file_bytes']:,} B")
        print(f"  peak RSS           : {arena['peak_rss_bytes'] / 1e6:.0f} MB vs "
              f"{memory['peak_rss_bytes'] / 1e6:.0f} MB")

    payload = {
        "benchmark": "bench_arena",
        "dataset": "directions",
        "budget": args.budget,
        "bitset_cache_bytes": args.bitset_cache_bytes,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
