"""Figure 13: sensitivity to the number of generated candidate rules."""

from __future__ import annotations

from repro.experiments.sensitivity import candidate_sweep

from bench_utils import extra_info_from, report_curves

CANDIDATE_COUNTS = (500, 1000, 2000)


def test_fig13_candidate_count_sensitivity(benchmark, musicians_setting, bench_budget):
    """Darwin(HS) coverage for candidate pools of 0.5K / 1K / 2K rules."""
    result = benchmark.pedantic(
        candidate_sweep,
        kwargs={
            "setting": musicians_setting,
            "candidate_counts": CANDIDATE_COUNTS,
            "budget": bench_budget,
        },
        rounds=1, iterations=1,
    )
    report_curves(result, "Figure 13 musicians: sensitivity to #candidates")
    benchmark.extra_info.update(extra_info_from(result))
    finals = result.final_values()
    # Paper shape: performance is consistently similar across pool sizes.
    assert max(finals.values()) - min(finals.values()) <= 0.35
    assert all(value >= 0.4 for value in finals.values())
