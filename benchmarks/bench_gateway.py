"""HTTP gateway load benchmark (traffic-grade gateway PR).

Measures what the gateway design claims, over a real socket against a real
:class:`~repro.gateway.GatewayApp` + stdlib backend:

* **the knee** — a concurrency sweep (1..2xT closed-loop clients round-robin
  over T tenants) of a fixed-service-time operation. Per-tenant work is
  serialized by the admission queue, so throughput should scale with client
  count until every tenant worker is busy (c = T) and flatten after —
  ``knee.speedup`` (knee throughput over 1-client throughput) is the gated,
  machine-relative number, and the absolute rps / p95 at the knee are the
  informational headlines.
* **graceful overload** — an *open-loop* burst: far more requests than the
  bounded queues can hold, fired without waiting for completions. The
  gateway must answer every one of them with a well-formed JSON envelope
  (no dropped connections, no 5xx), reject the overflow with 429 +
  ``Retry-After`` (``overload.saw_backpressure``), and still serve
  ``/healthz`` afterwards (``overload.graceful``).
* **end-to-end ops** — real propose→answer cycles over HTTP (informational:
  absolute ops/sec depends on Darwin's per-question cost, which
  ``bench_crowd.py`` already gates machine-relatively).

The sweep uses the debug sleep op (a fixed 5ms service time that releases
the GIL) rather than Darwin questions: the *gateway's* knee — routing,
admission, queue handoff, HTTP — is the thing under test, and a fixed
service time makes the expected shape (scale to T workers, then flatten)
deterministic across machines.

Run with::

    PYTHONPATH=src python benchmarks/bench_gateway.py
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.config import ClassifierConfig, CrowdConfig, DarwinConfig, GatewayConfig
from repro.datasets import load_dataset
from repro.gateway import GatewayApp, build_server
from repro.serving import TenantPool

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_gateway.json"

SEED_RULE = "best way to get to"
SERVICE_TIME_S = 0.005


def _post(
    base: str, path: str, payload: Dict[str, object], timeout: float = 30.0
) -> Tuple[int, Dict[str, object]]:
    request = urllib.request.Request(
        base + path,
        method="POST",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(base: str, path: str, timeout: float = 30.0) -> Tuple[int, bytes]:
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return response.status, response.read()


class _GatewayFixture:
    """One pool + app + bound server, torn down in reverse order."""

    def __init__(self, tenants: int, queue_depth: int, budget: int) -> None:
        corpus = load_dataset(
            "directions", num_sentences=600, seed=11, parse_trees=False
        )
        config = DarwinConfig(
            budget=budget,
            num_candidates=1000,
            classifier=ClassifierConfig(model="logistic", epochs=10),
        )
        self.pool = TenantPool(corpus, config, seeds={"rule_texts": [SEED_RULE]})
        self.pool.spawn_many(tenants)
        self.app = GatewayApp(
            self.pool,
            GatewayConfig(port=0, queue_depth=queue_depth, allow_debug_ops=True),
            CrowdConfig(
                num_annotators=4, redundancy=1, batch_size=8, budget=budget,
                annotator_latency=0.0,
            ),
        )
        self.server = build_server(self.app)
        self.base = self.server.url
        self.tenant_ids = sorted(self.pool.tenants)
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        self.server.stop()
        self._thread.join(timeout=30)
        self.pool.close()


def _sweep_arm(
    fixture: _GatewayFixture, concurrency: int, ops_per_client: int
) -> Dict[str, object]:
    """``concurrency`` closed-loop clients, round-robin over the tenants."""
    latencies: List[float] = []
    lock = threading.Lock()
    errors: List[str] = []

    def client(client_id: int) -> None:
        tenant = fixture.tenant_ids[client_id % len(fixture.tenant_ids)]
        local: List[float] = []
        for _ in range(ops_per_client):
            start = time.perf_counter()
            status, _ = _post(
                fixture.base,
                f"/tenants/{tenant}/debug/sleep",
                {"seconds": SERVICE_TIME_S},
            )
            local.append(time.perf_counter() - start)
            if status != 200:
                with lock:
                    errors.append(f"client {client_id}: status {status}")
                return
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(concurrency)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    total_ops = concurrency * ops_per_client
    if errors or not latencies:
        raise RuntimeError(f"sweep arm failed: {errors[:3]}")
    latencies.sort()
    return {
        "concurrency": concurrency,
        "ops": total_ops,
        "rps": round(total_ops / wall, 2),
        "p50_ms": round(1000 * statistics.median(latencies), 3),
        "p95_ms": round(1000 * latencies[int(0.95 * (len(latencies) - 1))], 3),
    }


def _overload_arm(
    fixture: _GatewayFixture, requests: int, hold_seconds: float
) -> Dict[str, object]:
    """Open-loop burst far past queue capacity; classify every response."""
    status_counts: Dict[str, int] = {}
    malformed = 0
    lock = threading.Lock()

    def fire(i: int) -> None:
        nonlocal malformed
        tenant = fixture.tenant_ids[i % len(fixture.tenant_ids)]
        try:
            status, body = _post(
                fixture.base,
                f"/tenants/{tenant}/debug/sleep",
                {"seconds": hold_seconds, "deadline_ms": 60_000},
            )
            ok_shape = status == 200 or (
                isinstance(body, dict) and "error" in body
            )
        except Exception:
            status, ok_shape = -1, False
        with lock:
            status_counts[str(status)] = status_counts.get(str(status), 0) + 1
            if not ok_shape:
                malformed += 1

    threads = [threading.Thread(target=fire, args=(i,)) for i in range(requests)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    rejected = status_counts.get("429", 0)
    healthz_status, _ = _get(fixture.base, "/healthz")
    graceful = (
        malformed == 0
        and healthz_status == 200
        and all(code in ("200", "429", "503", "504") for code in status_counts)
    )
    return {
        "requests": requests,
        "hold_ms": round(1000 * hold_seconds, 1),
        "status_counts": dict(sorted(status_counts.items())),
        "rejected_429": rejected,
        "saw_backpressure": rejected > 0,
        "graceful": graceful,
    }


def _end_to_end_arm(fixture: _GatewayFixture, ops: int) -> Dict[str, object]:
    """Real propose→answer cycles over HTTP against one tenant."""
    tenant = fixture.tenant_ids[0]
    latencies: List[float] = []
    committed = 0
    start_wall = time.perf_counter()
    for _ in range(ops):
        start = time.perf_counter()
        status, body = _post(
            fixture.base, f"/tenants/{tenant}/propose", {"annotator_id": 0}
        )
        assignment = body.get("assignment") if status == 200 else None
        if assignment:
            status, body = _post(
                fixture.base,
                f"/tenants/{tenant}/answer",
                {
                    "ticket_id": assignment["ticket_id"],
                    "annotator_id": 0,
                    "is_useful": False,
                },
            )
            if status == 200 and body.get("committed"):
                committed += 1
        latencies.append(time.perf_counter() - start)
        if body.get("done"):
            break
    wall = time.perf_counter() - start_wall
    latencies.sort()
    return {
        "cycles": len(latencies),
        "questions_committed": committed,
        "ops_per_sec": round(len(latencies) / wall, 2),
        "p95_ms": round(1000 * latencies[int(0.95 * (len(latencies) - 1))], 3),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=4,
                        help="tenant workers behind the gateway")
    parser.add_argument("--ops", type=int, default=50,
                        help="sweep operations per client per arm")
    parser.add_argument("--e2e-ops", type=int, default=15,
                        help="real propose/answer cycles (informational arm)")
    parser.add_argument("--overload-requests", type=int, default=48,
                        help="open-loop burst size for the overload arm")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH)
    args = parser.parse_args()

    obs.enable()
    sweep_concurrency = sorted(
        {1, 2, args.tenants, 2 * args.tenants} - {0}
    )

    print(f"== sweep: {args.tenants} tenants, fixed "
          f"{1000 * SERVICE_TIME_S:.0f}ms service time ==")
    fixture = _GatewayFixture(
        tenants=args.tenants, queue_depth=64, budget=1000
    )
    try:
        sweep = [
            _sweep_arm(fixture, concurrency, args.ops)
            for concurrency in sweep_concurrency
        ]
        for arm in sweep:
            print(f"  c={arm['concurrency']:>2}: {arm['rps']:>8.1f} rps, "
                  f"p50 {arm['p50_ms']:.1f}ms, p95 {arm['p95_ms']:.1f}ms")
        knee_arm = max(sweep, key=lambda arm: arm["rps"])
        serial_rps = sweep[0]["rps"]
        knee = {
            "concurrency": knee_arm["concurrency"],
            "rps": knee_arm["rps"],
            "p95_ms": knee_arm["p95_ms"],
            "speedup": round(knee_arm["rps"] / serial_rps, 3),
            # Queueing never pushed the knee's tail anywhere near the
            # (default 10s) deadline; a True here means deadlines only bite
            # under real overload.
            "p95_bounded": knee_arm["p95_ms"] < 2000.0,
        }
        print(f"  knee at c={knee['concurrency']}: {knee['rps']:.1f} rps "
              f"({knee['speedup']}x over c=1), p95 {knee['p95_ms']:.1f}ms")
        end_to_end = _end_to_end_arm(fixture, args.e2e_ops)
        print(f"  end-to-end: {end_to_end['ops_per_sec']:.1f} "
              f"propose/answer cycles/s, p95 {end_to_end['p95_ms']:.1f}ms")
    finally:
        fixture.close()

    print(f"== overload: open-loop burst of {args.overload_requests} "
          f"against depth-2 queues ==")
    overload_fixture = _GatewayFixture(
        tenants=args.tenants, queue_depth=2, budget=1000
    )
    try:
        overload = _overload_arm(
            overload_fixture, args.overload_requests, hold_seconds=0.05
        )
    finally:
        overload_fixture.close()
    print(f"  statuses: {overload['status_counts']} "
          f"(backpressure={overload['saw_backpressure']}, "
          f"graceful={overload['graceful']})")

    payload = {
        "benchmark": "bench_gateway",
        "dataset": "directions",
        "tenants": args.tenants,
        "service_time_ms": 1000 * SERVICE_TIME_S,
        "sweep": sweep,
        "knee": knee,
        "end_to_end": end_to_end,
        "overload": overload,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    acceptance_ok = (
        knee["p95_bounded"]
        and overload["saw_backpressure"]
        and overload["graceful"]
    )
    if not acceptance_ok:
        print("ACCEPTANCE FAIL: overload was not handled gracefully",
              file=sys.stderr)
    return 0 if acceptance_ok else 1


if __name__ == "__main__":
    sys.exit(main())
