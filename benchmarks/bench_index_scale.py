"""Index/coverage scaling benchmark (columnar coverage store PR).

Measures, at 1k / 10k / 50k synthetic sentences:

* corpus-index build time (sketch merge + seal/interning),
* ``top_by_overlap`` — the new inverted-map implementation against a faithful
  re-implementation of the pre-refactor full-index scan over per-node Python
  sets,
* hierarchy refresh — Darwin's incremental re-expansion against full
  candidate regeneration,
* per-question loop latency — a Darwin run on the columnar fast paths
  against a run with the pre-refactor hot paths *emulated* (Python-set
  overlap counts, per-id benefit loops, set-difference cleanup, full
  hierarchy regeneration per accept), holding everything else (classifier,
  oracle, corpus, seeds) identical.

Results are written to ``BENCH_index_scale.json`` next to the repo root so
the performance trajectory is tracked from this PR onward.

Run with::

    PYTHONPATH=src python benchmarks/bench_index_scale.py [--sizes 1000 10000]
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List

import numpy as np

from bench_utils import bench_registry, metrics_block, timed_phase
from repro import obs
from repro.config import ClassifierConfig, DarwinConfig
from repro.core.benefit import BenefitScorer
from repro.core.candidates import CandidateOptions, generate_candidates
from repro.core.darwin import Darwin
from repro.core.hierarchy_builder import build_hierarchy
from repro.core.oracle import GroundTruthOracle
from repro.datasets import load_dataset
from repro.grammars.tokensregex import TokensRegexGrammar
from repro.index.hierarchy import RuleHierarchy
from repro.index.trie_index import CorpusIndex

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_index_scale.json"


def _time(fn, repeats: int = 5) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# --------------------------------------------------------------------- legacy
def legacy_top_by_overlap(index: CorpusIndex, legacy_sets, sentence_ids, limit):
    """The pre-refactor implementation: one set intersection per index node."""
    query = set(sentence_ids)
    scored = []
    for key in index.keys():
        overlap = len(legacy_sets[key] & query)
        if overlap > 0:
            scored.append((key, overlap))
    scored.sort(key=lambda item: (-item[1], -index.nodes[item[0]].count, repr(item[0])))
    return scored[:limit]


@contextmanager
def legacy_hot_paths(index: CorpusIndex):
    """Emulate the pre-refactor hot paths on the current code base.

    Patches (restored on exit) reproduce what every layer did before the
    columnar coverage store:

    * ``CorpusIndex.heuristic`` / ``coverage_of_expression`` — materialize a
      fresh ``frozenset`` / ``set`` copy per call, so every downstream rule
      carries Python-set coverage (which routes benefit, cleanup and rule-set
      maintenance down their per-id Python paths automatically),
    * ``CorpusIndex.overlap_count`` — Python-set membership loop per node,
    * ``BenefitScorer.new_count`` — uncached per-id loop per candidate per
      propose (the old gain filter materialized ``new_ids`` lists each time),
    * ``RuleHierarchy.cleanup`` — per-rule ``set(coverage) - covered`` copies.
    """
    legacy_sets = {key: set(index.nodes[key].sentence_ids) for key in index.keys()}

    original_heuristic = CorpusIndex.heuristic
    original_cov_expr = CorpusIndex.coverage_of_expression
    original_overlap = CorpusIndex.overlap_count
    original_new_count = BenefitScorer.new_count
    original_new_ids = BenefitScorer._new_ids_array
    original_cleanup = RuleHierarchy.cleanup

    def heuristic(self, key):
        rule = original_heuristic(self, key)
        return rule.with_coverage(frozenset(legacy_sets.get(key, rule.coverage)))

    def coverage_of_expression(self, grammar_name, expression, corpus=None):
        result = original_cov_expr(self, grammar_name, expression, corpus)
        return set(result)

    def overlap_count(self, key, mask):
        covered = legacy_sets.get(key)
        if covered is None:
            covered = set(self.nodes[key].sentence_ids)
        return sum(1 for sid in covered if sid < mask.size and mask[sid])

    def new_count(self, rule):
        return sum(1 for sid in rule.coverage if sid not in self._covered)

    def new_ids_array(self, rule):
        return np.array(
            [sid for sid in rule.coverage if sid not in self._covered],
            dtype=np.int64,
        )

    def cleanup(self, covered_ids):
        if isinstance(covered_ids, np.ndarray):
            covered_ids = set(np.flatnonzero(covered_ids).tolist())
        covered = set(covered_ids)
        removable = [
            rule for rule in self._nodes if not (set(rule.coverage) - covered)
        ]
        for rule in removable:
            self.remove(rule)
        return len(removable)

    CorpusIndex.heuristic = heuristic
    CorpusIndex.coverage_of_expression = coverage_of_expression
    CorpusIndex.overlap_count = overlap_count
    BenefitScorer.new_count = new_count
    BenefitScorer._new_ids_array = new_ids_array
    RuleHierarchy.cleanup = cleanup
    try:
        yield
    finally:
        CorpusIndex.heuristic = original_heuristic
        CorpusIndex.coverage_of_expression = original_cov_expr
        CorpusIndex.overlap_count = original_overlap
        BenefitScorer.new_count = original_new_count
        BenefitScorer._new_ids_array = original_new_ids
        RuleHierarchy.cleanup = original_cleanup


# ------------------------------------------------------------------ measures
def measure_scale(num_sentences: int, budget: int) -> Dict[str, object]:
    corpus = load_dataset("directions", num_sentences=num_sentences, seed=7)
    grammar = TokensRegexGrammar(max_phrase_len=4)

    start = time.perf_counter()
    index = CorpusIndex.build(corpus, [grammar], max_depth=10, min_coverage=2)
    build_seconds = time.perf_counter() - start

    positives = sorted(corpus.positive_ids())
    query = set(positives[: max(10, len(positives) // 5)])

    # --- top_by_overlap: inverted map vs full-index set scan ----------------
    new_overlap_s = _time(lambda: index.top_by_overlap(query, limit=50))
    legacy_sets = {key: set(index.nodes[key].sentence_ids) for key in index.keys()}
    legacy_overlap_s = _time(
        lambda: legacy_top_by_overlap(index, legacy_sets, query, limit=50)
    )
    assert index.top_by_overlap(query, limit=50) == legacy_top_by_overlap(
        index, legacy_sets, query, limit=50
    )

    # --- hierarchy refresh: incremental attach vs full regeneration --------
    options = CandidateOptions(num_candidates=2000, min_coverage=2)
    seed_positives = set(positives[: max(5, len(positives) // 10)])
    candidates = generate_candidates(index, seed_positives, options)
    new_batch = [
        sid for sid in positives if sid not in seed_positives
    ][: max(5, len(positives) // 20)]

    from repro.core.hierarchy_builder import attach_candidates

    def full_refresh():
        grown = seed_positives | set(new_batch)
        cands = generate_candidates(index, grown, options)
        build_hierarchy(cands, index=index, covered_ids=set())

    full_refresh_s = _time(full_refresh, repeats=3)

    # The incremental path mutates the hierarchy, so each timed repeat gets a
    # fresh (untimed) base hierarchy and we time only the refresh work itself
    # — exactly what Darwin._refresh_hierarchy_incremental does per accept.
    incremental_samples = []
    for _ in range(3):
        hierarchy = build_hierarchy(candidates, index=index, covered_ids=set())
        start_inc = time.perf_counter()
        affected = set()
        for sid in new_batch:
            affected.update(index.keys_covering(sid))
        fresh = []
        for key in sorted(affected, key=repr):
            if index.count(key) < 2:
                continue
            rule = index.heuristic(key)
            if rule not in hierarchy:
                fresh.append(rule)
        attach_candidates(hierarchy, fresh)
        incremental_samples.append(time.perf_counter() - start_inc)
    incremental_refresh_s = statistics.median(incremental_samples)

    # --- per-question loop latency ------------------------------------------
    config = DarwinConfig(
        budget=budget,
        num_candidates=2000,
        min_coverage=2,
        retrain_every=5,
        hierarchy_refresh="incremental",
        classifier=ClassifierConfig(model="logistic", epochs=10, embedding_dim=30),
    )
    oracle = GroundTruthOracle(corpus)

    featurizer_holder = {}

    def run_loop(run_config: DarwinConfig) -> Dict[str, float]:
        """Time only the interactive question loop.

        Index construction, embedding fitting and initial training are
        deliberately outside the timed region: the paper's interactivity
        requirement (Figs. 11-12) is about the latency *between* oracle
        questions, and the setup cost is identical in both arms.
        """
        from repro.core.oracle import BudgetedOracle

        darwin = Darwin(
            corpus, grammars=[grammar], config=run_config, index=index,
            featurizer=featurizer_holder.get("featurizer"),
        )
        featurizer_holder["featurizer"] = darwin.featurizer
        darwin.start(seed_rule_texts=["best way to get to"])
        budgeted = BudgetedOracle(base=oracle, budget=run_config.budget)
        start = time.perf_counter()
        while budgeted.queries_used < run_config.budget:
            rule = darwin.propose_next()
            if rule is None:
                break
            answer = budgeted.ask(rule, darwin.sample_for_query(rule))
            darwin.record_answer(rule, answer.is_useful)
        elapsed = time.perf_counter() - start
        timings = darwin.stopwatch.as_dict()
        questions = max(budgeted.queries_used, 1)
        truth = corpus.positive_ids()
        return {
            "total_s": elapsed,
            "questions": float(budgeted.queries_used),
            "per_question_ms": 1000.0 * elapsed / questions,
            "hierarchy_generation_s": timings.get(
                "hierarchy_generation", {}
            ).get("total", 0.0),
            "score_update_s": timings.get("score_update", {}).get("total", 0.0),
            "final_recall": darwin.rule_set.recall(truth),
        }

    with timed_phase("loop_new"):
        new_loop = run_loop(config)
    with legacy_hot_paths(index), timed_phase("loop_legacy"):
        legacy_loop = run_loop(config.with_overrides(hierarchy_refresh="full"))

    entry: Dict[str, object] = {
        "num_sentences": num_sentences,
        "index": {
            "build_seconds": round(build_seconds, 4),
            "num_nodes": len(index) - 1,
            "interned_coverages": index.store.num_interned,
            "interned_bytes": index.store.bytes_interned,
        },
        "top_by_overlap": {
            "new_ms": round(1000 * new_overlap_s, 4),
            "legacy_ms": round(1000 * legacy_overlap_s, 4),
            "speedup": round(legacy_overlap_s / max(new_overlap_s, 1e-9), 2),
        },
        "hierarchy_refresh": {
            "incremental_ms": round(1000 * incremental_refresh_s, 4),
            "full_ms": round(1000 * full_refresh_s, 4),
            "speedup": round(full_refresh_s / max(incremental_refresh_s, 1e-9), 2),
        },
        "per_question_loop": {
            "new_ms": round(new_loop["per_question_ms"], 3),
            "legacy_ms": round(legacy_loop["per_question_ms"], 3),
            "speedup": round(
                legacy_loop["per_question_ms"]
                / max(new_loop["per_question_ms"], 1e-9),
                2,
            ),
            "new": {k: round(v, 4) for k, v in new_loop.items()},
            "legacy": {k: round(v, 4) for k, v in legacy_loop.items()},
        },
    }
    if obs.get_registry().enabled:
        # p50/p95 per phase (darwin_phase_seconds + bench_phase_seconds) —
        # informational in check_regression.py, never gated.
        entry["metrics"] = metrics_block()
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[1000, 10000, 50000],
        help="corpus sizes (sentences) to measure",
    )
    parser.add_argument("--budget", type=int, default=40,
                        help="oracle budget for the per-question loop runs")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH)
    parser.add_argument(
        "--obs", action="store_true",
        help="enable repro.obs during the runs and embed a per-size "
             "'metrics' block (p50/p95 per phase) in the output JSON; "
             "leave off for perf-gate runs so the timed arms stay "
             "telemetry-free",
    )
    args = parser.parse_args()

    results: List[Dict[str, object]] = []
    for size in args.sizes:
        print(f"== {size} sentences ==")
        if args.obs:
            bench_registry()  # fresh registry per size: no series bleed-over
        entry = measure_scale(size, budget=args.budget)
        if args.obs:
            obs.disable()
        results.append(entry)
        overlap = entry["top_by_overlap"]
        refresh = entry["hierarchy_refresh"]
        loop = entry["per_question_loop"]
        print(f"  index build        : {entry['index']['build_seconds']:.2f}s "
              f"({entry['index']['num_nodes']} nodes, "
              f"{entry['index']['interned_coverages']} interned coverages)")
        print(f"  top_by_overlap     : {overlap['new_ms']:.3f}ms vs "
              f"{overlap['legacy_ms']:.3f}ms legacy  ({overlap['speedup']}x)")
        print(f"  hierarchy refresh  : {refresh['incremental_ms']:.2f}ms vs "
              f"{refresh['full_ms']:.2f}ms full  ({refresh['speedup']}x)")
        print(f"  per-question loop  : {loop['new_ms']:.2f}ms vs "
              f"{loop['legacy_ms']:.2f}ms legacy  ({loop['speedup']}x)")

    payload = {
        "benchmark": "bench_index_scale",
        "dataset": "directions",
        "budget": args.budget,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
