"""Figure 14: effect of classifier training epochs on Darwin(HS)."""

from __future__ import annotations

from repro.experiments.sensitivity import epoch_sweep

from bench_utils import extra_info_from, report_series_over

EPOCHS = (4, 6, 8, 10, 12)
TARGET_COVERAGE = 0.75


def test_fig14_classifier_epochs(benchmark, musicians_setting, bench_budget):
    """Questions needed to label 75% of the positives vs. training epochs."""
    result = benchmark.pedantic(
        epoch_sweep,
        kwargs={
            "setting": musicians_setting,
            "epochs": EPOCHS,
            "budget": bench_budget,
            "target_coverage": TARGET_COVERAGE,
        },
        rounds=1, iterations=1,
    )
    report_series_over(
        result, "epochs", EPOCHS,
        title="Figure 14 musicians: #questions to reach 75% coverage vs. epochs",
    )
    benchmark.extra_info.update(extra_info_from(result))
    questions = result.series["questions_to_target"]
    # Paper shape: robust to classifier over/under-fitting — every setting
    # reaches the target within the budget, with limited spread.
    assert all(q <= bench_budget for q in questions)
    assert max(questions) - min(questions) <= bench_budget * 0.75
