"""Crowd session throughput benchmark (crowd subsystem PR).

Measures, on a seeded professions run:

* **serial-equivalence** — a `CrowdCoordinator` with K=4 annotators,
  ``redundancy=1`` and ``batch_size=1`` must reproduce the serial
  ``Darwin.run`` accepted-rule set (and history) exactly,
* **throughput** — answers/sec of the asyncio crowd runner (K annotators,
  batched retrains) against the serial loop, with identical simulated
  annotator latency per answer, plus the questions-to-recall curve of both.

Results are written to ``BENCH_crowd.json`` next to the repo root.

Run with::

    PYTHONPATH=src python benchmarks/bench_crowd.py [--budget 40]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, Optional

from repro.config import ClassifierConfig, CrowdConfig, DarwinConfig
from repro.core.darwin import Darwin, DarwinResult
from repro.core.oracle import GroundTruthOracle, Oracle, OracleAnswer, OracleQuery
from repro.crowd import run_crowd
from repro.datasets import load_dataset
from repro.datasets.registry import load_bank

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_crowd.json"

RECALL_TARGETS = (0.5, 0.8, 0.9)


class LatencyOracle(Oracle):
    """Wraps an oracle with a fixed per-answer think time (blocking sleep).

    This is the serial arm's handicap: one annotator who takes
    ``latency`` seconds per judgement, answering questions one at a time.
    """

    def __init__(self, base: Oracle, latency: float) -> None:
        self.base = base
        self.latency = latency

    def answer(self, query: OracleQuery) -> OracleAnswer:
        if self.latency > 0:
            time.sleep(self.latency)
        return self.base.answer(query)


def questions_to_recall(result: DarwinResult) -> Dict[str, Optional[int]]:
    """First question number reaching each recall target (None if never)."""
    reached: Dict[str, Optional[int]] = {}
    for target in RECALL_TARGETS:
        number = None
        for record in result.history:
            if record.recall >= target:
                number = record.question_number
                break
        reached[f"{target:.1f}"] = number
    return reached


def run_serial(
    corpus, index, featurizer, config: DarwinConfig, seed_rule: str, latency: float
) -> Dict[str, object]:
    darwin = Darwin(corpus, config=config, index=index, featurizer=featurizer)
    oracle = LatencyOracle(GroundTruthOracle(corpus), latency)
    start = time.perf_counter()
    result = darwin.run(oracle, seed_rule_texts=[seed_rule])
    wall = time.perf_counter() - start
    return {
        "result": result,
        "wall_seconds": wall,
        "answers_per_sec": result.queries_used / max(wall, 1e-9),
        "retrains": darwin.trainer.retrain_count,
    }


def run_crowd_arm(
    corpus, index, featurizer, config: DarwinConfig, seed_rule: str,
    crowd_config: CrowdConfig,
) -> Dict[str, object]:
    darwin = Darwin(corpus, config=config, index=index, featurizer=featurizer)
    outcome = run_crowd(darwin, config=crowd_config, seed_rule_texts=[seed_rule])
    return {
        "result": outcome.darwin_result,
        "wall_seconds": outcome.wall_seconds,
        "answers_per_sec": outcome.answers_per_sec,
        "votes": outcome.crowd.votes_collected,
        "retrains": darwin.trainer.retrain_count,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="professions")
    parser.add_argument("--num-sentences", type=int, default=2000)
    parser.add_argument("--budget", type=int, default=40)
    parser.add_argument("--annotators", type=int, default=4)
    parser.add_argument("--redundancy", type=int, default=1)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--latency", type=float, default=0.05,
                        help="simulated per-answer think time in seconds")
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH)
    args = parser.parse_args()

    corpus = load_dataset(args.dataset, num_sentences=args.num_sentences,
                          seed=args.seed, parse_trees=False)
    seed_rule = load_bank(args.dataset).default_seed_rules[0]
    config = DarwinConfig(
        budget=args.budget,
        num_candidates=1000,
        classifier=ClassifierConfig(epochs=args.epochs),
    )
    # Shared index/featurizer: both arms probe the same CoverageStore-backed
    # state, which is the whole point of multiplexing sessions over it.
    prototype = Darwin(corpus, config=config)
    index, featurizer = prototype.index, prototype.featurizer
    print(f"dataset={args.dataset} sentences={len(corpus)} "
          f"budget={args.budget} latency={1000 * args.latency:.0f}ms "
          f"K={args.annotators}")

    # --- serial-equivalence: K=4, batch_size=1, redundancy=1 ----------------
    serial_exact = run_serial(corpus, index, featurizer, config, seed_rule,
                              latency=0.0)
    crowd_exact = run_crowd_arm(
        corpus, index, featurizer, config, seed_rule,
        CrowdConfig(num_annotators=args.annotators, redundancy=1, batch_size=1,
                    budget=args.budget, annotator_latency=0.0, seed=args.seed),
    )
    serial_rules = sorted(serial_exact["result"].accepted_rules())
    crowd_rules = sorted(crowd_exact["result"].accepted_rules())
    rules_match = serial_rules == crowd_rules
    history_match = [
        (h.rule, h.answer) for h in serial_exact["result"].history
    ] == [(h.rule, h.answer) for h in crowd_exact["result"].history]
    print(f"  equivalence (batch_size=1): rule-set match={rules_match}, "
          f"history match={history_match}")
    if not rules_match:
        print(f"    serial: {serial_rules}\n    crowd : {crowd_rules}")

    # --- throughput: serial+latency vs batched crowd ------------------------
    serial_arm = run_serial(corpus, index, featurizer, config, seed_rule,
                            latency=args.latency)
    crowd_arm = run_crowd_arm(
        corpus, index, featurizer, config, seed_rule,
        CrowdConfig(num_annotators=args.annotators, redundancy=args.redundancy,
                    batch_size=args.batch_size, budget=args.budget,
                    annotator_latency=args.latency, latency_jitter=0.0,
                    seed=args.seed),
    )
    speedup = crowd_arm["answers_per_sec"] / max(serial_arm["answers_per_sec"], 1e-9)
    print(f"  serial : {serial_arm['answers_per_sec']:.2f} answers/s "
          f"({serial_arm['result'].queries_used} questions, "
          f"{serial_arm['retrains']} retrains, {serial_arm['wall_seconds']:.2f}s)")
    print(f"  crowd  : {crowd_arm['answers_per_sec']:.2f} answers/s "
          f"({crowd_arm['result'].queries_used} questions, "
          f"{crowd_arm['retrains']} retrains, {crowd_arm['wall_seconds']:.2f}s)")
    print(f"  speedup: {speedup:.2f}x at K={args.annotators}, "
          f"batch_size={args.batch_size}")
    serial_qtr = questions_to_recall(serial_arm["result"])
    crowd_qtr = questions_to_recall(crowd_arm["result"])
    print(f"  questions-to-recall  serial={serial_qtr}  crowd={crowd_qtr}")

    payload = {
        "benchmark": "bench_crowd",
        "dataset": args.dataset,
        "num_sentences": args.num_sentences,
        "budget": args.budget,
        "annotators": args.annotators,
        "redundancy": args.redundancy,
        "batch_size": args.batch_size,
        "latency_s": args.latency,
        "equivalence": {
            "rule_set_match": rules_match,
            "history_match": history_match,
            "serial_rules": serial_rules,
            "crowd_rules": crowd_rules,
        },
        "throughput": {
            "serial_answers_per_sec": round(serial_arm["answers_per_sec"], 3),
            "crowd_answers_per_sec": round(crowd_arm["answers_per_sec"], 3),
            "speedup": round(speedup, 2),
            "serial_wall_s": round(serial_arm["wall_seconds"], 4),
            "crowd_wall_s": round(crowd_arm["wall_seconds"], 4),
            "serial_retrains": serial_arm["retrains"],
            "crowd_retrains": crowd_arm["retrains"],
            "crowd_votes": crowd_arm["votes"],
        },
        "questions_to_recall": {"serial": serial_qtr, "crowd": crowd_qtr},
        "final_recall": {
            "serial": round(serial_arm["result"].final_recall, 4),
            "crowd": round(crowd_arm["result"].final_recall, 4),
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
