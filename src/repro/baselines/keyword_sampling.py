"""Keyword-sampling baseline (KS in Section 4.4).

An annotator provides ~10 task-relevant keywords; the corpus is filtered to
sentences containing any of them, and label queries are spent on random
sentences from the filtered pool. The classifier is retrained after every
answered query, and its F-score tracked per question.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..classifier.features import SentenceFeaturizer
from ..classifier.trainer import ClassifierTrainer
from ..config import ClassifierConfig
from ..errors import ConfigurationError
from ..text.corpus import Corpus
from ..utils.rng import derive_rng
from .active_learning import InstanceLabelingResult


class KeywordSamplingBaseline:
    """Random instance labeling restricted to a keyword-filtered pool.

    Args:
        corpus: Fully labeled corpus.
        keywords: The annotator-supplied filter keywords (the paper uses 10
            distinct keywords per task; the dataset generators expose a
            ``keyword_hints`` list used by the experiments).
        classifier_config / featurizer / seed: As for the AL baseline.
    """

    def __init__(
        self,
        corpus: Corpus,
        keywords: Sequence[str],
        classifier_config: Optional[ClassifierConfig] = None,
        featurizer: Optional[SentenceFeaturizer] = None,
        seed: int = 0,
    ) -> None:
        if not corpus.has_labels():
            raise ConfigurationError("KeywordSamplingBaseline needs a labeled corpus")
        if not keywords:
            raise ConfigurationError("at least one keyword is required")
        self.corpus = corpus
        self.keywords = [k.lower() for k in keywords]
        self.classifier_config = classifier_config or ClassifierConfig()
        self.featurizer = featurizer or SentenceFeaturizer.fit(
            corpus, embedding_dim=self.classifier_config.embedding_dim, seed=seed
        )
        self.seed = seed

    def filtered_pool(self) -> List[int]:
        """Ids of sentences containing at least one keyword."""
        keyword_set = set(self.keywords)
        return [
            sentence.sentence_id
            for sentence in self.corpus
            if keyword_set & set(sentence.tokens)
        ]

    def run(self, budget: int) -> InstanceLabelingResult:
        """Spend ``budget`` label queries on random sentences from the pool."""
        if budget <= 0:
            raise ConfigurationError("budget must be positive")
        rng = derive_rng(self.seed, "keyword-sampling", self.corpus.name)
        pool = self.filtered_pool()
        truth = self.corpus.positive_ids()
        trainer = ClassifierTrainer(self.corpus, self.featurizer, config=self.classifier_config)

        result = InstanceLabelingResult()
        known_positives: Set[int] = set()
        labeled: Set[int] = set()
        order = list(rng.permutation(pool)) if pool else []

        for question in range(budget):
            if not order:
                break
            chosen = int(order.pop())
            labeled.add(chosen)
            if chosen in truth:
                known_positives.add(chosen)
            if known_positives:
                trainer.retrain(known_positives)
            result.labeled_ids.append(chosen)
            result.queries_used = question + 1
            result.f1_curve.append(
                trainer.f1_against(truth) if known_positives else 0.0
            )
            found = len(labeled & truth)
            result.recall_curve.append(found / len(truth) if truth else 0.0)

        result.positive_ids = known_positives
        return result
