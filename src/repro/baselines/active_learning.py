"""Active-learning baseline (AL in Section 4.4).

AL spends each oracle query on a single *instance* label instead of a rule
verification: it picks the sentence whose current prediction is most uncertain
(maximum entropy), asks for its ground-truth label, retrains, and repeats. Its
classifier F-score is tracked after every question (Figure 9e-h / 10b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from ..classifier.features import SentenceFeaturizer
from ..classifier.trainer import ClassifierTrainer
from ..config import ClassifierConfig
from ..errors import ConfigurationError
from ..text.corpus import Corpus
from ..utils.rng import derive_rng


@dataclass
class InstanceLabelingResult:
    """Result of an instance-labeling baseline (AL or KS).

    Attributes:
        labeled_ids: Sentence ids whose labels were requested.
        positive_ids: The subset of those that turned out positive.
        f1_curve: Classifier F1 after each question.
        recall_curve: Fraction of ground-truth positives among labeled ids
            after each question (a much weaker notion of coverage than
            Darwin's rule coverage — included for completeness).
        queries_used: Number of label requests made.
    """

    labeled_ids: List[int] = field(default_factory=list)
    positive_ids: Set[int] = field(default_factory=set)
    f1_curve: List[float] = field(default_factory=list)
    recall_curve: List[float] = field(default_factory=list)
    queries_used: int = 0

    @property
    def final_f1(self) -> float:
        """Classifier F1 after the last question (0.0 with no questions)."""
        return self.f1_curve[-1] if self.f1_curve else 0.0


class ActiveLearningBaseline:
    """Entropy-based uncertainty sampling with per-question retraining.

    Args:
        corpus: Fully labeled corpus (labels are revealed one query at a time).
        classifier_config: Classifier hyper-parameters (same family as Darwin's
            benefit classifier, per the paper's "same deep learning based
            classifier for all techniques").
        featurizer: Optional pre-fitted featurizer (reused across baselines).
        retrain_every: Retrain after this many new labels (1 = every query).
    """

    def __init__(
        self,
        corpus: Corpus,
        classifier_config: Optional[ClassifierConfig] = None,
        featurizer: Optional[SentenceFeaturizer] = None,
        retrain_every: int = 1,
        seed: int = 0,
    ) -> None:
        if not corpus.has_labels():
            raise ConfigurationError("ActiveLearningBaseline needs a labeled corpus")
        self.corpus = corpus
        self.classifier_config = classifier_config or ClassifierConfig()
        self.featurizer = featurizer or SentenceFeaturizer.fit(
            corpus, embedding_dim=self.classifier_config.embedding_dim, seed=seed
        )
        self.retrain_every = max(1, retrain_every)
        self.seed = seed

    def run(
        self,
        budget: int,
        seed_positive_ids: Optional[Sequence[int]] = None,
        seed_negative_ids: Optional[Sequence[int]] = None,
    ) -> InstanceLabelingResult:
        """Run uncertainty sampling for ``budget`` label queries."""
        if budget <= 0:
            raise ConfigurationError("budget must be positive")
        rng = derive_rng(self.seed, "active-learning", self.corpus.name)
        truth = self.corpus.positive_ids()

        labeled: List[int] = []
        known_positives: Set[int] = set(seed_positive_ids or [])
        known_negatives: Set[int] = set(seed_negative_ids or [])
        labeled.extend(sorted(known_positives | known_negatives))

        if not known_positives:
            # Bootstrap with one random positive and one random negative so the
            # first classifier can be trained at all (the paper seeds AL with
            # the same couple of positives Darwin starts from).
            positives = sorted(truth)
            if positives:
                known_positives.add(int(rng.choice(positives)))
            negatives = sorted(set(range(len(self.corpus))) - truth)
            if negatives:
                known_negatives.add(int(rng.choice(negatives)))
            labeled = sorted(known_positives | known_negatives)

        trainer = ClassifierTrainer(self.corpus, self.featurizer, config=self.classifier_config)
        result = InstanceLabelingResult()

        for question in range(budget):
            if known_positives:
                trainer.retrain(set(known_positives))
            scores = trainer.score_corpus()
            candidate_ids = [i for i in range(len(self.corpus)) if i not in set(labeled)]
            if not candidate_ids:
                break
            chosen = self._most_uncertain(scores, candidate_ids)
            labeled.append(chosen)
            is_positive = chosen in truth
            if is_positive:
                known_positives.add(chosen)
            else:
                known_negatives.add(chosen)
            result.labeled_ids.append(chosen)
            result.queries_used = question + 1
            result.f1_curve.append(trainer.f1_against(truth))
            found = len(set(labeled) & truth)
            result.recall_curve.append(found / len(truth) if truth else 0.0)

        result.positive_ids = known_positives & truth
        return result

    @staticmethod
    def _most_uncertain(scores: np.ndarray, candidate_ids: List[int]) -> int:
        """The candidate whose predicted probability is closest to 0.5."""
        candidates = np.array(candidate_ids)
        uncertainty = np.abs(scores[candidates] - 0.5)
        return int(candidates[int(np.argmin(uncertainty))])
