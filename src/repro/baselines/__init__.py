"""Baseline techniques Darwin is compared against in the evaluation.

* :class:`SnubaBaseline` — automatic heuristic synthesis from a labeled subset
  (Figures 7 and 8),
* :class:`HighPrecisionBaseline` (HighP) and :class:`HighCoverageBaseline`
  (HighC) — simpler oracle-driven rule selectors (Figures 9 and 10),
* :class:`ActiveLearningBaseline` (AL) — entropy-based instance labeling,
* :class:`KeywordSamplingBaseline` (KS) — keyword-filtered random labeling.
"""

from .snuba import SnubaBaseline, SnubaResult
from .rule_baselines import HighCoverageBaseline, HighPrecisionBaseline, RuleBaselineResult
from .active_learning import ActiveLearningBaseline, InstanceLabelingResult
from .keyword_sampling import KeywordSamplingBaseline

__all__ = [
    "SnubaBaseline",
    "SnubaResult",
    "HighPrecisionBaseline",
    "HighCoverageBaseline",
    "RuleBaselineResult",
    "ActiveLearningBaseline",
    "InstanceLabelingResult",
    "KeywordSamplingBaseline",
]
