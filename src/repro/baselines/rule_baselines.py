"""Oracle-driven rule-selection baselines: HighP and HighC (Section 4.3).

Both reuse Darwin's corpus index, classifier and oracle, but replace the
hierarchy traversal with a one-dimensional selection criterion:

* **HighP** submits the candidate whose coverage the classifier believes is
  most *precise* (highest mean predicted probability), ignoring how many
  sentences it covers — so it tends to pick tiny, redundant rules.
* **HighC** submits the candidate with the largest raw coverage, ignoring
  expected precision — most of its suggestions get rejected by the oracle
  (which is why the paper omits it from the plots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..classifier.features import SentenceFeaturizer
from ..classifier.trainer import ClassifierTrainer
from ..config import DEFAULT_CONFIG, DarwinConfig
from ..core.candidates import CandidateOptions, generate_candidates
from ..core.oracle import BudgetedOracle, Oracle
from ..errors import BudgetExhaustedError, ConfigurationError
from ..grammars.base import HeuristicGrammar
from ..grammars.tokensregex import TokensRegexGrammar
from ..index.trie_index import CorpusIndex
from ..rules.heuristic import LabelingHeuristic
from ..rules.rule_set import RuleSet
from ..text.corpus import Corpus


@dataclass
class RuleBaselineResult:
    """History-compatible result for the rule-selection baselines.

    Attributes:
        rule_set: Accepted rules.
        covered_ids: Union coverage ``P``.
        recall_curve: Recall of ``P`` after each oracle question.
        f1_curve: Classifier F1 after each oracle question.
        queries_used: Oracle queries consumed.
    """

    rule_set: RuleSet
    covered_ids: Set[int]
    recall_curve: List[float] = field(default_factory=list)
    f1_curve: List[float] = field(default_factory=list)
    queries_used: int = 0

    @property
    def final_recall(self) -> float:
        """Recall after the last question (0.0 with no questions)."""
        return self.recall_curve[-1] if self.recall_curve else 0.0


class _GreedyRuleBaseline:
    """Shared loop: select a candidate by some criterion, ask the oracle."""

    criterion: str = "abstract"

    def __init__(
        self,
        corpus: Corpus,
        grammars: Optional[Sequence[HeuristicGrammar]] = None,
        config: Optional[DarwinConfig] = None,
        index: Optional[CorpusIndex] = None,
        featurizer: Optional[SentenceFeaturizer] = None,
    ) -> None:
        self.corpus = corpus
        self.config = config or DEFAULT_CONFIG
        self.grammars = list(grammars or [TokensRegexGrammar(self.config.max_phrase_len)])
        self.index = index or CorpusIndex.build(
            corpus,
            self.grammars,
            max_depth=self.config.max_sketch_depth,
            min_coverage=self.config.min_coverage,
        )
        self.featurizer = featurizer or SentenceFeaturizer.fit(
            corpus,
            embedding_dim=self.config.classifier.embedding_dim,
            seed=self.config.classifier.seed,
        )

    # ------------------------------------------------------------------- run
    def run(
        self,
        oracle: Oracle,
        seed_rule_texts: Sequence[str],
        budget: Optional[int] = None,
        evaluation_positive_ids: Optional[Set[int]] = None,
    ) -> RuleBaselineResult:
        """Run the greedy select-and-verify loop against ``oracle``."""
        budget = budget or self.config.budget
        budgeted = oracle if isinstance(oracle, BudgetedOracle) else BudgetedOracle(
            base=oracle, budget=budget
        )
        grammar = self.grammars[0]
        rule_set = RuleSet()
        positives: Set[int] = set()
        for text in seed_rule_texts:
            expression = grammar.parse(text)
            coverage = self.index.coverage_of_expression(grammar.name, expression, self.corpus)
            rule = LabelingHeuristic(grammar=grammar, expression=expression).with_coverage(coverage)
            rule_set.add(rule)
            positives.update(coverage)
        if not positives:
            raise ConfigurationError("seed rules produced no coverage")

        trainer = ClassifierTrainer(self.corpus, self.featurizer, config=self.config.classifier)
        trainer.retrain(positives)

        truth = evaluation_positive_ids
        if truth is None and self.corpus.has_labels():
            truth = self.corpus.positive_ids()
        truth = truth or set()

        queried: Set[LabelingHeuristic] = set()
        recall_curve: List[float] = []
        f1_curve: List[float] = []

        options = CandidateOptions(
            num_candidates=self.config.num_candidates,
            min_coverage=self.config.min_coverage,
        )
        candidates = generate_candidates(self.index, positives, options)

        while budgeted.queries_used < budget:
            pool = [c for c in candidates if c not in queried]
            if not pool:
                break
            scores = trainer.score_corpus()
            rule = self._select(pool, scores, positives)
            if rule is None:
                break
            queried.add(rule)
            try:
                answer = budgeted.ask(rule, sorted(rule.coverage)[: self.config.oracle_sample_size])
            except BudgetExhaustedError:
                break
            if answer.is_useful:
                new_positives = rule.new_positives(positives)
                rule_set.add(rule)
                positives.update(rule.coverage)
                if new_positives:
                    trainer.retrain(positives)
                    candidates = generate_candidates(self.index, positives, options)
            recall_curve.append(rule_set.recall(truth) if truth else 0.0)
            f1_curve.append(trainer.f1_against(truth) if truth else 0.0)

        return RuleBaselineResult(
            rule_set=rule_set,
            covered_ids=rule_set.covered_ids,
            recall_curve=recall_curve,
            f1_curve=f1_curve,
            queries_used=budgeted.queries_used,
        )

    # ----------------------------------------------------------- selection
    def _select(
        self,
        pool: List[LabelingHeuristic],
        scores: np.ndarray,
        positives: Set[int],
    ) -> Optional[LabelingHeuristic]:
        raise NotImplementedError


class HighPrecisionBaseline(_GreedyRuleBaseline):
    """HighP: pick the candidate with the highest expected precision."""

    criterion = "high-precision"

    def _select(
        self,
        pool: List[LabelingHeuristic],
        scores: np.ndarray,
        positives: Set[int],
    ) -> Optional[LabelingHeuristic]:
        best_rule = None
        best_key = (-1.0, 0, "")
        for rule in pool:
            new_ids = [i for i in rule.coverage if i not in positives]
            if not new_ids:
                continue
            expected_precision = float(scores[np.array(new_ids)].mean())
            key = (expected_precision, -rule.coverage_size, rule.render())
            # Prefer higher precision; among ties prefer *smaller* coverage,
            # which is exactly HighP's failure mode.
            if best_rule is None or key > best_key:
                best_rule, best_key = rule, key
        return best_rule


class HighCoverageBaseline(_GreedyRuleBaseline):
    """HighC: pick the candidate with the largest raw coverage."""

    criterion = "high-coverage"

    def _select(
        self,
        pool: List[LabelingHeuristic],
        scores: np.ndarray,
        positives: Set[int],
    ) -> Optional[LabelingHeuristic]:
        best_rule = None
        best_key = (-1, "")
        for rule in pool:
            new_count = len([i for i in rule.coverage if i not in positives])
            if new_count == 0:
                continue
            key = (new_count, rule.render())
            if best_rule is None or key > best_key:
                best_rule, best_key = rule, key
        return best_rule
