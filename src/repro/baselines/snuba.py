"""A reimplementation of the Snuba baseline (Varma & Ré, VLDB 2019).

Snuba automatically synthesizes labeling heuristics from a small *labeled*
subset of the data: it enumerates candidate heuristics from cheap primitives,
scores each on the labeled subset, and greedily selects a diverse committee.
It never queries an oracle — its supervision budget is the labeled subset.

The reproduction implements the parts that drive the paper's Figure 7/8
comparison:

* primitives are token n-grams drawn from the *labeled positive* sentences
  (Snuba's text primitives are bag-of-words features; n-gram decision stumps
  over them are the heuristics it ends up with),
* each candidate is scored by F1 on the labeled subset, with an abstain-aware
  precision estimate,
* selection is iterative: the candidate with the best score on the labeled
  points not yet covered is added until no candidate clears the precision
  threshold or the committee size cap is reached.

Because heuristics are induced only from evidence present in the labeled
subset, Snuba cannot discover rules for positive modes absent from the seed —
the behaviour Figure 8's biased-seed experiment isolates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import DatasetError
from ..evaluation.metrics import binary_f1, coverage_recall
from ..grammars.tokensregex import TokensRegexGrammar
from ..rules.heuristic import LabelingHeuristic
from ..rules.rule_set import RuleSet
from ..text.corpus import Corpus


@dataclass
class SnubaResult:
    """Output of a Snuba run.

    Attributes:
        rule_set: The synthesized heuristics (with corpus-wide coverage).
        covered_ids: Union coverage over the *full* corpus.
        coverage: Recall of the union coverage over ground-truth positives.
        labeled_subset_size: Number of labeled examples Snuba was given.
        candidate_count: Number of candidate heuristics considered.
    """

    rule_set: RuleSet
    covered_ids: Set[int]
    coverage: float
    labeled_subset_size: int
    candidate_count: int


class SnubaBaseline:
    """Heuristic synthesis from a labeled subset.

    Args:
        corpus: The full corpus (used to compute corpus-wide coverage).
        max_phrase_len: Maximum n-gram length of candidate heuristics.
        precision_threshold: Candidates below this precision on the labeled
            subset are never selected (Snuba's pruning).
        max_heuristics: Committee size cap.
        min_labeled_coverage: A candidate must match at least this many labeled
            examples to have a reliable estimate.
    """

    def __init__(
        self,
        corpus: Corpus,
        max_phrase_len: int = 3,
        precision_threshold: float = 0.7,
        max_heuristics: int = 25,
        min_labeled_coverage: int = 2,
    ) -> None:
        self.corpus = corpus
        self.grammar = TokensRegexGrammar(max_phrase_len=max_phrase_len)
        self.max_phrase_len = max_phrase_len
        self.precision_threshold = precision_threshold
        self.max_heuristics = max_heuristics
        self.min_labeled_coverage = min_labeled_coverage

    # -------------------------------------------------------------------- run
    def run(
        self,
        labeled_ids: Sequence[int],
        labels: Optional[Dict[int, bool]] = None,
        evaluation_positive_ids: Optional[Set[int]] = None,
    ) -> SnubaResult:
        """Synthesize heuristics from the labeled subset ``labeled_ids``.

        Args:
            labeled_ids: Sentence ids of the labeled subset.
            labels: Ground-truth labels for those ids; defaults to the corpus
                labels when present.
            evaluation_positive_ids: Positives used for the coverage metric
                (defaults to the corpus positives).
        """
        labeled_ids = list(labeled_ids)
        if not labeled_ids:
            raise DatasetError("Snuba requires a non-empty labeled subset")
        if labels is None:
            if not self.corpus.has_labels():
                raise DatasetError("labels are required when the corpus is unlabeled")
            labels = {i: bool(self.corpus[i].label) for i in labeled_ids}
        labeled_positives = {i for i in labeled_ids if labels.get(i)}
        labeled_negatives = {i for i in labeled_ids if not labels.get(i)}

        candidates = self._generate_candidates(labeled_positives)
        selected = self._select_committee(candidates, labeled_positives, labeled_negatives)

        rule_set = RuleSet()
        for rule in selected:
            rule_set.add(rule)
        truth = evaluation_positive_ids
        if truth is None and self.corpus.has_labels():
            truth = self.corpus.positive_ids()
        truth = truth or set()
        coverage = coverage_recall(rule_set.covered_ids, truth)
        return SnubaResult(
            rule_set=rule_set,
            covered_ids=rule_set.covered_ids,
            coverage=coverage,
            labeled_subset_size=len(labeled_ids),
            candidate_count=len(candidates),
        )

    # -------------------------------------------------------------- internals
    def _generate_candidates(
        self, labeled_positives: Set[int]
    ) -> List[LabelingHeuristic]:
        """Candidate heuristics: n-grams occurring in labeled positive sentences.

        Corpus-wide coverage of every candidate is computed in a single pass
        over the corpus (an inverted n-gram list restricted to the candidate
        expressions), keeping the run linear in corpus size.
        """
        expressions: Set[Tuple[str, ...]] = set()
        for sentence_id in labeled_positives:
            sentence = self.corpus[sentence_id]
            for gram in sentence.ngrams(self.max_phrase_len):
                expressions.add(gram)
        coverage: Dict[Tuple[str, ...], Set[int]] = {expr: set() for expr in expressions}
        for sentence in self.corpus:
            for gram in set(sentence.ngrams(self.max_phrase_len)):
                bucket = coverage.get(gram)
                if bucket is not None:
                    bucket.add(sentence.sentence_id)
        candidates: List[LabelingHeuristic] = []
        for expression in expressions:
            rule = LabelingHeuristic(grammar=self.grammar, expression=expression)
            candidates.append(rule.with_coverage(coverage[expression]))
        return candidates

    def _select_committee(
        self,
        candidates: List[LabelingHeuristic],
        labeled_positives: Set[int],
        labeled_negatives: Set[int],
    ) -> List[LabelingHeuristic]:
        """Greedy F1-and-diversity selection on the labeled subset."""
        labeled = labeled_positives | labeled_negatives
        selected: List[LabelingHeuristic] = []
        covered_positives: Set[int] = set()

        scored: List[Tuple[float, float, LabelingHeuristic]] = []
        for rule in candidates:
            labeled_coverage = set(rule.coverage) & labeled
            if len(labeled_coverage) < self.min_labeled_coverage:
                continue
            hits = labeled_coverage & labeled_positives
            precision = len(hits) / len(labeled_coverage)
            if precision < self.precision_threshold:
                continue
            f1 = binary_f1(labeled_coverage, labeled_positives)
            scored.append((f1, precision, rule))

        scored.sort(key=lambda item: (-item[0], -item[1], item[2].render()))

        for _, _, rule in scored:
            if len(selected) >= self.max_heuristics:
                break
            new_hits = (set(rule.coverage) & labeled_positives) - covered_positives
            if not new_hits and selected:
                continue
            selected.append(rule)
            covered_positives.update(set(rule.coverage) & labeled_positives)
        return selected
