"""``repro.fleet`` — cross-process serving: supervisor, workers, pipe RPC.

One supervisor process builds the shared substrate (sealed index, frozen
read-only coverage arena, fitted featurizer + shared-memory feature slab),
detaches the arena mapping, and forks N single-threaded worker processes
that each **reopen the arena by path** and host a disjoint partition of
tenants in their own :class:`~repro.serving.TenantPool`. The supervisor
routes gateway requests over stdlib pipe RPC, respawns crashed workers from
autosaved tenant checkpoints, and migrates tenants between workers by
shipping their overlay checkpoint.
"""

from .rpc import WorkerClient, WorkerDiedError
from .supervisor import FleetSupervisor
from .worker import process_memory_bytes, worker_main

__all__ = [
    "FleetSupervisor",
    "WorkerClient",
    "WorkerDiedError",
    "process_memory_bytes",
    "worker_main",
]
