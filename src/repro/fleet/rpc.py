"""Pipe RPC between the fleet supervisor and its worker processes.

One duplex :func:`multiprocessing.Pipe` per worker, strict request/response:
the supervisor sends ``{"op": ..., "payload": {...}}`` and blocks (under a
per-worker lock, so concurrent gateway threads serialize) until the worker
answers ``{"ok": True, "value": ...}`` or ``{"ok": False, "error": {...}}``.
Workers are single-threaded — one recv/dispatch/send loop — which is the
whole concurrency story on their side: a worker's tenants are serialized by
construction, exactly like the in-process gateway's per-tenant queues.

Errors cross the pipe *by name*: the worker encodes ``type``/``message`` (+
``retry_after`` for gateway admission errors), and the supervisor re-raises
a real instance looked up in a registry built from :mod:`repro.errors` and
:mod:`repro.gateway.wire` — so a worker-side ``OracleError`` still maps to
HTTP 409 at the gateway, process boundary or not. A broken or timed-out pipe
raises :class:`WorkerDiedError`, the supervisor's signal to respawn.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Mapping, Optional

from .. import errors as _errors
from ..errors import ReproError
from ..gateway import wire as _wire
from ..gateway.wire import GatewayError


class WorkerDiedError(ReproError):
    """The worker's pipe broke or a call timed out; the process is presumed
    dead (or wedged, which the supervisor treats the same way: respawn)."""


def _error_registry() -> Dict[str, type]:
    registry: Dict[str, type] = {}
    for module in (_errors, _wire):
        for name in dir(module):
            obj = getattr(module, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not Exception
            ):
                registry[obj.__name__] = obj
    return registry


_ERROR_REGISTRY = _error_registry()


def encode_error(exc: BaseException) -> Dict[str, Any]:
    """Flatten an exception for the pipe (type name, message, retry hint)."""
    payload: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return payload


def decode_error(spec: Mapping[str, Any]) -> Exception:
    """Rebuild a raisable exception from :func:`encode_error` output.

    Unknown types degrade to :class:`~repro.errors.ReproError` with the
    original type name prefixed, so nothing is ever silently swallowed.
    """
    name = str(spec.get("type", "ReproError"))
    message = str(spec.get("message", ""))
    cls = _ERROR_REGISTRY.get(name)
    if cls is None:
        return ReproError(f"{name}: {message}")
    try:
        if issubclass(cls, GatewayError):
            return cls(message, retry_after=spec.get("retry_after"))
        return cls(message)
    except Exception:  # pragma: no cover - exotic constructor signature
        return ReproError(f"{name}: {message}")


class WorkerClient:
    """The supervisor's handle to one worker: process + pipe + call lock."""

    def __init__(self, worker_id: int, process, connection) -> None:
        self.worker_id = worker_id
        self.process = process
        self.connection = connection
        self._lock = threading.Lock()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def call(
        self, op: str, timeout: float, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        """One request/response round-trip; raises the worker's exception.

        The lock serializes callers (gateway threads, the monitor, the
        bench driver) onto the single pipe; ``timeout`` bounds the wait for
        the *response*, not the queueing behind other callers.
        """
        with self._lock:
            try:
                self.connection.send({"op": op, "payload": payload or {}})
                if not self.connection.poll(timeout):
                    raise WorkerDiedError(
                        f"worker {self.worker_id} (pid {self.pid}) did not "
                        f"answer op {op!r} within {timeout:.0f}s"
                    )
                response = self.connection.recv()
            except WorkerDiedError:
                raise
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerDiedError(
                    f"worker {self.worker_id} (pid {self.pid}) pipe broke "
                    f"during op {op!r}: {exc}"
                ) from exc
        if not isinstance(response, dict):
            raise WorkerDiedError(
                f"worker {self.worker_id} sent a malformed response for "
                f"op {op!r}"
            )
        if response.get("ok"):
            return response.get("value")
        raise decode_error(response.get("error") or {})

    def close(self) -> None:
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already torn down
            pass


def serve_connection(
    connection, dispatch: Callable[[str, Dict[str, Any]], Any]
) -> None:
    """The worker's request loop: recv, dispatch, send, until EOF/shutdown.

    ``dispatch`` raising is an *answer* (encoded and sent back), not a crash;
    the loop only exits when the supervisor closes its end (EOFError) or the
    dispatcher raises :class:`_ShutdownRequested`.
    """
    while True:
        try:
            request = connection.recv()
        except (EOFError, OSError):
            return
        op = str(request.get("op", "")) if isinstance(request, dict) else ""
        payload = (
            dict(request.get("payload") or {})
            if isinstance(request, dict)
            else {}
        )
        try:
            value = dispatch(op, payload)
        except _ShutdownRequested as final:
            connection.send({"ok": True, "value": final.value})
            return
        except Exception as exc:  # noqa: BLE001 - boundary: errors are data
            connection.send({"ok": False, "error": encode_error(exc)})
        else:
            connection.send({"ok": True, "value": value})


class _ShutdownRequested(Exception):
    """Raised by a worker's shutdown op to end the serve loop after replying."""

    def __init__(self, value: Any) -> None:
        super().__init__("shutdown")
        self.value = value
