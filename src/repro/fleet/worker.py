"""The fleet worker process: one :class:`~repro.serving.TenantPool`, N tenants.

A worker never inherits the supervisor's arena mapping. Under ``fork`` it
inherits the *detached* substrate objects (node dict, CSR arrays, fitted
embeddings — all copy-on-write) and immediately reattaches the coverage
arena by **path** (:meth:`CorpusIndex.reattach_arena` → a fresh
``open(path, "rb")`` with the retained content digest verified). Under
``spawn`` it rebuilds the substrate from the supervisor's substrate
checkpoint, whose store state attaches the arena with
``CoverageArena.open(path, read_only=True)``. Either way the file-backed
columns are opened post-spawn, per process, by path.

Each worker is single-threaded: :func:`repro.fleet.rpc.serve_connection`
recv/dispatch/send loop, so its tenants are serialized by construction. The
worker owns a **fresh** metrics registry (the forked parent registry is
discarded), which the supervisor scrapes over RPC and the gateway merges
into ``/metrics`` with a ``worker`` label.

Durability: every ``checkpoint_every_commits`` committed answers the worker
autosaves the tenant to ``<workdir>/checkpoints/<tenant>.npz`` — the file
the supervisor adopts from when it respawns a crashed worker.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Dict, Optional

from .. import obs
from ..config import CrowdConfig, DarwinConfig
from ..gateway import ops as gateway_ops
from ..gateway.wire import BadRequestError, NotFoundError
from ..obs import MetricsRegistry
from ..serving.pool import TenantPool
from ..serving.server import serve_tenants
from .rpc import _ShutdownRequested, serve_connection


def process_memory_bytes(pid: Optional[int] = None) -> int:
    """Proportional-set-size bytes of one process (fair share of CoW pages).

    Summed PSS is the honest "machine RSS" of a forked fleet: pages the
    workers share with the supervisor are counted once in total, not once
    per process. Falls back to VmRSS (overcounting shared pages) on kernels
    without ``smaps_rollup``, and to 0 where /proc is absent.
    """
    pid_part = "self" if pid is None else str(pid)
    try:
        with open(f"/proc/{pid_part}/smaps_rollup", "r", encoding="ascii") as f:
            for line in f:
                if line.startswith("Pss:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        with open(f"/proc/{pid_part}/status", "r", encoding="ascii") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def _build_pool(spec: Dict[str, Any]) -> TenantPool:
    if spec["mode"] == "fork":
        index = spec["index"]
        # The supervisor detached the arena before forking; this is the
        # "reopen by path after spawn" step — a fresh fd + mapping in this
        # process, digest-verified against the retained header.
        index.store.reattach_arena()
        return TenantPool(
            spec["corpus"],
            spec["config"],
            index=index,
            featurizer=spec["featurizer"],
            expected_digest=spec["arena_digest"],
            seeds=spec["seeds"],
            dataset_spec=spec["dataset_spec"],
        )
    # spawn / forkserver: nothing is inherited; rebuild the substrate from
    # the supervisor's checkpoint. Its store state performs the literal
    # CoverageArena.open(path, read_only=True) attach.
    from ..classifier.features import (
        SentenceFeaturizer,
        SharedFeatureCache,
        SharedMemorySlab,
    )
    from ..datasets import load_dataset
    from ..engine.engine import _build_grammars
    from ..engine.state import read_checkpoint
    from ..index.arena import ArenaConfig
    from ..index.trie_index import CorpusIndex

    manifest, bundle = read_checkpoint(
        spec["substrate_path"], expected_kind="fleet-substrate"
    )
    config = DarwinConfig.from_dict(manifest["config"])
    dataset_spec = manifest["dataset"]
    corpus = load_dataset(dataset_spec["name"], **dataset_spec.get("options", {}))
    grammars = _build_grammars(config, {})
    index = CorpusIndex.from_state(
        manifest["index"],
        bundle,
        grammars,
        arena_config=ArenaConfig(
            path=config.index.arena_path,
            bitset_cache_bytes=config.index.bitset_cache_bytes,
        ),
    )
    slab = (
        SharedMemorySlab.attach(spec["slab"]) if spec.get("slab") else None
    )
    featurizer = SentenceFeaturizer.fit(
        corpus,
        embedding_dim=config.classifier.embedding_dim,
        seed=config.classifier.seed,
        cache=SharedFeatureCache(slab=slab),
    )
    return TenantPool(
        corpus,
        config,
        index=index,
        featurizer=featurizer,
        expected_digest=spec["arena_digest"],
        seeds=spec["seeds"],
        dataset_spec=dataset_spec,
    )


class _WorkerState:
    """Dispatch context: the pool plus per-tenant autosave bookkeeping."""

    def __init__(self, worker_id: int, spec: Dict[str, Any]) -> None:
        self.worker_id = worker_id
        self.spec = spec
        self.crowd_config = CrowdConfig(**(spec.get("crowd") or {}))
        self.checkpoint_every = int(spec.get("checkpoint_every", 0))
        self.workdir = spec["workdir"]
        self.allow_debug_ops = bool(spec.get("allow_debug_ops"))
        self.pool = _build_pool(spec)
        self._commits_since_save: Dict[str, int] = {}

    # ------------------------------------------------------------- helpers
    def _tenant(self, tenant_id: str):
        tenant = self.pool.tenants.get(tenant_id)
        if tenant is None:
            raise NotFoundError(
                f"worker {self.worker_id} hosts no tenant {tenant_id!r}; "
                f"live: {', '.join(sorted(self.pool.tenants)) or '(none)'}"
            )
        return tenant

    def autosave_path(self, tenant_id: str) -> str:
        directory = os.path.join(self.workdir, "checkpoints")
        os.makedirs(directory, exist_ok=True)
        return os.path.join(directory, f"{tenant_id}.npz")

    def _maybe_autosave(self, tenant_id: str, committed: bool) -> None:
        if not committed or self.checkpoint_every <= 0:
            return
        count = self._commits_since_save.get(tenant_id, 0) + 1
        if count >= self.checkpoint_every:
            tenant = self._tenant(tenant_id)
            tenant.flush()
            tenant.save(self.autosave_path(tenant_id))
            count = 0
        self._commits_since_save[tenant_id] = count

    # ------------------------------------------------------------ operations
    def dispatch(self, op: str, payload: Dict[str, Any]) -> Any:
        handler = getattr(self, f"op_{op.replace('-', '_')}", None)
        if handler is None:
            raise BadRequestError(f"worker has no op {op!r}")
        return handler(payload)

    def op_ping(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "tenants": sorted(self.pool.tenants),
        }

    def op_spawn(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self.pool.spawn(
            payload["tenant_id"], seeds=payload.get("seeds")
        )
        tenant.start()
        tenant.coordinator(self.crowd_config)
        return {"tenant": tenant.tenant_id, "worker": self.worker_id}

    def op_adopt(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self.pool.adopt(payload["tenant_id"], payload["path"])
        # The restored engine is mid-session; a fresh coordinator resumes
        # ticketing from its committed state.
        tenant.coordinator(self.crowd_config, fresh=True)
        return {
            "tenant": tenant.tenant_id,
            "worker": self.worker_id,
            "questions_asked": tenant.engine.questions_asked,
        }

    def op_evict(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tenant_id = payload["tenant_id"]
        self._tenant(tenant_id)
        self.pool.evict(tenant_id)
        self._commits_since_save.pop(tenant_id, None)
        return {"tenant": tenant_id, "worker": self.worker_id}

    def op_checkpoint(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self._tenant(payload["tenant_id"])
        tenant.flush()
        directory = os.path.dirname(payload["path"])
        if directory:
            os.makedirs(directory, exist_ok=True)
        saved = tenant.save(payload["path"])
        if payload.get("evict"):
            self.pool.evict(tenant.tenant_id)
            self._commits_since_save.pop(tenant.tenant_id, None)
        return {"tenant": payload["tenant_id"], "path": saved}

    def op_tenant_op(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tenant_id = payload["tenant_id"]
        tenant = self._tenant(tenant_id)
        op = payload["op"]
        body = dict(payload.get("body") or {})
        if op == "propose":
            return gateway_ops.op_propose(tenant, self.crowd_config, body)
        if op == "answer":
            result = gateway_ops.op_answer(tenant, self.crowd_config, body)
            self._maybe_autosave(tenant_id, bool(result.get("committed")))
            return result
        if op == "checkpoint":
            return gateway_ops.op_checkpoint(
                tenant, self.crowd_config, body, payload["checkpoint_dir"]
            )
        if op == "debug/sleep" and self.allow_debug_ops:
            return gateway_ops.op_debug_sleep(tenant, body)
        raise NotFoundError(f"no tenant operation {op!r}")

    def op_history(self, payload: Dict[str, Any]) -> list:
        tenant = self._tenant(payload["tenant_id"])
        return [
            [h.rule, h.answer, h.covered] for h in tenant.darwin.history
        ]

    def op_drive(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Serve every hosted tenant to completion (the bench driver)."""
        crowd = CrowdConfig(**(payload.get("crowd") or {}))
        report = asyncio.run(serve_tenants(self.pool, crowd_config=crowd))
        return {
            "worker": self.worker_id,
            "wall_seconds": report.wall_seconds,
            "questions_committed": report.questions_committed,
            "tenants": {
                tenant_id: {
                    "questions_committed": r.crowd.questions_committed,
                    "history": [
                        [h.rule, h.answer, h.covered]
                        for h in r.crowd.darwin_result.history
                    ],
                }
                for tenant_id, r in report.results.items()
            },
        }

    def op_metrics(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        registry = obs.get_registry()
        return {
            "worker": self.worker_id,
            "enabled": registry.enabled,
            "metrics": registry.snapshot() if registry.enabled else {},
        }

    def op_stats(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "rss_bytes": process_memory_bytes(),
            "memory": self.pool.memory_stats(),
        }

    def op_crash(self, payload: Dict[str, Any]) -> None:
        """Hard-exit without cleanup (crash-recovery tests only)."""
        if not self.allow_debug_ops:
            raise BadRequestError("crash op requires allow_debug_ops")
        os._exit(17)

    def op_shutdown(self, payload: Dict[str, Any]) -> Any:
        paths: Dict[str, str] = {}
        if payload.get("save"):
            for tenant_id, tenant in sorted(self.pool.tenants.items()):
                if not tenant.started:
                    continue
                tenant.flush()
                paths[tenant_id] = tenant.save(self.autosave_path(tenant_id))
        self.pool.close()
        raise _ShutdownRequested({"worker": self.worker_id, "saved": paths})


def worker_main(worker_id: int, connection, spec: Dict[str, Any]) -> None:
    """Process entry point: build the pool, serve RPC until shutdown/EOF."""
    # A forked child inherits the supervisor's registry object; sharing it
    # would interleave counter updates with the parent through CoW'd state.
    # Every worker gets its own, scraped over RPC and merged at the gateway.
    if spec.get("obs", True):
        obs.enable(MetricsRegistry())
    else:  # pragma: no cover - bench runs with obs off
        obs.disable()
    state = _WorkerState(worker_id, spec)
    try:
        serve_connection(connection, state.dispatch)
    finally:
        try:
            if not state.pool.closed:
                state.pool.close()
        finally:
            connection.close()
