"""The fleet supervisor: spawn workers, route tenants, respawn, migrate.

Builds the shared substrate **once** — sealed index, frozen read-only arena,
fitted featurizer with its cross-process :class:`~repro.classifier.features.
SharedMemorySlab` — then *detaches* the arena mapping
(:meth:`CorpusIndex.detach_arena`) before any worker exists, so no child can
inherit the supervisor's mmap. Under the default ``fork`` start method the
heavy Python substrate (node dict, CSR arrays, embeddings) rides
copy-on-write into every worker while each worker reopens the arena by path;
under ``spawn``/``forkserver`` workers rebuild from a substrate checkpoint
instead. Either way the supervisor itself never reattaches: after
:meth:`start` it is pure control plane — routing tenant ops over pipe RPC,
watching liveness, respawning crashed workers from their autosaved
checkpoints, and migrating tenants by shipping their overlay checkpoint
from one worker to another.
"""

from __future__ import annotations

import gc
import os
import shutil
import tempfile
import threading
from dataclasses import asdict
from typing import Any, Dict, List, Mapping, Optional

import multiprocessing as mp

from ..classifier.features import (
    SentenceFeaturizer,
    SharedFeatureCache,
    SharedMemorySlab,
)
from ..config import CrowdConfig, DarwinConfig, FleetConfig, IndexConfig
from ..errors import ConfigurationError
from ..gateway.wire import BadRequestError, NotFoundError
from ..index.arena import ArenaConfig
from ..index.trie_index import CorpusIndex
from ..obs import get_registry
from ..text.corpus import Corpus
from .rpc import WorkerClient, WorkerDiedError
from .worker import process_memory_bytes, worker_main


class FleetSupervisor:
    """Owns N worker processes serving disjoint tenant partitions.

    Args:
        corpus: The corpus every tenant labels.
        config: Per-tenant run configuration. The fleet requires the arena
            coverage backend (the shared file is the cross-process contract);
            a memory-backend config is upgraded in place, defaulting the
            arena file into the fleet workdir.
        fleet: Fleet topology and process parameters.
        crowd_config: Crowd parameters for every tenant's coordinator.
        seeds: Default seeds for spawned tenants.
        dataset_spec: ``{"name", "options"}`` for checkpoint self-containment;
            **required** for non-fork start methods (workers rebuild the
            corpus from it).
    """

    def __init__(
        self,
        corpus: Corpus,
        config: Optional[DarwinConfig] = None,
        fleet: Optional[FleetConfig] = None,
        crowd_config: Optional[CrowdConfig] = None,
        seeds: Optional[Mapping[str, Any]] = None,
        dataset_spec: Optional[Mapping[str, Any]] = None,
        allow_debug_ops: bool = False,
        worker_obs: bool = True,
    ) -> None:
        self.corpus = corpus
        self.fleet = fleet or FleetConfig()
        self.crowd_config = crowd_config or CrowdConfig()
        self.seeds = dict(seeds or {})
        self.dataset_spec = dict(dataset_spec) if dataset_spec else None
        self.allow_debug_ops = allow_debug_ops
        self.worker_obs = worker_obs
        if self.fleet.start_method != "fork" and self.dataset_spec is None:
            raise ConfigurationError(
                f"start_method={self.fleet.start_method!r} workers rebuild "
                f"the corpus from a dataset spec; pass dataset_spec=..."
            )
        self._own_workdir = self.fleet.workdir is None
        self.workdir = self.fleet.workdir or tempfile.mkdtemp(
            prefix="repro-fleet-"
        )
        os.makedirs(self.workdir, exist_ok=True)
        config = config or DarwinConfig()
        if (
            config.index.coverage_backend != "arena"
            or not config.index.arena_path
        ):
            config = config.with_overrides(
                index=IndexConfig(
                    coverage_backend="arena",
                    arena_path=os.path.join(self.workdir, "fleet.arena"),
                    bitset_cache_bytes=config.index.bitset_cache_bytes,
                )
            )
        self.config = config
        self.arena_digest: Optional[str] = None
        self.slab: Optional[SharedMemorySlab] = None
        self._index: Optional[CorpusIndex] = None
        self._featurizer: Optional[SentenceFeaturizer] = None
        self._substrate_path: Optional[str] = None
        self._workers: List[WorkerClient] = []
        self._route: Dict[str, int] = {}
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None
        self._started = False
        self._closed = False
        registry = get_registry()
        self._obs_respawns = registry.counter(
            "fleet_respawns_total",
            "Worker processes respawned after a crash or wedge",
            labels=("worker",),
        )
        self._obs_migrations = registry.counter(
            "fleet_migrations_total",
            "Tenants migrated between workers",
            labels=(),
        )

    # ------------------------------------------------------------------ build
    def start(self) -> "FleetSupervisor":
        """Build the substrate, seal + detach the arena, fork the workers."""
        if self._started:
            return self
        from ..engine.engine import _build_grammars

        grammars = _build_grammars(self.config, {})
        index = CorpusIndex.build(
            self.corpus,
            grammars,
            max_depth=self.config.max_sketch_depth,
            min_coverage=self.config.min_coverage,
            coverage_backend="arena",
            arena_config=ArenaConfig(
                path=self.config.index.arena_path,
                bitset_cache_bytes=self.config.index.bitset_cache_bytes,
            ),
        )
        index.store.flush()
        index.store.arena.reopen_read_only()
        self.arena_digest = index.store.arena.digest
        featurizer = SentenceFeaturizer.fit(
            self.corpus,
            embedding_dim=self.config.classifier.embedding_dim,
            seed=self.config.classifier.seed,
            cache=SharedFeatureCache(),
        )
        if self.fleet.shared_feature_slab:
            self.slab = SharedMemorySlab.create(
                len(self.corpus), featurizer.vector_dim
            )
            featurizer.cache.attach_slab(self.slab)
        self._index = index
        self._featurizer = featurizer
        if self.fleet.start_method != "fork":
            self._substrate_path = os.path.join(self.workdir, "substrate.npz")
            self._write_substrate(self._substrate_path)
        # The point of no inheritance: close the supervisor's fd + mapping
        # before the first fork. Workers reopen the file by path; the
        # supervisor keeps only the (detached) Python objects for CoW and
        # for respawn forks.
        index.store.detach_arena()
        # Sweep garbage now and freeze the survivors into the permanent
        # generation: post-fork collections in the workers would otherwise
        # walk (and copy-on-write unshare) every substrate page.
        gc.collect()
        gc.freeze()
        with self._lock:
            for worker_id in range(self.fleet.workers):
                self._workers.append(self._spawn_worker(worker_id))
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="fleet-monitor", daemon=True
        )
        self._started = True
        self._monitor_thread.start()
        return self

    def _write_substrate(self, path: str) -> None:
        from ..engine.state import ArrayBundle, write_checkpoint

        bundle = ArrayBundle()
        manifest = {
            "kind": "fleet-substrate",
            "config": self.config.as_dict(),
            "dataset": self.dataset_spec,
            "index": self._index.to_state(bundle, prefix="index/"),
        }
        write_checkpoint(path, manifest, bundle.as_mapping())

    def _worker_spec(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {
            "mode": "fork" if self.fleet.start_method == "fork" else "spawn",
            "crowd": asdict(self.crowd_config),
            "seeds": dict(self.seeds),
            "dataset_spec": self.dataset_spec,
            "arena_digest": self.arena_digest,
            "workdir": self.workdir,
            "checkpoint_every": self.fleet.checkpoint_every_commits,
            "allow_debug_ops": self.allow_debug_ops,
            "obs": self.worker_obs,
        }
        if spec["mode"] == "fork":
            # Fork passes the live substrate objects by reference (CoW);
            # nothing here is pickled.
            spec.update(
                config=self.config,
                corpus=self.corpus,
                index=self._index,
                featurizer=self._featurizer,
            )
        else:
            # Spawn pickles the spec: strings and dicts only. The config
            # travels inside the substrate manifest.
            spec.update(
                substrate_path=self._substrate_path,
                slab=self.slab.spec() if self.slab is not None else None,
            )
        return spec

    def _spawn_worker(self, worker_id: int) -> WorkerClient:
        context = mp.get_context(self.fleet.start_method)
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=worker_main,
            args=(worker_id, child_conn, self._worker_spec()),
            name=f"fleet-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        client = WorkerClient(worker_id, process, parent_conn)
        # Fail fast on a worker that dies during pool construction.
        client.call("ping", timeout=self.fleet.call_timeout_s)
        return client

    # ---------------------------------------------------------------- routing
    @property
    def started(self) -> bool:
        return self._started

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def tenant_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._route)

    def worker_of(self, tenant_id: str) -> int:
        with self._lock:
            worker = self._route.get(tenant_id)
        if worker is None:
            raise NotFoundError(
                f"fleet hosts no tenant {tenant_id!r}; live tenants: "
                f"{', '.join(self.tenant_ids()) or '(none)'}"
            )
        return worker

    def _least_loaded(self, exclude: Optional[int] = None) -> int:
        with self._lock:
            loads = {i: 0 for i in range(len(self._workers)) if i != exclude}
            if not loads:
                raise BadRequestError(
                    "fleet has no other worker to place the tenant on"
                )
            for worker in self._route.values():
                if worker in loads:
                    loads[worker] += 1
        return min(sorted(loads), key=loads.get)

    def spawn_tenant(
        self,
        tenant_id: str,
        seeds: Optional[Mapping[str, Any]] = None,
        worker: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Create a tenant on ``worker`` (default: least-loaded)."""
        self._require_started()
        with self._lock:
            if tenant_id in self._route:
                raise ConfigurationError(
                    f"tenant id {tenant_id!r} already exists"
                )
            target = worker if worker is not None else self._least_loaded()
            if not 0 <= target < len(self._workers):
                raise BadRequestError(f"no worker {target}")
        client = self._ensure_alive(target)
        result = client.call(
            "spawn",
            self.fleet.call_timeout_s,
            {
                "tenant_id": tenant_id,
                "seeds": dict(seeds) if seeds is not None else None,
            },
        )
        with self._lock:
            self._route[tenant_id] = target
        return result

    def spawn_tenants(self, count: int, prefix: str = "tenant") -> List[str]:
        """Spawn ``count`` default-seeded tenants, round-robin over workers."""
        names = []
        for position in range(count):
            name = f"{prefix}-{position}"
            self.spawn_tenant(name, worker=position % self.fleet.workers)
            names.append(name)
        return names

    # ------------------------------------------------------------------ calls
    def call_tenant(
        self,
        tenant_id: str,
        op: str,
        body: Optional[Mapping[str, Any]] = None,
        checkpoint_dir: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Route one gateway operation to the tenant's worker.

        A dead or wedged worker is respawned (tenants restored from their
        autosaved checkpoints) and the call retried exactly once — so a
        worker crash costs the caller latency, not an error, as long as the
        respawn succeeds.
        """
        payload: Dict[str, Any] = {
            "tenant_id": tenant_id,
            "op": op,
            "body": dict(body or {}),
        }
        if checkpoint_dir is not None:
            payload["checkpoint_dir"] = checkpoint_dir
        return self._routed_call(tenant_id, "tenant_op", payload, timeout)

    def _routed_call(
        self,
        tenant_id: str,
        op: str,
        payload: Dict[str, Any],
        timeout: Optional[float] = None,
    ) -> Any:
        """Send ``op`` to the tenant's worker with one respawn-and-retry.

        A crashed worker surfaces as :class:`WorkerDiedError` on the first
        attempt; the respawn restores its tenants from their autosaves and
        the retry runs against the replacement, so callers see latency, not
        an error (unless the respawned worker dies too).
        """
        timeout = timeout or self.fleet.call_timeout_s
        for attempt in range(2):
            worker = self.worker_of(tenant_id)
            client = self._ensure_alive(worker)
            try:
                return client.call(op, timeout, payload)
            except WorkerDiedError:
                if attempt:
                    raise
                self._force_respawn(worker)
        raise AssertionError("unreachable")  # pragma: no cover

    def history(self, tenant_id: str) -> List[List[Any]]:
        """The tenant's committed history as ``[rule, answer, covered]``."""
        return self._routed_call(
            tenant_id, "history", {"tenant_id": tenant_id}
        )

    def checkpoint_tenant(
        self, tenant_id: str, path: str, evict: bool = False
    ) -> Dict[str, Any]:
        result = self._routed_call(
            tenant_id,
            "checkpoint",
            {"tenant_id": tenant_id, "path": path, "evict": evict},
        )
        if evict:
            with self._lock:
                self._route.pop(tenant_id, None)
        return result

    def migrate(
        self, tenant_id: str, target: Optional[int] = None
    ) -> Dict[str, Any]:
        """Move a tenant's overlay checkpoint to another worker.

        Checkpoint-and-evict on the source, adopt on the target, reroute.
        The move is serialized against the tenant's other operations by the
        gateway's per-tenant queue (the supervisor itself only promises that
        the checkpoint happens at a coordinator-quiescent point, which a
        queue-serialized tenant guarantees).
        """
        source = self.worker_of(tenant_id)
        if target is None:
            target = self._least_loaded(exclude=source)
        with self._lock:
            if not 0 <= target < len(self._workers):
                raise BadRequestError(f"no worker {target}")
        if target == source:
            raise BadRequestError(
                f"tenant {tenant_id!r} is already on worker {source}"
            )
        directory = os.path.join(self.workdir, "migrations")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{tenant_id}.npz")
        self._ensure_alive(source).call(
            "checkpoint",
            self.fleet.call_timeout_s,
            {"tenant_id": tenant_id, "path": path, "evict": True},
        )
        self._ensure_alive(target).call(
            "adopt",
            self.fleet.call_timeout_s,
            {"tenant_id": tenant_id, "path": path},
        )
        with self._lock:
            self._route[tenant_id] = target
        # Refresh the durability point so a target-worker crash right after
        # the move restores post-migration state, not the source's autosave.
        self._ensure_alive(target).call(
            "checkpoint",
            self.fleet.call_timeout_s,
            {
                "tenant_id": tenant_id,
                "path": os.path.join(
                    self.workdir, "checkpoints", f"{tenant_id}.npz"
                ),
                "evict": False,
            },
        )
        self._obs_migrations.labels().inc()
        return {"tenant": tenant_id, "from": source, "to": target,
                "path": path}

    # ------------------------------------------------------------- liveness
    def _require_started(self) -> None:
        if not self._started or self._closed:
            raise ConfigurationError(
                "fleet supervisor is not running; call start() first"
            )

    def _ensure_alive(self, worker_id: int) -> WorkerClient:
        with self._lock:
            client = self._workers[worker_id]
            if client.alive():
                return client
            return self._respawn_locked(worker_id)

    def _force_respawn(self, worker_id: int) -> WorkerClient:
        with self._lock:
            client = self._workers[worker_id]
            if client.alive():
                client.process.terminate()
                client.process.join(timeout=5.0)
            return self._respawn_locked(worker_id)

    def _respawn_locked(self, worker_id: int) -> WorkerClient:
        """Replace a dead worker and restore its tenants (caller holds lock)."""
        old = self._workers[worker_id]
        old.process.join(timeout=5.0)
        old.close()
        client = self._spawn_worker(worker_id)
        with self._lock:  # reentrant: documents the invariant at the write
            self._workers[worker_id] = client
        self._obs_respawns.labels(worker=str(worker_id)).inc()
        hosted = [t for t, w in self._route.items() if w == worker_id]
        for tenant_id in sorted(hosted):
            autosave = os.path.join(
                self.workdir, "checkpoints", f"{tenant_id}.npz"
            )
            if os.path.exists(autosave):
                client.call(
                    "adopt",
                    self.fleet.call_timeout_s,
                    {"tenant_id": tenant_id, "path": autosave},
                )
            else:
                # Never autosaved: the tenant restarts from its seeds — the
                # same answer a single-process gateway gives after a crash
                # with no checkpoint.
                client.call(
                    "spawn",
                    self.fleet.call_timeout_s,
                    {"tenant_id": tenant_id, "seeds": None},
                )
        return client

    def _monitor(self) -> None:
        while not self._stop.wait(self.fleet.heartbeat_s):
            for worker_id in range(len(self._workers)):
                if self._stop.is_set():
                    return
                try:
                    self._ensure_alive(worker_id)
                except Exception:  # noqa: BLE001 - monitor must not die
                    continue

    # ----------------------------------------------------------- inspection
    def status(self) -> List[Dict[str, Any]]:
        """Liveness + placement per worker (the gateway's /healthz block)."""
        with self._lock:
            workers = list(self._workers)
            route = dict(self._route)
        return [
            {
                "worker": client.worker_id,
                "pid": client.pid,
                "alive": client.alive(),
                "tenants": sorted(
                    t for t, w in route.items() if w == client.worker_id
                ),
            }
            for client in workers
        ]

    def metrics_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker registry snapshots keyed by worker id (best effort)."""
        snapshots: Dict[str, Dict[str, Any]] = {}
        for client in list(self._workers):
            try:
                result = client.call("metrics", self.fleet.call_timeout_s)
            except WorkerDiedError:
                continue
            if result.get("enabled"):
                snapshots[str(result["worker"])] = result["metrics"]
        return snapshots

    def machine_rss_bytes(self) -> int:
        """Summed PSS of the supervisor + every live worker."""
        total = process_memory_bytes()
        for client in list(self._workers):
            if client.alive() and client.pid:
                total += process_memory_bytes(client.pid)
        return total

    def drive_all(
        self, crowd: Optional[Mapping[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        """Run every worker's serve loop to completion, workers in parallel
        (the bench driver; real traffic goes through :meth:`call_tenant`)."""
        self._require_started()
        results: List[Optional[Dict[str, Any]]] = [None] * len(self._workers)
        errors: List[Exception] = []

        def _drive(position: int, client: WorkerClient) -> None:
            try:
                results[position] = client.call(
                    "drive",
                    self.fleet.call_timeout_s,
                    {"crowd": dict(crowd or {})},
                )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=_drive, args=(i, client), daemon=True)
            for i, client in enumerate(self._workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return [r for r in results if r is not None]

    # ------------------------------------------------------------- lifecycle
    def drain(self, checkpoint_dir: str) -> Dict[str, str]:
        """Final checkpoints for every tenant (the gateway drain path)."""
        os.makedirs(checkpoint_dir, exist_ok=True)
        paths: Dict[str, str] = {}
        for tenant_id in self.tenant_ids():
            path = os.path.join(checkpoint_dir, f"{tenant_id}-final.npz")
            try:
                result = self.checkpoint_tenant(tenant_id, path)
            except (WorkerDiedError, ConfigurationError):
                continue
            paths[tenant_id] = result["path"]
        return paths

    def close(self) -> None:
        """Stop the monitor, shut every worker down, release shared memory."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
        with self._lock:
            workers = list(self._workers)
        for client in workers:
            try:
                client.call("shutdown", 30.0, {"save": False})
            except WorkerDiedError:
                pass
            client.process.join(timeout=10.0)
            if client.alive():  # pragma: no cover - stuck worker
                client.process.terminate()
                client.process.join(timeout=5.0)
            client.close()
        if self.slab is not None:
            self.slab.close()
            self.slab.unlink()
            self.slab = None
        self._index = None
        self._featurizer = None
        if self._own_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "running" if self._started else "built"
        )
        return (
            f"FleetSupervisor(workers={self.fleet.workers}, "
            f"tenants={len(self._route)}, {state})"
        )
