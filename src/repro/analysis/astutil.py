"""Shared AST helpers for the invariant checkers.

The checkers reason about *qualified names*: ``np.random.shuffle`` must be
recognized whether the file wrote ``import numpy as np``, ``import
numpy.random as npr``, or ``from numpy.random import shuffle``. An
:class:`ImportMap` collects every import alias in a module once; checkers
then resolve call targets through it with :meth:`ImportMap.resolve`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """The ``["a", "b", "c"]`` chain of a ``a.b.c`` Name/Attribute expression.

    Returns None when the expression root is not a plain name (a call result,
    a subscript, a literal) — those targets cannot be resolved to a module
    member statically.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def dotted_name(node: ast.AST) -> Optional[str]:
    """``"a.b.c"`` for a Name/Attribute chain, else None."""
    parts = dotted_parts(node)
    return ".".join(parts) if parts is not None else None


class ImportMap:
    """Alias → qualified-name mapping collected from a module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    rand as r`` maps ``r -> numpy.random.rand``. Relative imports keep their
    module suffix with the leading dots stripped (``from ..obs import
    get_registry`` maps ``get_registry -> obs.get_registry``), so checkers
    match by suffix rather than absolute package root.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    # `import a.b` binds `a`; `import a.b as c` binds c -> a.b.
                    target = alias.name if alias.asname else bound
                    self._aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                module = (node.module or "").lstrip(".")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    qualified = f"{module}.{alias.name}" if module else alias.name
                    self._aliases[bound] = qualified

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Qualified dotted name of a call target, through import aliases.

        ``np.random.shuffle`` with ``import numpy as np`` resolves to
        ``numpy.random.shuffle``; an unimported root resolves to the literal
        dotted text (so same-module helpers keep their bare name).
        """
        parts = dotted_parts(node)
        if not parts:
            return None
        root = self._aliases.get(parts[0], parts[0])
        return ".".join([root] + parts[1:])
