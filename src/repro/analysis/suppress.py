"""Inline suppression comments: ``# repro: allow[CODE] reason``.

A finding is intentionally kept — not fixed and not silently baselined — by
annotating the offending line (or the standalone comment line directly above
it) with::

    self._started_at = time.time()  # repro: allow[RPR001] telemetry timestamp

Several codes may be listed (``allow[RPR001,RPR003]``). The reason is
**mandatory**: a reasonless allow suppresses nothing and is itself reported
as ``RPR000`` — the whole point of the syntax is that every exception to an
invariant carries its justification in the diff.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass
from io import StringIO
from typing import Dict, List, Tuple

from .diagnostics import Diagnostic

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Za-z0-9*,\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed allow comment."""

    line: int                  # line the comment physically sits on
    codes: Tuple[str, ...]     # upper-cased codes, "*" allowed
    reason: str

    def covers(self, code: str) -> bool:
        return bool(self.reason) and ("*" in self.codes or code in self.codes)


def parse_suppressions(source: str, path: str):
    """Extract allow comments from ``source``.

    Returns ``(by_line, malformed)`` where ``by_line`` maps every line a
    suppression applies to — the comment's own line, plus the next code line
    when the comment stands alone — to its :class:`Suppression`, and
    ``malformed`` holds ``RPR000`` diagnostics for reasonless allows.
    """
    suppressions: List[Suppression] = []
    standalone: List[Suppression] = []
    malformed: List[Diagnostic] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, []
    code_lines = set()
    for token in tokens:
        if token.type == tokenize.COMMENT:
            match = _ALLOW_RE.search(token.string)
            if not match:
                continue
            codes = tuple(
                part.strip().upper()
                for part in match.group("codes").split(",")
                if part.strip()
            )
            reason = match.group("reason").strip()
            entry = Suppression(line=token.start[0], codes=codes, reason=reason)
            if not reason:
                malformed.append(Diagnostic(
                    code="RPR000",
                    path=path,
                    line=entry.line,
                    message=(
                        "suppression comment has no reason — "
                        "`# repro: allow[CODE] <why>` is required for it "
                        "to take effect"
                    ),
                    suggestion="state why this violation is intentional",
                ))
                continue
            # A comment sharing its line with code applies to that line; a
            # standalone comment applies to the next code line below it.
            line_text = source.splitlines()[token.start[0] - 1]
            if line_text.lstrip().startswith("#"):
                standalone.append(entry)
            else:
                suppressions.append(entry)
        elif token.type not in (
            tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
            tokenize.DEDENT, tokenize.ENDMARKER, tokenize.COMMENT,
        ):
            code_lines.add(token.start[0])

    by_line: Dict[int, Suppression] = {s.line: s for s in suppressions}
    for entry in standalone:
        by_line.setdefault(entry.line, entry)
        target = entry.line + 1
        # Skip over any further comment-only lines between the allow and the
        # code it annotates.
        limit = entry.line + 10
        while target not in code_lines and target <= limit:
            target += 1
        if target in code_lines:
            by_line.setdefault(target, entry)
    return by_line, malformed
