"""`repro.analysis` — AST-based invariant linter for the codebase itself.

The runtime layers each carry an invariant that ordinary tests exercise only
on the paths they happen to drive: checkpoint resume needs explicit RNG
streams (no global ``random``/wall-clock state), the state protocol needs a
restorer for every serializer key, sealed arena/NodeTable columns must never
be written, lock-guarded attributes must stay guarded, and the telemetry
null path must stay free at import time. This package checks those
invariants statically over the whole tree on every CI run.

Usage::

    repro lint src/                     # text report, exit 1 on findings
    repro lint --format json src/       # machine-readable report
    repro lint --update-baseline src/   # grandfather current findings

Checkers are pluggable through the same registry pattern as the engine
component families::

    from repro.analysis import register_checker

    @register_checker("RPR100")
    def check_my_invariant(ctx):
        yield Diagnostic(code="RPR100", path=ctx.path, line=1, message="...")

Intentional exceptions carry an inline ``# repro: allow[RPR001] reason``
comment (the reason is mandatory — a bare allow is itself flagged).
"""

from __future__ import annotations

from .baseline import (
    BASELINE_KIND,
    DEFAULT_BASELINE_PATH,
    load_baseline,
    split_baselined,
    write_baseline,
)
from .diagnostics import Diagnostic, sort_diagnostics
from .driver import (
    REPORT_SCHEMA_VERSION,
    FileContext,
    LintReport,
    iter_python_files,
    lint_file,
    lint_paths,
    render_json,
    render_text,
    run_lint,
)
from .registry import CHECKERS, DEFAULT_CONFIG, LintConfig, register_checker
from .suppress import parse_suppressions

from . import checkers  # noqa: F401  — registers the shipped checkers

__all__ = [
    "BASELINE_KIND",
    "CHECKERS",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CONFIG",
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "LintReport",
    "REPORT_SCHEMA_VERSION",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "parse_suppressions",
    "register_checker",
    "render_json",
    "render_text",
    "run_lint",
    "sort_diagnostics",
    "split_baselined",
    "write_baseline",
]
