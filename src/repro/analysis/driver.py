"""Per-file visitor driver: walk files, run checkers, render reports.

The pipeline for each ``.py`` file is: parse once → run every registered
checker over the shared :class:`FileContext` → drop findings covered by an
inline ``# repro: allow[CODE] reason`` → subtract the committed baseline →
render as text or JSON. Unparseable files produce an ``RPR000`` diagnostic
instead of crashing the run (the linter must be able to sweep work-in-
progress trees).
"""

from __future__ import annotations

import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..errors import ConfigurationError
from .astutil import ImportMap
from .baseline import (
    DEFAULT_BASELINE_PATH,
    load_baseline,
    split_baselined,
    write_baseline,
)
from .diagnostics import Diagnostic, sort_diagnostics
from .registry import CHECKERS, DEFAULT_CONFIG, LintConfig
from .suppress import parse_suppressions

REPORT_SCHEMA_VERSION = 1


@dataclass
class FileContext:
    """Everything a checker may look at for one file."""

    path: str                      # display path (as discovered)
    tree: ast.Module
    source: str
    config: LintConfig
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


@dataclass
class LintReport:
    """Outcome of one lint run (before rendering)."""

    findings: List[Diagnostic]          # actionable: not suppressed/baselined
    grandfathered: List[Diagnostic]     # matched a baseline entry
    suppressed: int                     # dropped by inline allows
    files_scanned: int

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for diagnostic in self.findings:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return {
            "version": REPORT_SCHEMA_VERSION,
            "findings": [d.to_dict() for d in self.findings],
            "summary": {
                "total": len(self.findings),
                "by_code": dict(sorted(counts.items())),
                "grandfathered": len(self.grandfathered),
                "suppressed": self.suppressed,
                "files_scanned": self.files_scanned,
            },
        }


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """``.py`` files under ``paths`` (files kept as-is, dirs walked sorted)."""
    found: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(
                str(p) for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            found.append(str(path))
        elif not path.exists():
            raise ConfigurationError(f"lint path does not exist: {raw}")
    return found


def _selected_codes(select: Optional[Sequence[str]]) -> List[str]:
    if select is None:
        return list(CHECKERS.names())
    codes = []
    for entry in select:
        for code in str(entry).split(","):
            code = code.strip().upper()
            if not code:
                continue
            if code not in CHECKERS:
                raise ConfigurationError(
                    f"unknown checker {code!r}; registered: "
                    f"{', '.join(CHECKERS.names())}"
                )
            codes.append(code)
    return codes


def lint_file(
    path: str,
    config: Optional[LintConfig] = None,
    select: Optional[Sequence[str]] = None,
    source: Optional[str] = None,
):
    """Run the (selected) checkers over one file.

    Returns ``(kept, suppressed_count)``: diagnostics surviving inline
    suppressions, plus how many an allow comment dropped.
    """
    config = config or DEFAULT_CONFIG
    display = str(path).replace("\\", "/")
    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [Diagnostic(
            code="RPR000",
            path=display,
            line=exc.lineno or 1,
            message=f"file does not parse: {exc.msg}",
            suggestion="fix the syntax error so the invariants can be checked",
        )], 0
    context = FileContext(path=display, tree=tree, source=source, config=config)
    diagnostics: List[Diagnostic] = []
    for code in _selected_codes(select):
        diagnostics.extend(CHECKERS.get(code)(context))
    by_line, malformed = parse_suppressions(source, display)
    kept: List[Diagnostic] = list(malformed)
    suppressed = 0
    for diagnostic in diagnostics:
        entry = by_line.get(diagnostic.line)
        if entry is not None and entry.covers(diagnostic.code):
            suppressed += 1
        else:
            kept.append(diagnostic)
    return sort_diagnostics(kept), suppressed


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    select: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and fold in the baseline."""
    files = iter_python_files(paths)
    all_diagnostics: List[Diagnostic] = []
    suppressed = 0
    for file_path in files:
        kept, dropped = lint_file(file_path, config=config, select=select)
        all_diagnostics.extend(kept)
        suppressed += dropped
    baseline: Set = (
        load_baseline(baseline_path) if baseline_path is not None else set()
    )
    fresh, grandfathered = split_baselined(all_diagnostics, baseline)
    return LintReport(
        findings=sort_diagnostics(fresh),
        grandfathered=sort_diagnostics(grandfathered),
        suppressed=suppressed,
        files_scanned=len(files),
    )


def render_text(report: LintReport) -> str:
    """Human-readable report: one finding per line plus a summary tail."""
    lines: List[str] = []
    for diagnostic in report.findings:
        lines.append(diagnostic.render())
        if diagnostic.suggestion:
            lines.append(f"    fix: {diagnostic.suggestion}")
    summary = (
        f"{len(report.findings)} finding"
        f"{'s' if len(report.findings) != 1 else ''} "
        f"across {report.files_scanned} files"
    )
    extras = []
    if report.grandfathered:
        extras.append(f"{len(report.grandfathered)} baselined")
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed inline")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def run_lint(
    paths: Sequence[str],
    fmt: str = "text",
    baseline: Optional[str] = None,
    update_baseline: bool = False,
    select: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
    stdout=None,
) -> int:
    """CLI entry point backing ``repro lint``; returns the exit code."""
    out = stdout if stdout is not None else sys.stdout
    if update_baseline and baseline is None:
        baseline = DEFAULT_BASELINE_PATH
    if update_baseline:
        # Re-baseline from a clean slate: everything currently firing (after
        # inline suppressions) becomes grandfathered.
        report = lint_paths(paths, config=config, select=select)
        write_baseline(baseline, report.findings)
        print(
            f"baseline {baseline} updated with "
            f"{len({d.baseline_key for d in report.findings})} entr"
            f"{'y' if len(report.findings) == 1 else 'ies'}",
            file=out,
        )
        return 0
    report = lint_paths(
        paths, config=config, select=select, baseline_path=baseline
    )
    rendered = render_json(report) if fmt == "json" else render_text(report)
    print(rendered, file=out)
    return report.exit_code
