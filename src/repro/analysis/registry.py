"""Checker registry + lint configuration.

Mirrors :mod:`repro.engine.registry`: checkers are string-keyed factories in
a shared :class:`~repro.engine.registry.Registry`, registered with the
``@register_checker("RPR00x")`` decorator. The driver runs every registered
checker over each file (or the subset selected with ``--select``); adding a
project invariant is one new module under ``repro/analysis/checkers/`` plus
an import in that package's ``__init__``.

A checker is a callable ``check(ctx) -> Iterable[Diagnostic]`` receiving a
:class:`~repro.analysis.driver.FileContext`. Checkers must be pure functions
of the file contents + :class:`LintConfig` — no filesystem access, no
imports of the linted code (everything is :mod:`ast`-level, so the linter
can run over files with unimportable dependencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from ..engine.registry import Registry

CHECKERS = Registry("checker")
register_checker = CHECKERS.register


def _norm(path: str) -> str:
    return path.replace("\\", "/")


@dataclass(frozen=True)
class LintConfig:
    """Tunable knobs grounding the checkers in this repo's conventions.

    The defaults encode the real invariants; tests point the path-based
    exemptions elsewhere so fixture files always trigger.
    """

    # RPR001 — modules allowed to own process-global randomness / seeds.
    rng_owner_suffixes: Tuple[str, ...] = ("repro/utils/rng.py",)

    # RPR002 — serializer method → accepted counterpart methods.
    state_pairs: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "to_state": ("from_state", "from_state_over", "load_state",
                         "restore_state"),
            "state_dict": ("load_state", "from_state", "restore_state"),
        }
    )

    # RPR003 — attribute names whose reads hand out sealed (read-only)
    # arrays: CoverageView.ids / CoverageView._ids, the NodeTable interval +
    # CSR columns, and the index's inverted-map columns.
    sealed_attrs: frozenset = frozenset({
        "ids", "_ids", "pre", "post", "order_by_pre", "store_slot",
        "parent_starts", "parent_ids", "child_starts", "child_ids",
        "_inv_nodes", "_inv_starts", "_node_counts", "_node_ranks",
        "_rank_order",
    })
    # Calls whose results are sealed arrays (arena slices, id normalizers).
    sealed_calls: frozenset = frozenset({
        "values_slice", "as_id_array", "_as_sorted_ids",
    })
    # ndarray methods that mutate their receiver in place.
    array_mutators: frozenset = frozenset({
        "sort", "fill", "resize", "partition", "put", "byteswap", "itemset",
    })

    # RPR004 — container methods counted as mutations of a self attribute.
    container_mutators: frozenset = frozenset({
        "append", "appendleft", "add", "clear", "discard", "extend",
        "insert", "pop", "popleft", "popitem", "remove", "setdefault",
        "update", "move_to_end", "sort", "reverse",
    })

    # RPR005 — modules allowed to construct registries/tracers at import
    # time (the telemetry layer itself).
    obs_owner_suffixes: Tuple[str, ...] = ("repro/obs/",)

    def path_matches(self, path: str, suffixes: Tuple[str, ...]) -> bool:
        """True when ``path`` ends with (or contains a dir of) ``suffixes``."""
        normalized = _norm(path)
        for suffix in suffixes:
            if suffix.endswith("/"):
                if suffix in normalized or normalized.startswith(suffix):
                    return True
            elif normalized.endswith(suffix):
                return True
        return False


DEFAULT_CONFIG = LintConfig()
