"""RPR005 — obs null-path cost: no telemetry wiring at import time.

The telemetry layer's whole design is that *disabled* runs pay one attribute
read per metric site: components call :func:`repro.obs.get_registry` at
**construction** time and hold whatever instrument (possibly
``NULL_INSTRUMENT``) they got. Two anti-patterns break that contract:

* module-level ``_REGISTRY = get_registry()`` — snapshots the null registry
  at import time, so a later ``obs.enable()`` never reaches this module and
  its metrics silently vanish;
* module-level ``MetricsRegistry()`` / ``SpanTracer()`` construction —
  allocates live telemetry state (locks, dicts) for every importer, paid
  even by runs that never enable observability.

The checker flags calls to the obs entry points in import-time positions:
module body, class body, and default-argument expressions. Function bodies
are fine — that *is* the construction-time pattern. The obs package itself
(``repro/obs/``) is exempt; it owns the process-wide singletons.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..diagnostics import Diagnostic
from ..registry import register_checker

# Entry points that bind or allocate telemetry state. Matched on the
# resolved dotted name's tail so `obs.get_registry`, `repro.obs.get_registry`
# and a bare imported `get_registry` all hit.
_OBS_TAILS = frozenset({
    "get_registry", "get_tracer", "set_registry", "set_tracer",
    "enable", "disable",
})
_OBS_CONSTRUCTORS = frozenset({
    "MetricsRegistry", "SpanTracer", "NullRegistry", "NullTracer",
})
_OBS_MODULES = ("obs", "repro.obs")

_SUGGESTION = (
    "resolve instruments at construction time (call obs.get_registry() "
    "inside __init__/build) so obs.enable() reaches this component and "
    "disabled runs stay zero-cost"
)


def _is_obs_call(resolved: str) -> bool:
    if "." not in resolved:
        return False
    module, member = resolved.rsplit(".", 1)
    if member in _OBS_TAILS or member in _OBS_CONSTRUCTORS:
        return module in _OBS_MODULES or module.endswith(".obs")
    return False


def _import_time_calls(tree: ast.Module):
    """Calls evaluated when the module is imported.

    Walks module and class bodies; for function/lambda definitions only the
    decorator list and default-argument expressions are import-time — the
    body runs later, at call time.
    """
    def from_node(node: ast.AST):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for expr in (
                list(node.decorator_list)
                + node.args.defaults
                + [d for d in node.args.kw_defaults if d is not None]
            ):
                yield from from_node(expr)
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Call):
            yield node
        for child in ast.iter_child_nodes(node):
            yield from from_node(child)

    yield from from_node(tree)


@register_checker("RPR005")
def check_obs_nullpath(ctx) -> Iterable[Diagnostic]:
    if ctx.config.path_matches(ctx.path, ctx.config.obs_owner_suffixes):
        return []
    diagnostics: List[Diagnostic] = []
    for call in _import_time_calls(ctx.tree):
        resolved = ctx.imports.resolve(call.func)
        if resolved is None or not _is_obs_call(resolved):
            continue
        member = resolved.rsplit(".", 1)[1]
        if member in _OBS_CONSTRUCTORS:
            message = (
                f"import-time construction of obs.{member}() — allocates "
                f"telemetry state for every importer, even with obs disabled"
            )
        else:
            message = (
                f"import-time call to obs.{member}() — binds the registry "
                f"before obs.enable() can run, so instruments silently no-op"
            )
        diagnostics.append(Diagnostic(
            code="RPR005", path=ctx.path, line=call.lineno,
            col=call.col_offset, message=message, suggestion=_SUGGESTION,
        ))
    return diagnostics
