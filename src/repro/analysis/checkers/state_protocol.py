"""RPR002 — state-protocol parity: serializers need matching restorers.

The npz+JSON checkpoint protocol (PR 3) is a pair of hand-written codecs per
component: ``to_state``/``state_dict`` writes a manifest block, and
``from_state``/``load_state`` must read it back. Two drift modes have bitten
in review:

* a class grows ``to_state`` but the counterpart is missing entirely, so the
  component silently cannot be restored;
* ``to_state`` starts writing a new key that the counterpart never reads, so
  the manifest schema and the restore path disagree (the key is dead weight
  at best, a missed restore at worst).

This checker enforces both per class. Key parity is intentionally shallow:
only string keys of **top-level** dict literals in the serializer are
required to appear (as string literals, anywhere) in the counterpart —
nested blocks such as arena *references* are consumed by other layers and
routinely carry informational fields.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from ..diagnostics import Diagnostic
from ..registry import register_checker


def _methods(cls: ast.ClassDef):
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _written_keys(fn: ast.AST) -> List[Tuple[str, int]]:
    """String keys written by ``fn``: top-level dict literals plus
    ``state["key"] = ...`` subscript stores (nested dicts excluded)."""
    keys: List[Tuple[str, int]] = []

    def visit(node: ast.AST, dict_depth: int) -> None:
        if isinstance(node, ast.Dict):
            if dict_depth == 0:
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys.append((key.value, key.lineno))
            for child in ast.iter_child_nodes(node):
                visit(child, dict_depth + 1)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                    and dict_depth == 0
                ):
                    keys.append((target.slice.value, target.lineno))
        for child in ast.iter_child_nodes(node):
            visit(child, dict_depth)

    visit(fn, 0)
    return keys


def _read_strings(fns: Iterable[ast.AST]) -> Set[str]:
    """Every string literal appearing anywhere in the counterpart methods."""
    strings: Set[str] = set()
    for fn in fns:
        for node in ast.walk(fn):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                strings.add(node.value)
    return strings


@register_checker("RPR002")
def check_state_protocol(ctx) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = _methods(node)
        for writer_name, counterpart_names in ctx.config.state_pairs.items():
            writer = methods.get(writer_name)
            if writer is None:
                continue
            counterparts = [
                methods[name] for name in counterpart_names if name in methods
            ]
            if not counterparts:
                diagnostics.append(Diagnostic(
                    code="RPR002", path=ctx.path, line=writer.lineno,
                    col=writer.col_offset,
                    message=(
                        f"class {node.name} defines {writer_name}() but none "
                        f"of {'/'.join(counterpart_names)} — its checkpoints "
                        f"cannot be restored"
                    ),
                    suggestion=(
                        f"add {counterpart_names[0]}() reading back every "
                        f"key {writer_name}() writes"
                    ),
                ))
                continue
            read = _read_strings(counterparts)
            counterpart_label = "/".join(
                name for name in counterpart_names if name in methods
            )
            for key, lineno in _written_keys(writer):
                if key not in read:
                    diagnostics.append(Diagnostic(
                        code="RPR002", path=ctx.path, line=lineno,
                        message=(
                            f"{node.name}.{writer_name}() writes manifest "
                            f"key {key!r} that {counterpart_label}() never "
                            f"reads"
                        ),
                        suggestion=(
                            "read the key back on restore, or drop it from "
                            "the serialized state (informational keys belong "
                            "in nested reference blocks)"
                        ),
                    ))
    return diagnostics
