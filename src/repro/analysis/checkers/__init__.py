"""Shipped invariant checkers.

Importing this package registers every shipped checker in
:data:`repro.analysis.registry.CHECKERS` (the modules self-register via
``@register_checker``). A new invariant is one module here plus an import
below.
"""

from __future__ import annotations

from . import determinism  # noqa: F401  (RPR001)
from . import state_protocol  # noqa: F401  (RPR002)
from . import sealed  # noqa: F401  (RPR003)
from . import locks  # noqa: F401  (RPR004)
from . import obs_nullpath  # noqa: F401  (RPR005)
