"""RPR001 — determinism: no global RNG state, no wall-clock in library code.

The checkpoint protocol (PR 3) replays every stochastic decision from
serialized ``numpy.random.Generator`` streams; question-identical resume
holds **only** because no component reads the process-global RNG or the wall
clock. This checker flags:

* calls into the stdlib ``random`` module's global stream (``random.random``,
  ``random.shuffle``, ``random.seed``, …) and unseeded ``random.Random()`` /
  ``random.SystemRandom``;
* legacy ``numpy.random`` global-state calls (``np.random.rand``,
  ``np.random.seed``, …) — anything that is not an explicit Generator
  construction — plus **unseeded** ``np.random.default_rng()`` /
  ``np.random.RandomState()``;
* wall-clock reads (``time.time``, ``datetime.now``, …). Monotonic duration
  clocks (``time.perf_counter``/``monotonic``) are fine: they measure spans,
  they never feed algorithm state.

Registered RNG-stream owners (``repro/utils/rng.py`` by default) are exempt;
telemetry timestamps that are intentionally wall-clock carry an inline
``# repro: allow[RPR001] reason`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..diagnostics import Diagnostic
from ..registry import register_checker

# Stdlib `random` module functions that touch the hidden global Random().
_STDLIB_GLOBAL = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

# numpy.random members that construct explicit, seedable streams.
_NUMPY_SEEDED_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
    "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
})
# ...but these two are only deterministic when given an explicit seed.
_NEEDS_SEED = frozenset({"default_rng", "RandomState", "Random"})

_WALLCLOCK = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.asctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_RNG_SUGGESTION = (
    "derive an explicit stream with repro.utils.rng.derive_rng(seed, "
    "namespace) (or np.random.default_rng(seed)) and thread it through — "
    "global RNG state is invisible to the checkpoint protocol"
)
_CLOCK_SUGGESTION = (
    "use time.perf_counter() for durations, or pass timestamps in "
    "explicitly; telemetry that genuinely needs wall time keeps a "
    "`# repro: allow[RPR001] <reason>` comment"
)


@register_checker("RPR001")
def check_determinism(ctx) -> Iterable[Diagnostic]:
    if ctx.config.path_matches(ctx.path, ctx.config.rng_owner_suffixes):
        return []
    diagnostics: List[Diagnostic] = []

    def emit(node: ast.AST, message: str, suggestion: str) -> None:
        diagnostics.append(Diagnostic(
            code="RPR001", path=ctx.path, line=node.lineno,
            col=node.col_offset, message=message, suggestion=suggestion,
        ))

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.imports.resolve(node.func)
        if resolved is None:
            continue
        has_args = bool(node.args or node.keywords)
        if resolved.startswith("random."):
            member = resolved.split(".", 1)[1]
            if member in _STDLIB_GLOBAL:
                emit(node,
                     f"global-state RNG call random.{member}() — silently "
                     f"breaks question-identical checkpoint resume",
                     _RNG_SUGGESTION)
            elif member == "SystemRandom":
                emit(node,
                     "random.SystemRandom() draws OS entropy and can never "
                     "be replayed from a checkpoint",
                     _RNG_SUGGESTION)
            elif member == "Random" and not has_args:
                emit(node,
                     "unseeded random.Random() — seed it explicitly or the "
                     "stream cannot be restored on resume",
                     _RNG_SUGGESTION)
        elif resolved.startswith("numpy.random."):
            member = resolved.split("numpy.random.", 1)[1].split(".", 1)[0]
            if member not in _NUMPY_SEEDED_OK:
                emit(node,
                     f"numpy global-state RNG call np.random.{member}() — "
                     f"silently breaks question-identical checkpoint resume",
                     _RNG_SUGGESTION)
            elif member in _NEEDS_SEED and not has_args:
                emit(node,
                     f"unseeded np.random.{member}() draws OS entropy — "
                     f"pass an explicit seed so the stream is replayable",
                     _RNG_SUGGESTION)
        elif resolved in _WALLCLOCK:
            emit(node,
                 f"wall-clock read {resolved}() in library code — "
                 f"wall time is not checkpointable state",
                 _CLOCK_SUGGESTION)
    return diagnostics
