"""RPR004 — lock discipline: guarded state stays guarded everywhere.

``MetricsRegistry``, ``SharedFeatureCache``, and the arena bitset caches are
mutated from concurrent tenants; each owns a ``threading.Lock``/``RLock``
and wraps its mutations in ``with self._lock:``. The failure mode this
checker targets is *partial* discipline: one method mutates an attribute
under the lock, another mutates the same attribute bare, and the race only
shows up as a lost update or a torn snapshot under load.

Per class, the checker:

1. collects the class's lock attributes — ``self.X = threading.Lock()`` /
   ``RLock()`` assignments, plus any ``with self.X:`` context whose attribute
   name mentions "lock" (covers locks injected through the constructor, as
   the per-family metric children do);
2. collects every mutation of a ``self.<attr>`` — assignment, augmented or
   subscript assignment, and mutating container-method calls (``append``,
   ``update``, ``pop``, …) — tagging each as guarded (lexically inside a
   ``with self.<lock>:``) or bare;
3. flags bare mutations of any attribute that is *also* mutated under the
   lock somewhere in the class. Constructors (``__init__``/``__new__``/
   ``__post_init__``) are exempt: the object is not yet shared.

Classes with no lock attribute are skipped entirely — single-threaded state
(``CoverageStore``'s bitset LRU, for instance) carries no lock on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, NamedTuple, Optional, Set

from ..diagnostics import Diagnostic
from ..registry import register_checker

_LOCK_FACTORIES = frozenset({"threading.Lock", "threading.RLock"})
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__"})


class _Mutation(NamedTuple):
    attr: str
    line: int
    col: int
    method: str
    guarded: bool
    what: str


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_attr_root(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is ``self.X`` possibly under subscripts."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr(node)


def _lock_attrs(cls: ast.ClassDef, imports) -> Set[str]:
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            resolved = imports.resolve(node.value.func)
            if resolved in _LOCK_FACTORIES:
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        locks.add(attr)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and "lock" in attr.lower():
                    locks.add(attr)
    return locks


def _scan_method(
    method: ast.AST, lock_attrs: Set[str], container_mutators
) -> List[_Mutation]:
    mutations: List[_Mutation] = []

    def record(attr, node, guarded, what):
        mutations.append(_Mutation(
            attr=attr, line=node.lineno, col=node.col_offset,
            method=method.name, guarded=guarded, what=what,
        ))

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not method:
                return  # nested defs run later, outside this lock scope
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds = any(
                _self_attr(item.context_expr) in lock_attrs
                for item in node.items
            )
            for item in node.items:
                visit(item.context_expr, guarded)
            for child in node.body:
                visit(child, guarded or holds)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None and attr not in lock_attrs:
                    record(attr, node, guarded, "assignment to")
                elif isinstance(target, ast.Subscript):
                    attr = _self_attr_root(target)
                    if attr is not None:
                        record(attr, node, guarded, "subscript write to")
        elif isinstance(node, ast.AugAssign):
            attr = _self_attr(node.target) or _self_attr_root(node.target)
            if attr is not None:
                record(attr, node, guarded, "augmented assignment to")
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in container_mutators:
                attr = _self_attr(node.func.value)
                if attr is not None:
                    record(
                        attr, node, guarded,
                        f"mutating .{node.func.attr}() call on",
                    )
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    for statement in method.body:
        visit(statement, False)
    return mutations


@register_checker("RPR004")
def check_lock_discipline(ctx) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        lock_attrs = _lock_attrs(cls, ctx.imports)
        if not lock_attrs:
            continue
        mutations: List[_Mutation] = []
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mutations.extend(
                    _scan_method(node, lock_attrs, ctx.config.container_mutators)
                )
        guarded_attrs = {m.attr for m in mutations if m.guarded}
        lock_label = "/".join(f"self.{name}" for name in sorted(lock_attrs))
        for mutation in mutations:
            if mutation.guarded or mutation.attr not in guarded_attrs:
                continue
            if mutation.method in _CONSTRUCTORS:
                continue
            diagnostics.append(Diagnostic(
                code="RPR004", path=ctx.path, line=mutation.line,
                col=mutation.col,
                message=(
                    f"{cls.name}.{mutation.method}() has unguarded "
                    f"{mutation.what} self.{mutation.attr}, which other "
                    f"methods mutate under {lock_label}"
                ),
                suggestion=(
                    f"wrap the mutation in `with {lock_label}:` so every "
                    f"write to self.{mutation.attr} observes the same lock"
                ),
            ))
    return diagnostics
