"""RPR003 — sealed-array immutability: never mutate interned columns.

``CoverageView.ids``, arena ``values_slice`` results, and the ``NodeTable``
interval/CSR columns are sealed (``setflags(write=False)``) and shared
zero-copy across nodes, checkpoints, and tenants; mutating one corrupts
every reader with no error at the mutation site (or, where sealing is
enforced, raises only at runtime on the one path a test happens to drive).

The checker runs an intra-function, flow-insensitive taint pass:

* **sources** — reads of sealed attributes (``view.ids``, ``table.pre`` …),
  calls returning sealed arrays (``values_slice``, ``as_id_array``), any
  array the function itself froze with ``setflags(write=False)``, and basic
  slices of tainted values (numpy slicing aliases memory);
* **purifiers** — ``.copy()`` / ``.astype()`` / ``np.array(...)`` /
  ``.tolist()`` and arithmetic expressions, all of which allocate;
* **sinks** — subscript assignment, augmented assignment, in-place ndarray
  methods (``sort``/``fill``/``resize``/…), ``np.copyto``-style out-arg
  kernels, and un-sealing via ``setflags(write=True)``.

Fancy (array/bool) indexing copies in numpy, so ``ids[mask]`` results are
deliberately *not* tainted — only ``ids[1:]``-style slices alias.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..diagnostics import Diagnostic
from ..registry import register_checker

_PURIFIER_METHODS = frozenset({"copy", "astype", "tolist", "tobytes"})
_NP_COPYING = frozenset({"array", "unique", "sort", "concatenate"})
_NP_OUT_MUTATORS = frozenset({"copyto", "put", "place", "putmask"})

_SUGGESTION = (
    "operate on a copy (arr.copy()) or build a fresh array — sealed "
    "columns are shared zero-copy across views, checkpoints and tenants"
)


class _TaintPass:
    """One function's linear taint walk (branches are over-approximated:
    bodies are processed in order and names, once tainted, stay tainted
    until reassigned to a clean value)."""

    def __init__(self, ctx, fn: ast.AST) -> None:
        self.ctx = ctx
        self.config = ctx.config
        self.fn = fn
        self.tainted: Set[str] = set()
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------- taint model
    def is_tainted(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            return node.attr in self.config.sealed_attrs
        if isinstance(node, ast.Subscript):
            # Basic slices alias the parent's memory; fancy indexing copies.
            if isinstance(node.slice, ast.Slice):
                return self.is_tainted(node.value)
            return False
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _PURIFIER_METHODS:
                    return False
                if func.attr in self.config.sealed_calls:
                    return True
                if func.attr == "asarray" and node.args:
                    # np.asarray returns its argument unchanged when the
                    # dtype already matches — alias, not copy.
                    return self.is_tainted(node.args[0])
                return False
            if isinstance(func, ast.Name):
                if func.id in self.config.sealed_calls:
                    return True
            return False
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, ast.BoolOp):
            return any(self.is_tainted(value) for value in node.values)
        if isinstance(node, (ast.NamedExpr,)):
            return self.is_tainted(node.value)
        return False

    def describe(self, node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return f".{node.attr}"
        if isinstance(node, ast.Subscript):
            return self.describe(node.value)
        return "sealed value"

    def emit(self, node: ast.AST, what: str, target: ast.AST) -> None:
        self.diagnostics.append(Diagnostic(
            code="RPR003", path=self.ctx.path, line=node.lineno,
            col=node.col_offset,
            message=(
                f"{what} on sealed array {self.describe(target)!r} — "
                f"interned/sealed columns must never be written"
            ),
            suggestion=_SUGGESTION,
        ))

    # ---------------------------------------------------------- target helpers
    def _subscript_root_tainted(self, target: ast.Subscript) -> bool:
        base = target.value
        while isinstance(base, ast.Subscript):
            base = base.value
        return self.is_tainted(base)

    def _bind(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        """Apply assignment taint transfer for one target."""
        if isinstance(target, ast.Name):
            if value is not None and self.is_tainted(value):
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._bind(sub_target, sub_value)
            else:
                for sub_target in target.elts:
                    self._bind(sub_target, None)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None)

    # ------------------------------------------------------------- statements
    def run(self) -> List[Diagnostic]:
        body = getattr(self.fn, "body", [])
        for statement in body:
            self._statement(statement)
        return self.diagnostics

    def _statement(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested functions get their own pass
        if isinstance(node, ast.Assign):
            self._check_expression(node.value)
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    if self._subscript_root_tainted(target):
                        self.emit(node, "subscript assignment", target)
                else:
                    self._bind(target, node.value)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._check_expression(node.value)
                if isinstance(node.target, ast.Name):
                    self._bind(node.target, node.value)
            return
        if isinstance(node, ast.AugAssign):
            self._check_expression(node.value)
            target = node.target
            if isinstance(target, ast.Name) and target.id in self.tainted:
                self.emit(node, "in-place augmented assignment", target)
            elif isinstance(target, ast.Subscript) and (
                self._subscript_root_tainted(target)
            ):
                self.emit(node, "in-place augmented assignment", target)
            elif isinstance(target, ast.Attribute) and (
                target.attr in self.config.sealed_attrs
            ):
                self.emit(node, "in-place augmented assignment", target)
            return
        if isinstance(node, ast.Expr):
            self._check_expression(node.value)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_expression(node.iter)
            self._bind(node.target, None)
            for child in node.body + node.orelse:
                self._statement(child)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._check_expression(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None)
            for child in node.body:
                self._statement(child)
            return
        if isinstance(node, ast.If):
            self._check_expression(node.test)
            for child in node.body + node.orelse:
                self._statement(child)
            return
        if isinstance(node, (ast.While,)):
            self._check_expression(node.test)
            for child in node.body + node.orelse:
                self._statement(child)
            return
        if isinstance(node, ast.Try):
            for child in (
                node.body
                + [s for handler in node.handlers for s in handler.body]
                + node.orelse
                + node.finalbody
            ):
                self._statement(child)
            return
        if isinstance(node, ast.Return) and node.value is not None:
            self._check_expression(node.value)
            return
        # Remaining statement kinds (Raise, Assert, Delete, Pass, …): scan
        # any embedded expressions for mutating calls.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._check_expression(child)

    # ------------------------------------------------------------- expressions
    def _check_expression(self, node: ast.AST) -> None:
        for call in [
            n for n in ast.walk(node) if isinstance(n, ast.Call)
        ]:
            func = call.func
            if isinstance(func, ast.Attribute):
                receiver = func.value
                if func.attr in self.config.array_mutators and self.is_tainted(
                    receiver
                ):
                    self.emit(call, f"in-place .{func.attr}() call", receiver)
                elif func.attr == "setflags":
                    frozen_here = any(
                        keyword.arg == "write"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is False
                        for keyword in call.keywords
                    )
                    if frozen_here and isinstance(receiver, ast.Name):
                        # A locally sealed array is a taint source from this
                        # point on: writing what this function just froze is
                        # the bug the runtime would only catch later.
                        self.tainted.add(receiver.id)
                    elif self.is_tainted(receiver):
                        for keyword in call.keywords:
                            if (
                                keyword.arg == "write"
                                and isinstance(keyword.value, ast.Constant)
                                and keyword.value.value
                            ):
                                self.emit(
                                    call, "un-sealing setflags(write=True)",
                                    receiver,
                                )
                elif func.attr in _NP_OUT_MUTATORS and call.args:
                    if self.is_tainted(call.args[0]):
                        self.emit(
                            call, f"np.{func.attr}() into", call.args[0]
                        )
            elif isinstance(func, ast.Name):
                if func.id in _NP_OUT_MUTATORS and call.args and (
                    self.is_tainted(call.args[0])
                ):
                    self.emit(call, f"{func.id}() into", call.args[0])

@register_checker("RPR003")
def check_sealed_arrays(ctx) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            diagnostics.extend(_TaintPass(ctx, node).run())
    return diagnostics
