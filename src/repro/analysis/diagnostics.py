"""Structured lint diagnostics.

Every checker emits :class:`Diagnostic` records — one per violation, with a
stable checker ``code`` (``RPR001``…), the offending ``path``/``line``, a
one-line ``message`` and a ``suggestion`` describing the conforming fix.
Diagnostics are plain data: the driver owns suppression, baselining, sorting
and rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Args:
        code: Checker code (``RPR001``–``RPR005``; ``RPR000`` is reserved for
            driver-level findings such as malformed suppression comments).
        path: File the finding is in (as passed to the driver, ``/``-separated
            for portability).
        line: 1-based line of the offending node.
        message: What invariant is violated and by what.
        suggestion: The conforming alternative (may be empty).
        col: 0-based column, used only to order findings on one line.
    """

    code: str
    path: str
    line: int
    message: str
    suggestion: str = ""
    col: int = field(default=0, compare=False)

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching.

        Line numbers shift on every unrelated edit; the (code, path, message)
        triple is stable as long as the violation itself is untouched.
        """
        return (self.code, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able representation (the ``--format json`` schema)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suggestion": self.suggestion,
        }

    def render(self) -> str:
        """One-line human rendering (``path:line: CODE message``)."""
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable path/line/code ordering used by both output formats."""
    return sorted(diagnostics, key=lambda d: d.sort_key)
