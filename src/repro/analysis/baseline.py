"""Committed baseline of grandfathered findings.

A baseline file lets the linter gate CI at zero *new* findings while known
pre-existing ones are burned down over time. Entries are keyed by
``(code, path, message)`` — deliberately line-number-free, so unrelated
edits to a file do not un-baseline its grandfathered findings.

The shipped baseline (:data:`DEFAULT_BASELINE_PATH`) is **empty**: every
true violation the checkers surface in ``src/`` has been fixed, and the
intentional exceptions carry inline ``# repro: allow[...]`` reasons instead
of baseline entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from ..errors import ConfigurationError
from .diagnostics import Diagnostic

DEFAULT_BASELINE_PATH = ".repro-lint-baseline.json"
BASELINE_KIND = "repro.analysis.baseline"

BaselineKey = Tuple[str, str, str]


def load_baseline(path) -> Set[BaselineKey]:
    """Grandfathered finding keys from a baseline file (empty set if absent)."""
    file_path = Path(path)
    if not file_path.exists():
        return set()
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable lint baseline {path}: {exc}")
    if not isinstance(payload, dict) or payload.get("kind") != BASELINE_KIND:
        raise ConfigurationError(
            f"{path} is not a repro lint baseline file (kind != "
            f"{BASELINE_KIND!r})"
        )
    keys: Set[BaselineKey] = set()
    for entry in payload.get("findings", []):
        try:
            keys.add((str(entry["code"]), str(entry["path"]),
                      str(entry["message"])))
        except (KeyError, TypeError):
            raise ConfigurationError(
                f"{path}: baseline entries need code/path/message fields"
            )
    return keys


def write_baseline(path, diagnostics: Iterable[Diagnostic]) -> Path:
    """Write ``diagnostics`` as the new baseline (sorted, deduplicated)."""
    keys = sorted({d.baseline_key for d in diagnostics})
    findings: List[dict] = [
        {"code": code, "path": file_path, "message": message}
        for code, file_path, message in keys
    ]
    payload = {"kind": BASELINE_KIND, "version": 1, "findings": findings}
    file_path = Path(path)
    file_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return file_path


def split_baselined(diagnostics, baseline: Set[BaselineKey]):
    """Partition diagnostics into (new, grandfathered) against ``baseline``."""
    fresh, grandfathered = [], []
    for diagnostic in diagnostics:
        if diagnostic.baseline_key in baseline:
            grandfathered.append(diagnostic)
        else:
            fresh.append(diagnostic)
    return fresh, grandfathered
