"""Benefit-estimation classifiers (the paper's Kim-CNN substitute).

Darwin trains a short-text classifier on the positives discovered so far (plus
randomly-sampled presumed negatives) and uses its probability estimates to
score how *beneficial* each candidate rule would be (Section 3.3). The paper
uses a Kim (2014) convolutional network over SpaCy embeddings; this package
provides three from-scratch numpy models with the same interface:

* :class:`LogisticTextClassifier` — mean-embedding logistic regression
  (default; fast enough to retrain after every oracle answer),
* :class:`MLPTextClassifier` — one-hidden-layer network over the same features,
* :class:`CNNTextClassifier` — 1-D convolution + max-pooling over the token
  embedding matrix, the closest match to the paper's architecture.
"""

from .base import TextClassifier, TrainingSet
from .features import SentenceFeaturizer
from .logistic import LogisticTextClassifier
from .mlp import MLPTextClassifier
from .cnn import CNNTextClassifier
from .trainer import ClassifierTrainer, make_classifier

__all__ = [
    "TextClassifier",
    "TrainingSet",
    "SentenceFeaturizer",
    "LogisticTextClassifier",
    "MLPTextClassifier",
    "CNNTextClassifier",
    "ClassifierTrainer",
    "make_classifier",
]
