"""One-hidden-layer MLP text classifier (mean-embedding features)."""

from __future__ import annotations

import numpy as np

from ..utils.rng import derive_rng
from .base import TextClassifier, TrainingSet, batches, sigmoid


class MLPTextClassifier(TextClassifier):
    """A small feed-forward network: features -> ReLU hidden layer -> sigmoid.

    Sits between the logistic model and the CNN in capacity. Used by the
    classifier-quality sensitivity experiment (Figure 14) where the number of
    epochs controls the degree of overfitting.
    """

    def __init__(
        self,
        hidden_dim: int = 32,
        epochs: int = 30,
        learning_rate: float = 0.1,
        l2: float = 1e-4,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if hidden_dim <= 0:
            raise ValueError("hidden_dim must be positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.batch_size = batch_size
        self.seed = seed
        self.w1: np.ndarray | None = None
        self.b1: np.ndarray | None = None
        self.w2: np.ndarray | None = None
        self.b2: float = 0.0

    def fit(self, training_set: TrainingSet) -> "MLPTextClassifier":
        features = np.asarray(training_set.features, dtype=np.float64)
        labels = np.asarray(training_set.labels, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("MLPTextClassifier expects 2-D features")
        n, d = features.shape
        rng = derive_rng(self.seed, "mlp-init")
        scale = 1.0 / np.sqrt(max(d, 1))
        self.w1 = rng.standard_normal((d, self.hidden_dim)) * scale
        self.b1 = np.zeros(self.hidden_dim)
        self.w2 = rng.standard_normal(self.hidden_dim) / np.sqrt(self.hidden_dim)
        self.b2 = 0.0
        if n == 0:
            self._fitted = True
            return self
        positives = max(1.0, labels.sum())
        negatives = max(1.0, n - labels.sum())
        example_weights = np.where(labels > 0.5, n / (2 * positives), n / (2 * negatives))
        for _ in range(self.epochs):
            for batch in batches(n, self.batch_size, rng):
                x = features[batch]
                y = labels[batch]
                w = example_weights[batch]
                hidden_pre = x @ self.w1 + self.b1
                hidden = np.maximum(hidden_pre, 0.0)
                scores = hidden @ self.w2 + self.b2
                probs = sigmoid(scores)
                error = (probs - y) * w / len(batch)
                grad_w2 = hidden.T @ error + self.l2 * self.w2
                grad_b2 = float(error.sum())
                grad_hidden = np.outer(error, self.w2)
                grad_hidden[hidden_pre <= 0.0] = 0.0
                grad_w1 = x.T @ grad_hidden + self.l2 * self.w1
                grad_b1 = grad_hidden.sum(axis=0)
                self.w2 -= self.learning_rate * grad_w2
                self.b2 -= self.learning_rate * grad_b2
                self.w1 -= self.learning_rate * grad_w1
                self.b1 -= self.learning_rate * grad_b1
        self._fitted = True
        return self

    # -------------------------------------------------------- state protocol
    def state_arrays(self) -> "dict[str, np.ndarray]":
        self._check_fitted()
        return {
            "w1": self.w1,
            "b1": self.b1,
            "w2": self.w2,
            "b2": np.array([self.b2]),
        }

    def load_state_arrays(self, arrays: "dict[str, np.ndarray]") -> None:
        self.w1 = np.asarray(arrays["w1"], dtype=np.float64)
        self.b1 = np.asarray(arrays["b1"], dtype=np.float64)
        self.w2 = np.asarray(arrays["w2"], dtype=np.float64)
        self.b2 = float(np.asarray(arrays["b2"]).reshape(-1)[0])
        self._fitted = True

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        hidden = np.maximum(features @ self.w1 + self.b1, 0.0)
        scores = hidden @ self.w2 + self.b2
        return sigmoid(scores)
