"""Training / scoring orchestration for the benefit classifier.

The trainer reproduces how Darwin uses its classifier (Sections 3.3 and 4.5):

* the training set is the positives discovered so far plus randomly-sampled
  sentences presumed negative,
* the classifier is retrained (from scratch) whenever the oracle confirms a
  rule that adds new positives,
* after retraining, every corpus sentence gets a probability score ``p_s``
  used by the benefit function. The paper's optimization — only re-score
  sentences whose previous score exceeded a confidence floor, with a full
  refresh every few retrains — is implemented in :meth:`score_corpus`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

import numpy as np

from ..config import ClassifierConfig
from ..errors import ClassifierError
from ..text.corpus import Corpus
from ..utils.rng import derive_rng
from .base import TextClassifier, TrainingSet
from .features import SentenceFeaturizer


def make_classifier(config: ClassifierConfig) -> TextClassifier:
    """Instantiate the classifier selected by ``config.model``.

    Resolution goes through :data:`repro.engine.registry.CLASSIFIERS`, so
    custom models registered with ``@register_classifier("name")`` are
    constructible here (and therefore from a plain config dict) exactly like
    the shipped ``"logistic"``/``"mlp"``/``"cnn"`` factories.
    """
    from ..engine.registry import CLASSIFIERS

    if config.model not in CLASSIFIERS:
        raise ClassifierError(f"unknown classifier model {config.model!r}")
    return CLASSIFIERS.create(config.model, config)


class ClassifierTrainer:
    """Retrains the benefit classifier and maintains per-sentence scores.

    Args:
        corpus: The corpus being labeled.
        featurizer: Sentence featurizer (embeddings trained on the corpus).
        config: Classifier hyper-parameters.
        score_floor: Sentences whose previous score is below this floor are
            skipped during incremental re-scoring (0.3 in the paper).
        full_rescore_every: Do a full corpus re-score every this many retrains.
        incremental_scoring: Overrides ``config.incremental_scoring`` when
            given (None defers to the config, so every construction site
            honours ``ClassifierConfig(incremental_scoring=True)``).
    """

    def __init__(
        self,
        corpus: Corpus,
        featurizer: SentenceFeaturizer,
        config: Optional[ClassifierConfig] = None,
        score_floor: float = 0.3,
        full_rescore_every: int = 3,
        incremental_scoring: Optional[bool] = None,
    ) -> None:
        self.corpus = corpus
        self.featurizer = featurizer
        self.config = config or ClassifierConfig()
        self.score_floor = score_floor
        self.full_rescore_every = max(1, full_rescore_every)
        self.incremental_scoring = (
            self.config.incremental_scoring
            if incremental_scoring is None
            else incremental_scoring
        )
        self.classifier: Optional[TextClassifier] = None
        self._scores = np.full(len(corpus), 0.5, dtype=np.float64)
        self._retrain_count = 0
        self._rng = derive_rng(self.config.seed, "trainer-negatives", corpus.name)

    # ---------------------------------------------------------------- training
    def retrain(self, positive_ids: Set[int]) -> TextClassifier:
        """Retrain from scratch on ``positive_ids`` plus sampled negatives."""
        if not positive_ids:
            raise ClassifierError("cannot train without at least one positive")
        positives = sorted(positive_ids)
        negatives = self._sample_negatives(positive_ids)
        sentences = [self.corpus[i] for i in positives] + [
            self.corpus[i] for i in negatives
        ]
        labels = np.array([1.0] * len(positives) + [0.0] * len(negatives))
        features = self._featurize(sentences)
        training_set = TrainingSet(features=features, labels=labels)
        self.classifier = make_classifier(self.config)
        self.classifier.fit(training_set)
        self._retrain_count += 1
        self._refresh_scores(positive_ids)
        return self.classifier

    def _sample_negatives(self, positive_ids: Set[int]) -> Sequence[int]:
        # Columnar pool construction: flag positives in one mask instead of a
        # per-sentence Python membership test over the whole corpus.
        mask = np.ones(len(self.corpus), dtype=bool)
        positives = np.fromiter(positive_ids, dtype=np.int64, count=len(positive_ids))
        mask[positives[positives < mask.size]] = False
        pool = np.flatnonzero(mask)
        if not pool.size:
            return []
        target = int(np.ceil(len(positive_ids) * self.config.negative_sample_ratio))
        target = max(target, 5)
        target = min(target, int(pool.size))
        chosen = self._rng.choice(pool.size, size=target, replace=False)
        return pool[chosen].tolist()

    def _featurize(self, sentences: Iterable) -> np.ndarray:
        if self.config.model == "cnn":
            return self.featurizer.matrices(sentences)
        return self.featurizer.vectors(sentences)

    # ----------------------------------------------------------------- scoring
    def _refresh_scores(self, positive_ids: Set[int]) -> None:
        if self.classifier is None:
            return
        full = (
            not self.incremental_scoring
            or self._retrain_count % self.full_rescore_every == 0
        )
        if full:
            targets = list(range(len(self.corpus)))
        else:
            targets = [
                i
                for i in range(len(self.corpus))
                if self._scores[i] >= self.score_floor or i in positive_ids
            ]
        if not targets:
            return
        sentences = [self.corpus[i] for i in targets]
        features = self._featurize(sentences)
        probs = self.classifier.predict_proba(features)
        self._scores[np.array(targets)] = probs

    def score_corpus(self) -> np.ndarray:
        """Current per-sentence positive-probability estimates (id order)."""
        return self._scores.copy()

    def score(self, sentence_id: int) -> float:
        """Probability estimate for one sentence."""
        return float(self._scores[sentence_id])

    def scores_for(self, sentence_ids: Iterable[int]) -> Dict[int, float]:
        """Probability estimates for specific sentences."""
        return {i: float(self._scores[i]) for i in sentence_ids}

    @property
    def retrain_count(self) -> int:
        """How many times the classifier has been retrained."""
        return self._retrain_count

    # ---------------------------------------------------------- state protocol
    def state_dict(self, bundle, prefix: str = "trainer/") -> "dict":
        """Serialize scores, retrain counter, RNG stream, and model weights.

        The per-sentence score column and the negative-sampling RNG state are
        what replay determinism needs (the classifier object is recreated
        from scratch at every retrain); the weights additionally let a
        restored trainer answer :meth:`predict_proba`-style queries without a
        retrain. Arrays go into ``bundle``; the returned dict is JSON-able.
        """
        from ..engine.state import rng_state_dict

        state = {
            "scores": bundle.put(prefix + "scores", self._scores),
            "retrain_count": self._retrain_count,
            "rng": rng_state_dict(self._rng),
            "classifier": None,
        }
        if self.classifier is not None and self.classifier.is_fitted:
            arrays = self.classifier.state_arrays()
            state["classifier"] = {
                "model": self.config.model,
                "arrays": {
                    name: bundle.put(prefix + "classifier/" + name, array)
                    for name, array in arrays.items()
                },
            }
        return state

    def load_state(self, state: "dict", bundle) -> None:
        """Restore :meth:`state_dict` output into this trainer."""
        from ..engine.state import restore_rng

        self._scores = np.asarray(bundle.get(state["scores"]), dtype=np.float64).copy()
        self._retrain_count = int(state["retrain_count"])
        self._rng = restore_rng(state["rng"])
        classifier_state = state.get("classifier")
        if classifier_state is None:
            self.classifier = None
        else:
            recorded_model = classifier_state.get("model")
            if recorded_model is not None and recorded_model != self.config.model:
                raise ClassifierError(
                    f"checkpoint holds {recorded_model!r} classifier weights "
                    f"but this trainer is configured for "
                    f"{self.config.model!r}"
                )
            self.classifier = make_classifier(self.config)
            self.classifier.load_state_arrays(
                {
                    name: bundle.get(key)
                    for name, key in classifier_state["arrays"].items()
                }
            )

    # -------------------------------------------------------------- evaluation
    def f1_against(self, positive_ids: Set[int], threshold: float = 0.5) -> float:
        """F1 of the current classifier against ground-truth ``positive_ids``."""
        predictions = self._scores >= threshold
        truth = np.zeros(len(self.corpus), dtype=bool)
        truth[list(positive_ids)] = True
        true_positive = int(np.sum(predictions & truth))
        predicted_positive = int(predictions.sum())
        actual_positive = int(truth.sum())
        if predicted_positive == 0 or actual_positive == 0 or true_positive == 0:
            return 0.0
        precision = true_positive / predicted_positive
        recall = true_positive / actual_positive
        return 2 * precision * recall / (precision + recall)
