"""Logistic-regression text classifier (mean-embedding features)."""

from __future__ import annotations

import numpy as np

from ..utils.rng import derive_rng
from .base import TextClassifier, TrainingSet, batches, sigmoid


class LogisticTextClassifier(TextClassifier):
    """L2-regularised logistic regression trained by mini-batch SGD.

    This is the default benefit classifier: with only a handful of positives
    per Darwin iteration, a linear model over mean embeddings is both fast to
    retrain and hard to overfit, which matters for the benefit estimates
    (Section 3.8 assumes only that the classifier is better than random).
    """

    def __init__(
        self,
        epochs: int = 20,
        learning_rate: float = 0.5,
        l2: float = 1e-4,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.batch_size = batch_size
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def fit(self, training_set: TrainingSet) -> "LogisticTextClassifier":
        features = np.asarray(training_set.features, dtype=np.float64)
        labels = np.asarray(training_set.labels, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("LogisticTextClassifier expects 2-D features")
        n, d = features.shape
        rng = derive_rng(self.seed, "logistic-init")
        self.weights = np.zeros(d)
        self.bias = 0.0
        if n == 0:
            self._fitted = True
            return self
        # Balance classes through per-example weights so a single positive
        # among many sampled negatives still moves the decision boundary.
        positives = max(1.0, labels.sum())
        negatives = max(1.0, n - labels.sum())
        example_weights = np.where(labels > 0.5, n / (2 * positives), n / (2 * negatives))
        for _ in range(self.epochs):
            for batch in batches(n, self.batch_size, rng):
                x = features[batch]
                y = labels[batch]
                w = example_weights[batch]
                scores = x @ self.weights + self.bias
                probs = sigmoid(scores)
                error = (probs - y) * w
                grad_w = x.T @ error / len(batch) + self.l2 * self.weights
                grad_b = float(error.mean())
                self.weights -= self.learning_rate * grad_w
                self.bias -= self.learning_rate * grad_b
        self._fitted = True
        return self

    # -------------------------------------------------------- state protocol
    def state_arrays(self) -> "dict[str, np.ndarray]":
        self._check_fitted()
        return {"weights": self.weights, "bias": np.array([self.bias])}

    def load_state_arrays(self, arrays: "dict[str, np.ndarray]") -> None:
        self.weights = np.asarray(arrays["weights"], dtype=np.float64)
        self.bias = float(np.asarray(arrays["bias"]).reshape(-1)[0])
        self._fitted = True

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        scores = features @ self.weights + self.bias
        return sigmoid(scores)
