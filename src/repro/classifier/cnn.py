"""A from-scratch numpy 1-D convolutional text classifier.

This is the closest analogue to the Kim (2014) architecture the paper trains:
word embeddings are stacked into an ``(max_len, dim)`` matrix, passed through
1-D convolution filters of several widths, max-pooled over time, and fed to a
dense sigmoid head. Gradients are derived by hand; the model is intentionally
small so it can be retrained within a Darwin iteration on CPU.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..utils.rng import derive_rng
from .base import TextClassifier, TrainingSet, batches, sigmoid


class CNNTextClassifier(TextClassifier):
    """1-D CNN over token-embedding matrices.

    Args:
        filter_widths: Convolution window sizes (tokens per filter).
        num_filters: Number of filters per width.
        epochs: Training epochs.
        learning_rate: SGD step size.
        l2: L2 regularisation on all weights.
        batch_size: Mini-batch size.
        seed: RNG seed for weight initialisation.
    """

    def __init__(
        self,
        filter_widths: Sequence[int] = (2, 3, 4),
        num_filters: int = 8,
        epochs: int = 10,
        learning_rate: float = 0.05,
        l2: float = 1e-4,
        batch_size: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not filter_widths:
            raise ValueError("at least one filter width is required")
        if num_filters <= 0:
            raise ValueError("num_filters must be positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.filter_widths = tuple(int(w) for w in filter_widths)
        self.num_filters = num_filters
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.batch_size = batch_size
        self.seed = seed
        self.filters: Dict[int, np.ndarray] = {}
        self.filter_bias: Dict[int, np.ndarray] = {}
        self.dense_w: np.ndarray | None = None
        self.dense_b: float = 0.0

    # -------------------------------------------------------------- training
    def fit(self, training_set: TrainingSet) -> "CNNTextClassifier":
        tensors = np.asarray(training_set.features, dtype=np.float64)
        labels = np.asarray(training_set.labels, dtype=np.float64)
        if tensors.ndim != 3:
            raise ValueError("CNNTextClassifier expects (n, max_len, dim) features")
        n, max_len, dim = tensors.shape
        rng = derive_rng(self.seed, "cnn-init")
        self.filters = {}
        self.filter_bias = {}
        for width in self.filter_widths:
            scale = 1.0 / np.sqrt(width * dim)
            self.filters[width] = rng.standard_normal(
                (self.num_filters, width, dim)
            ) * scale
            self.filter_bias[width] = np.zeros(self.num_filters)
        total_filters = self.num_filters * len(self.filter_widths)
        self.dense_w = rng.standard_normal(total_filters) / np.sqrt(total_filters)
        self.dense_b = 0.0
        if n == 0:
            self._fitted = True
            return self

        positives = max(1.0, labels.sum())
        negatives = max(1.0, n - labels.sum())
        example_weights = np.where(labels > 0.5, n / (2 * positives), n / (2 * negatives))

        for _ in range(self.epochs):
            for batch in batches(n, self.batch_size, rng):
                self._train_batch(tensors[batch], labels[batch], example_weights[batch])
        self._fitted = True
        return self

    def _train_batch(
        self, x: np.ndarray, y: np.ndarray, weights: np.ndarray
    ) -> None:
        pooled, caches = self._forward_features(x)
        scores = pooled @ self.dense_w + self.dense_b
        probs = sigmoid(scores)
        error = (probs - y) * weights / max(len(y), 1)

        grad_dense_w = pooled.T @ error + self.l2 * self.dense_w
        grad_dense_b = float(error.sum())
        grad_pooled = np.outer(error, self.dense_w)

        offset = 0
        for width in self.filter_widths:
            windows, activation, argmax = caches[width]
            grad_slice = grad_pooled[:, offset:offset + self.num_filters]
            grad_filters = np.zeros_like(self.filters[width])
            grad_bias = np.zeros(self.num_filters)
            batch_size = x.shape[0]
            for item in range(batch_size):
                for filt in range(self.num_filters):
                    position = argmax[item, filt]
                    if activation[item, filt, position] <= 0.0:
                        continue
                    upstream = grad_slice[item, filt]
                    grad_filters[filt] += upstream * windows[item, position]
                    grad_bias[filt] += upstream
            grad_filters += self.l2 * self.filters[width]
            self.filters[width] -= self.learning_rate * grad_filters
            self.filter_bias[width] -= self.learning_rate * grad_bias
            offset += self.num_filters

        self.dense_w -= self.learning_rate * grad_dense_w
        self.dense_b -= self.learning_rate * grad_dense_b

    # -------------------------------------------------------- state protocol
    def state_arrays(self) -> "dict[str, np.ndarray]":
        self._check_fitted()
        arrays: "dict[str, np.ndarray]" = {
            "dense_w": self.dense_w,
            "dense_b": np.array([self.dense_b]),
            "widths": np.array(self.filter_widths, dtype=np.int64),
        }
        for width in self.filter_widths:
            arrays[f"filters_{width}"] = self.filters[width]
            arrays[f"filter_bias_{width}"] = self.filter_bias[width]
        return arrays

    def load_state_arrays(self, arrays: "dict[str, np.ndarray]") -> None:
        widths = tuple(int(w) for w in np.asarray(arrays["widths"]).reshape(-1))
        self.filter_widths = widths
        self.filters = {
            width: np.asarray(arrays[f"filters_{width}"], dtype=np.float64)
            for width in widths
        }
        self.filter_bias = {
            width: np.asarray(arrays[f"filter_bias_{width}"], dtype=np.float64)
            for width in widths
        }
        self.dense_w = np.asarray(arrays["dense_w"], dtype=np.float64)
        self.dense_b = float(np.asarray(arrays["dense_b"]).reshape(-1)[0])
        if self.filters:
            self.num_filters = next(iter(self.filters.values())).shape[0]
        self._fitted = True

    # ------------------------------------------------------------- inference
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        tensors = np.asarray(features, dtype=np.float64)
        if tensors.ndim == 2:
            tensors = tensors[None, :, :]
        pooled, _ = self._forward_features(tensors)
        scores = pooled @ self.dense_w + self.dense_b
        return sigmoid(scores)

    # --------------------------------------------------------------- internals
    def _forward_features(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
        """Convolution + ReLU + max-pool for every filter width.

        Returns the pooled feature matrix ``(n, num_filters * widths)`` and a
        cache per width holding (windows, activations, argmax positions) for
        the backward pass.
        """
        batch_size, max_len, dim = x.shape
        pooled_parts: List[np.ndarray] = []
        caches: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for width in self.filter_widths:
            positions = max(1, max_len - width + 1)
            # windows: (n, positions, width, dim)
            windows = np.zeros((batch_size, positions, width, dim))
            for position in range(positions):
                windows[:, position] = x[:, position:position + width, :]
            flat_windows = windows.reshape(batch_size, positions, width * dim)
            flat_filters = self.filters[width].reshape(self.num_filters, width * dim)
            # conv: (n, num_filters, positions)
            conv = np.einsum("npd,fd->nfp", flat_windows, flat_filters)
            conv += self.filter_bias[width][None, :, None]
            activation = np.maximum(conv, 0.0)
            argmax = activation.argmax(axis=2)
            pooled = activation.max(axis=2)
            pooled_parts.append(pooled)
            caches[width] = (windows, activation, argmax)
        return np.concatenate(pooled_parts, axis=1), caches
