"""Sentence featurization for the benefit classifiers.

The paper stacks word-embedding vectors into a matrix and feeds it to a CNN.
Here the featurizer supports both views:

* :meth:`SentenceFeaturizer.vector` — the mean embedding plus a few cheap
  surface features (length, question mark, digit presence), used by the
  logistic / MLP models,
* :meth:`SentenceFeaturizer.matrix` — the padded ``(max_len, dim)`` embedding
  matrix used by the CNN.

Feature matrices for a whole corpus are cached because Darwin re-scores every
sentence after each retrain (the paper's main efficiency bottleneck).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..text.corpus import Corpus
from ..text.embeddings import EmbeddingModel, build_embeddings
from ..text.sentence import Sentence
from ..utils.rng import stable_hash

_SURFACE_FEATURES = 4

_SLAB_DTYPE = np.dtype(np.float64)


class SharedMemorySlab:
    """A cross-process sentence→feature-vector slab in shared memory.

    One ``multiprocessing.shared_memory`` segment holds a dense
    ``(num_vectors, dim)`` float64 block plus one ``uint8`` ready flag per
    row. Worker processes of a :class:`repro.fleet` deployment attach the
    same segment, so each sentence's feature vector is computed once per
    *machine* instead of once per process.

    Concurrency contract: feature vectors are pure functions of the shared
    immutable corpus and the shared fitted embeddings, so two processes
    racing on the same row write byte-identical data. Writers store the row
    first and set the flag last; readers trust a row only once its flag is
    set — a torn read is therefore impossible and no cross-process lock is
    needed.
    """

    def __init__(self, shm, num_vectors: int, dim: int, owner: bool) -> None:
        self._shm = shm
        self.num_vectors = int(num_vectors)
        self.dim = int(dim)
        self._owner = owner
        data_bytes = self.num_vectors * self.dim * _SLAB_DTYPE.itemsize
        self._data = np.ndarray(
            (self.num_vectors, self.dim), dtype=_SLAB_DTYPE, buffer=shm.buf
        )
        self._flags = np.ndarray(
            (self.num_vectors,), dtype=np.uint8, buffer=shm.buf, offset=data_bytes
        )

    # -------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, num_vectors: int, dim: int) -> "SharedMemorySlab":
        """Allocate a fresh zeroed slab (the supervisor side; owns unlink)."""
        from multiprocessing import shared_memory

        if num_vectors <= 0 or dim <= 0:
            raise ValueError("num_vectors and dim must be positive")
        size = num_vectors * dim * _SLAB_DTYPE.itemsize + num_vectors
        shm = shared_memory.SharedMemory(create=True, size=size)
        slab = cls(shm, num_vectors, dim, owner=True)
        slab._flags[:] = 0
        return slab

    @classmethod
    def attach(cls, spec: Dict[str, int]) -> "SharedMemorySlab":
        """Attach an existing slab by its :meth:`spec` (the worker side)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=str(spec["name"]), create=False)
        # Pre-3.13 SharedMemory registers attaches with the resource tracker
        # too. That is safe here — fleet children share the supervisor's
        # tracker process, whose cache is a set (duplicate registrations
        # collapse), and only the creator ever unlinks — while explicitly
        # unregistering would race the creator's unlink into tracker
        # KeyErrors. The tracker reclaiming the segment on abnormal
        # whole-program exit is leak prevention, not a hazard.
        return cls(shm, int(spec["num_vectors"]), int(spec["dim"]), owner=False)

    def spec(self) -> Dict[str, object]:
        """JSON-able attach handle: segment name plus slab geometry."""
        return {
            "name": self._shm.name,
            "num_vectors": self.num_vectors,
            "dim": self.dim,
        }

    def close(self) -> None:
        """Detach this process's mapping (does not free the segment)."""
        try:
            self._shm.close()
        except BufferError:
            # Live row views still reference the buffer; leave the mapping
            # to be reclaimed when they die.
            pass

    def unlink(self) -> None:
        """Free the segment machine-wide (creator only; idempotent)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    # ----------------------------------------------------------------- access
    def get(self, row: int) -> Optional[np.ndarray]:
        """Read-only view of ``row``'s vector, or None when not yet computed."""
        if not 0 <= row < self.num_vectors or not self._flags[row]:
            return None
        view = self._data[row].view()
        view.setflags(write=False)
        return view

    def put(self, row: int, vector: np.ndarray) -> Optional[np.ndarray]:
        """Store ``row``'s vector (idempotent); None when it does not fit."""
        if not 0 <= row < self.num_vectors or vector.shape != (self.dim,):
            return None
        self._data[row, :] = vector
        self._flags[row] = 1  # commit point: readers trust the row only now
        return self.get(row)

    # ------------------------------------------------------------- accounting
    @property
    def ready_count(self) -> int:
        """Rows computed so far (machine-wide)."""
        return int(np.count_nonzero(self._flags))

    @property
    def nbytes(self) -> int:
        """Size of the shared segment (exists once per machine)."""
        return self._shm.size


class SharedFeatureCache:
    """Sentence-id keyed feature cache shareable between featurizer handles.

    In a multi-tenant pool every tenant re-scores the same corpus after each
    retrain; the feature vectors are pure functions of the (immutable)
    sentences and the (shared, fitted) embeddings, so one tenant computing a
    vector means no other tenant ever should. The pool creates one cache and
    every tenant's featurizer reads/writes it. Hit/miss counters make the
    no-double-compute property testable, and a lock keeps get-then-put safe
    if engines ever featurize from worker threads (the asyncio serve loop is
    single-threaded, but the cache does not rely on that).

    With a :class:`SharedMemorySlab` attached, vector storage moves into the
    cross-process shared segment: a vector any fleet worker computed is a hit
    for every other worker on the machine. Vectors that do not fit the slab
    (out-of-range sentence id, mismatched dimensionality) and all matrices
    fall back to the process-local dicts.
    """

    def __init__(self, slab: Optional["SharedMemorySlab"] = None) -> None:
        self._vectors: Dict[int, np.ndarray] = {}
        self._matrices: Dict[int, np.ndarray] = {}
        self._slab = slab
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._fingerprint: Optional[tuple] = None

    @property
    def slab(self) -> Optional["SharedMemorySlab"]:
        """The shared-memory vector slab, when this cache is fleet-backed."""
        return self._slab

    def attach_slab(self, slab: "SharedMemorySlab") -> None:
        """Move vector storage into ``slab`` (fleet setup, post-fit).

        The slab is sized by the fitted vector dimensionality, which only
        exists after :meth:`SentenceFeaturizer.fit` — so the supervisor fits
        first, then attaches. Already-cached heap vectors stay valid (the
        heap dict is consulted before the slab); re-attaching raises.
        """
        with self._lock:
            if self._slab is not None:
                raise ValueError(
                    "SharedFeatureCache already has a shared-memory slab"
                )
            self._slab = slab

    def bind(self, embeddings, max_len: int, bow_dim: int) -> None:
        """Pin the cache to one feature space; re-binding differently raises.

        Entries are keyed by sentence id alone, so a cache shared between
        featurizers over *different* embeddings (or different vector shapes)
        would silently hand one featurizer the other's vectors. Every
        featurizer binds its (embeddings, max_len, bow_dim) identity on
        attach; a mismatch is a wiring bug and fails loudly. The embeddings
        object is held by strong reference and compared by identity — an
        ``id()`` fingerprint could be silently defeated when CPython reuses
        a freed object's address.
        """
        with self._lock:
            if self._fingerprint is None:
                self._fingerprint = (embeddings, max_len, bow_dim)
                return
            bound_embeddings, bound_max_len, bound_bow_dim = self._fingerprint
            if (
                bound_embeddings is not embeddings
                or bound_max_len != max_len
                or bound_bow_dim != bow_dim
            ):
                raise ValueError(
                    "SharedFeatureCache is already bound to a different "
                    "featurizer configuration; share caches only between "
                    "featurizers over the same embeddings (use "
                    "SentenceFeaturizer.sharing_cache())"
                )

    # ------------------------------------------------------------------ access
    def get_vector(self, sentence_id: int) -> Optional[np.ndarray]:
        with self._lock:
            cached = self._vectors.get(sentence_id)
            if cached is None and self._slab is not None:
                cached = self._slab.get(sentence_id)
            if cached is None:
                self._misses += 1
            else:
                self._hits += 1
            return cached

    def put_vector(self, sentence_id: int, features: np.ndarray) -> np.ndarray:
        with self._lock:
            if self._slab is not None:
                stored = self._slab.put(sentence_id, features)
                if stored is not None:
                    return stored
            # First writer wins, so every handle sees one canonical array per
            # sentence even under racing computes. Frozen, because that one
            # array is shared by every tenant: an in-place mutation would
            # corrupt the feature pool-wide with no error.
            features.setflags(write=False)
            return self._vectors.setdefault(sentence_id, features)

    def get_matrix(self, sentence_id: int) -> Optional[np.ndarray]:
        with self._lock:
            cached = self._matrices.get(sentence_id)
            if cached is None:
                self._misses += 1
            else:
                self._hits += 1
            return cached

    def put_matrix(self, sentence_id: int, matrix: np.ndarray) -> np.ndarray:
        with self._lock:
            matrix.setflags(write=False)
            return self._matrices.setdefault(sentence_id, matrix)

    # -------------------------------------------------------------- accounting
    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that required a fresh feature computation."""
        return self._misses

    @property
    def nbytes(self) -> int:
        """Heap bytes held by the cached arrays (shared once per pool)."""
        with self._lock:
            return sum(a.nbytes for a in self._vectors.values()) + sum(
                a.nbytes for a in self._matrices.values()
            )

    def stats(self) -> Dict[str, float]:
        """Counters for benchmarks, the serve loop's memory report, and the
        pool's metrics collector: hits, misses, entries, nbytes (plus the
        per-kind breakdown; ``bytes`` is kept as an alias of ``nbytes`` for
        pre-observability callers)."""
        with self._lock:
            nbytes = float(
                sum(a.nbytes for a in self._vectors.values())
                + sum(a.nbytes for a in self._matrices.values())
            )
            slab_vectors = (
                float(self._slab.ready_count) if self._slab is not None else 0.0
            )
            stats = {
                "cached_vectors": float(len(self._vectors)) + slab_vectors,
                "cached_matrices": float(len(self._matrices)),
                "entries": float(len(self._vectors) + len(self._matrices))
                + slab_vectors,
                "hits": float(self._hits),
                "misses": float(self._misses),
                "nbytes": nbytes,
                "bytes": nbytes,
            }
            if self._slab is not None:
                # The slab exists once per machine; report it separately so
                # per-process residency sums stay honest.
                stats["slab_vectors"] = slab_vectors
                stats["slab_nbytes"] = float(self._slab.nbytes)
            return stats

    def invalidate(self, sentence_ids: Optional[Sequence[int]] = None) -> None:
        """Drop cached features (all of them when ``sentence_ids`` is None)."""
        with self._lock:
            if sentence_ids is None:
                self._vectors.clear()
                self._matrices.clear()
                if self._slab is not None:
                    self._slab._flags[:] = 0
                return
            for sentence_id in sentence_ids:
                self._vectors.pop(sentence_id, None)
                self._matrices.pop(sentence_id, None)
                if (
                    self._slab is not None
                    and 0 <= sentence_id < self._slab.num_vectors
                ):
                    self._slab._flags[sentence_id] = 0


class SentenceFeaturizer:
    """Maps sentences to dense feature vectors / embedding matrices.

    The vector view concatenates three blocks:

    * the mean word embedding (semantic generalization across related words,
      the role SpaCy vectors play in the paper),
    * a hashed bag-of-words block (sharp lexical evidence — with only a
      handful of positives a linear model needs features it can latch onto),
    * a few cheap surface features (length, question mark, digits).

    Args:
        embeddings: A fitted :class:`EmbeddingModel`. Use
            :meth:`SentenceFeaturizer.fit` to train one from a corpus.
        max_len: Token cut-off for the CNN's embedding matrices.
        bow_dim: Width of the hashed bag-of-words block (0 disables it).
        cache: A :class:`SharedFeatureCache` to read/write. Pass one cache to
            several featurizers (or share one featurizer outright) so
            overlapping workloads — e.g. the tenants of a
            :class:`~repro.serving.TenantPool` — never compute the same
            sentence's features twice. Defaults to a private cache, which
            preserves the old per-featurizer behaviour.
    """

    def __init__(
        self,
        embeddings: EmbeddingModel,
        max_len: int = 30,
        bow_dim: int = 192,
        cache: Optional[SharedFeatureCache] = None,
    ) -> None:
        if max_len <= 0:
            raise ValueError("max_len must be positive")
        if bow_dim < 0:
            raise ValueError("bow_dim must be non-negative")
        self.embeddings = embeddings
        self.max_len = max_len
        self.bow_dim = bow_dim
        self.cache = cache if cache is not None else SharedFeatureCache()
        self.cache.bind(embeddings, max_len, bow_dim)

    @property
    def vector_dim(self) -> int:
        """Dimensionality of :meth:`vector` outputs."""
        return self.embeddings.dim + self.bow_dim + _SURFACE_FEATURES

    @classmethod
    def fit(
        cls,
        corpus: Corpus,
        embedding_dim: int = 50,
        max_len: int = 30,
        seed: int = 0,
        bow_dim: int = 192,
        cache: Optional[SharedFeatureCache] = None,
    ) -> "SentenceFeaturizer":
        """Train embeddings on ``corpus`` and return a featurizer over them."""
        embeddings = build_embeddings(
            (s.tokens for s in corpus), dim=embedding_dim, seed=seed
        )
        return cls(embeddings, max_len=max_len, bow_dim=bow_dim, cache=cache)

    def sharing_cache(self) -> "SentenceFeaturizer":
        """A new featurizer handle over the same embeddings *and* cache.

        Handles are what a per-tenant component should own: they share the
        fitted model and the feature cache (so nothing is recomputed across
        tenants) without sharing any mutable per-handle state.
        """
        return SentenceFeaturizer(
            self.embeddings,
            max_len=self.max_len,
            bow_dim=self.bow_dim,
            cache=self.cache,
        )

    # ------------------------------------------------------------ single-item
    def vector(self, sentence: Sentence) -> np.ndarray:
        """Mean-embedding + surface-feature vector for ``sentence``."""
        cached = self.cache.get_vector(sentence.sentence_id)
        if cached is not None:
            return cached
        embedding = self.embeddings.sentence_vector(sentence.tokens)
        surface = np.array(
            [
                min(len(sentence.tokens), 40) / 40.0,
                1.0 if "?" in sentence.tokens else 0.0,
                1.0 if any(t.isdigit() for t in sentence.tokens) else 0.0,
                len(set(sentence.tokens)) / (len(sentence.tokens) + 1.0),
            ]
        )
        features = np.concatenate([embedding, self._bow(sentence.tokens), surface])
        return self.cache.put_vector(sentence.sentence_id, features)

    def _bow(self, tokens) -> np.ndarray:
        """Hashed bag-of-words block (L2-normalised token-count buckets)."""
        if self.bow_dim == 0:
            return np.zeros(0)
        bow = np.zeros(self.bow_dim)
        for token in tokens:
            bow[stable_hash("bow", token) % self.bow_dim] += 1.0
        norm = np.linalg.norm(bow)
        if norm > 0:
            bow /= norm
        return bow

    def matrix(self, sentence: Sentence) -> np.ndarray:
        """Padded ``(max_len, dim)`` embedding matrix for ``sentence``."""
        cached = self.cache.get_matrix(sentence.sentence_id)
        if cached is not None:
            return cached
        matrix = self.embeddings.sentence_matrix(sentence.tokens, self.max_len)
        return self.cache.put_matrix(sentence.sentence_id, matrix)

    # ------------------------------------------------------------------ batch
    def vectors(self, sentences: Iterable[Sentence]) -> np.ndarray:
        """Stack :meth:`vector` outputs for ``sentences`` into ``(n, d)``."""
        rows = [self.vector(s) for s in sentences]
        if not rows:
            return np.zeros((0, self.vector_dim))
        return np.stack(rows)

    def matrices(self, sentences: Iterable[Sentence]) -> np.ndarray:
        """Stack :meth:`matrix` outputs into ``(n, max_len, dim)``."""
        mats = [self.matrix(s) for s in sentences]
        if not mats:
            return np.zeros((0, self.max_len, self.embeddings.dim))
        return np.stack(mats)

    def corpus_vectors(self, corpus: Corpus) -> np.ndarray:
        """Feature matrix for the entire corpus, in sentence-id order."""
        return self.vectors(corpus.sentences)

    def corpus_matrices(self, corpus: Corpus) -> np.ndarray:
        """Embedding tensors for the entire corpus, in sentence-id order."""
        return self.matrices(corpus.sentences)

    def invalidate(self, sentence_ids: Optional[Sequence[int]] = None) -> None:
        """Drop cached features (all of them when ``sentence_ids`` is None)."""
        self.cache.invalidate(sentence_ids)
