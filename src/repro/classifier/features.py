"""Sentence featurization for the benefit classifiers.

The paper stacks word-embedding vectors into a matrix and feeds it to a CNN.
Here the featurizer supports both views:

* :meth:`SentenceFeaturizer.vector` — the mean embedding plus a few cheap
  surface features (length, question mark, digit presence), used by the
  logistic / MLP models,
* :meth:`SentenceFeaturizer.matrix` — the padded ``(max_len, dim)`` embedding
  matrix used by the CNN.

Feature matrices for a whole corpus are cached because Darwin re-scores every
sentence after each retrain (the paper's main efficiency bottleneck).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..text.corpus import Corpus
from ..text.embeddings import EmbeddingModel, build_embeddings
from ..text.sentence import Sentence
from ..utils.rng import stable_hash

_SURFACE_FEATURES = 4


class SharedFeatureCache:
    """Sentence-id keyed feature cache shareable between featurizer handles.

    In a multi-tenant pool every tenant re-scores the same corpus after each
    retrain; the feature vectors are pure functions of the (immutable)
    sentences and the (shared, fitted) embeddings, so one tenant computing a
    vector means no other tenant ever should. The pool creates one cache and
    every tenant's featurizer reads/writes it. Hit/miss counters make the
    no-double-compute property testable, and a lock keeps get-then-put safe
    if engines ever featurize from worker threads (the asyncio serve loop is
    single-threaded, but the cache does not rely on that).
    """

    def __init__(self) -> None:
        self._vectors: Dict[int, np.ndarray] = {}
        self._matrices: Dict[int, np.ndarray] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._fingerprint: Optional[tuple] = None

    def bind(self, embeddings, max_len: int, bow_dim: int) -> None:
        """Pin the cache to one feature space; re-binding differently raises.

        Entries are keyed by sentence id alone, so a cache shared between
        featurizers over *different* embeddings (or different vector shapes)
        would silently hand one featurizer the other's vectors. Every
        featurizer binds its (embeddings, max_len, bow_dim) identity on
        attach; a mismatch is a wiring bug and fails loudly. The embeddings
        object is held by strong reference and compared by identity — an
        ``id()`` fingerprint could be silently defeated when CPython reuses
        a freed object's address.
        """
        with self._lock:
            if self._fingerprint is None:
                self._fingerprint = (embeddings, max_len, bow_dim)
                return
            bound_embeddings, bound_max_len, bound_bow_dim = self._fingerprint
            if (
                bound_embeddings is not embeddings
                or bound_max_len != max_len
                or bound_bow_dim != bow_dim
            ):
                raise ValueError(
                    "SharedFeatureCache is already bound to a different "
                    "featurizer configuration; share caches only between "
                    "featurizers over the same embeddings (use "
                    "SentenceFeaturizer.sharing_cache())"
                )

    # ------------------------------------------------------------------ access
    def get_vector(self, sentence_id: int) -> Optional[np.ndarray]:
        with self._lock:
            cached = self._vectors.get(sentence_id)
            if cached is None:
                self._misses += 1
            else:
                self._hits += 1
            return cached

    def put_vector(self, sentence_id: int, features: np.ndarray) -> np.ndarray:
        with self._lock:
            # First writer wins, so every handle sees one canonical array per
            # sentence even under racing computes. Frozen, because that one
            # array is shared by every tenant: an in-place mutation would
            # corrupt the feature pool-wide with no error.
            features.setflags(write=False)
            return self._vectors.setdefault(sentence_id, features)

    def get_matrix(self, sentence_id: int) -> Optional[np.ndarray]:
        with self._lock:
            cached = self._matrices.get(sentence_id)
            if cached is None:
                self._misses += 1
            else:
                self._hits += 1
            return cached

    def put_matrix(self, sentence_id: int, matrix: np.ndarray) -> np.ndarray:
        with self._lock:
            matrix.setflags(write=False)
            return self._matrices.setdefault(sentence_id, matrix)

    # -------------------------------------------------------------- accounting
    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that required a fresh feature computation."""
        return self._misses

    @property
    def nbytes(self) -> int:
        """Heap bytes held by the cached arrays (shared once per pool)."""
        with self._lock:
            return sum(a.nbytes for a in self._vectors.values()) + sum(
                a.nbytes for a in self._matrices.values()
            )

    def stats(self) -> Dict[str, float]:
        """Counters for benchmarks, the serve loop's memory report, and the
        pool's metrics collector: hits, misses, entries, nbytes (plus the
        per-kind breakdown; ``bytes`` is kept as an alias of ``nbytes`` for
        pre-observability callers)."""
        with self._lock:
            nbytes = float(
                sum(a.nbytes for a in self._vectors.values())
                + sum(a.nbytes for a in self._matrices.values())
            )
            return {
                "cached_vectors": float(len(self._vectors)),
                "cached_matrices": float(len(self._matrices)),
                "entries": float(len(self._vectors) + len(self._matrices)),
                "hits": float(self._hits),
                "misses": float(self._misses),
                "nbytes": nbytes,
                "bytes": nbytes,
            }

    def invalidate(self, sentence_ids: Optional[Sequence[int]] = None) -> None:
        """Drop cached features (all of them when ``sentence_ids`` is None)."""
        with self._lock:
            if sentence_ids is None:
                self._vectors.clear()
                self._matrices.clear()
                return
            for sentence_id in sentence_ids:
                self._vectors.pop(sentence_id, None)
                self._matrices.pop(sentence_id, None)


class SentenceFeaturizer:
    """Maps sentences to dense feature vectors / embedding matrices.

    The vector view concatenates three blocks:

    * the mean word embedding (semantic generalization across related words,
      the role SpaCy vectors play in the paper),
    * a hashed bag-of-words block (sharp lexical evidence — with only a
      handful of positives a linear model needs features it can latch onto),
    * a few cheap surface features (length, question mark, digits).

    Args:
        embeddings: A fitted :class:`EmbeddingModel`. Use
            :meth:`SentenceFeaturizer.fit` to train one from a corpus.
        max_len: Token cut-off for the CNN's embedding matrices.
        bow_dim: Width of the hashed bag-of-words block (0 disables it).
        cache: A :class:`SharedFeatureCache` to read/write. Pass one cache to
            several featurizers (or share one featurizer outright) so
            overlapping workloads — e.g. the tenants of a
            :class:`~repro.serving.TenantPool` — never compute the same
            sentence's features twice. Defaults to a private cache, which
            preserves the old per-featurizer behaviour.
    """

    def __init__(
        self,
        embeddings: EmbeddingModel,
        max_len: int = 30,
        bow_dim: int = 192,
        cache: Optional[SharedFeatureCache] = None,
    ) -> None:
        if max_len <= 0:
            raise ValueError("max_len must be positive")
        if bow_dim < 0:
            raise ValueError("bow_dim must be non-negative")
        self.embeddings = embeddings
        self.max_len = max_len
        self.bow_dim = bow_dim
        self.cache = cache if cache is not None else SharedFeatureCache()
        self.cache.bind(embeddings, max_len, bow_dim)

    @property
    def vector_dim(self) -> int:
        """Dimensionality of :meth:`vector` outputs."""
        return self.embeddings.dim + self.bow_dim + _SURFACE_FEATURES

    @classmethod
    def fit(
        cls,
        corpus: Corpus,
        embedding_dim: int = 50,
        max_len: int = 30,
        seed: int = 0,
        bow_dim: int = 192,
        cache: Optional[SharedFeatureCache] = None,
    ) -> "SentenceFeaturizer":
        """Train embeddings on ``corpus`` and return a featurizer over them."""
        embeddings = build_embeddings(
            (s.tokens for s in corpus), dim=embedding_dim, seed=seed
        )
        return cls(embeddings, max_len=max_len, bow_dim=bow_dim, cache=cache)

    def sharing_cache(self) -> "SentenceFeaturizer":
        """A new featurizer handle over the same embeddings *and* cache.

        Handles are what a per-tenant component should own: they share the
        fitted model and the feature cache (so nothing is recomputed across
        tenants) without sharing any mutable per-handle state.
        """
        return SentenceFeaturizer(
            self.embeddings,
            max_len=self.max_len,
            bow_dim=self.bow_dim,
            cache=self.cache,
        )

    # ------------------------------------------------------------ single-item
    def vector(self, sentence: Sentence) -> np.ndarray:
        """Mean-embedding + surface-feature vector for ``sentence``."""
        cached = self.cache.get_vector(sentence.sentence_id)
        if cached is not None:
            return cached
        embedding = self.embeddings.sentence_vector(sentence.tokens)
        surface = np.array(
            [
                min(len(sentence.tokens), 40) / 40.0,
                1.0 if "?" in sentence.tokens else 0.0,
                1.0 if any(t.isdigit() for t in sentence.tokens) else 0.0,
                len(set(sentence.tokens)) / (len(sentence.tokens) + 1.0),
            ]
        )
        features = np.concatenate([embedding, self._bow(sentence.tokens), surface])
        return self.cache.put_vector(sentence.sentence_id, features)

    def _bow(self, tokens) -> np.ndarray:
        """Hashed bag-of-words block (L2-normalised token-count buckets)."""
        if self.bow_dim == 0:
            return np.zeros(0)
        bow = np.zeros(self.bow_dim)
        for token in tokens:
            bow[stable_hash("bow", token) % self.bow_dim] += 1.0
        norm = np.linalg.norm(bow)
        if norm > 0:
            bow /= norm
        return bow

    def matrix(self, sentence: Sentence) -> np.ndarray:
        """Padded ``(max_len, dim)`` embedding matrix for ``sentence``."""
        cached = self.cache.get_matrix(sentence.sentence_id)
        if cached is not None:
            return cached
        matrix = self.embeddings.sentence_matrix(sentence.tokens, self.max_len)
        return self.cache.put_matrix(sentence.sentence_id, matrix)

    # ------------------------------------------------------------------ batch
    def vectors(self, sentences: Iterable[Sentence]) -> np.ndarray:
        """Stack :meth:`vector` outputs for ``sentences`` into ``(n, d)``."""
        rows = [self.vector(s) for s in sentences]
        if not rows:
            return np.zeros((0, self.vector_dim))
        return np.stack(rows)

    def matrices(self, sentences: Iterable[Sentence]) -> np.ndarray:
        """Stack :meth:`matrix` outputs into ``(n, max_len, dim)``."""
        mats = [self.matrix(s) for s in sentences]
        if not mats:
            return np.zeros((0, self.max_len, self.embeddings.dim))
        return np.stack(mats)

    def corpus_vectors(self, corpus: Corpus) -> np.ndarray:
        """Feature matrix for the entire corpus, in sentence-id order."""
        return self.vectors(corpus.sentences)

    def corpus_matrices(self, corpus: Corpus) -> np.ndarray:
        """Embedding tensors for the entire corpus, in sentence-id order."""
        return self.matrices(corpus.sentences)

    def invalidate(self, sentence_ids: Optional[Sequence[int]] = None) -> None:
        """Drop cached features (all of them when ``sentence_ids`` is None)."""
        self.cache.invalidate(sentence_ids)
