"""Sentence featurization for the benefit classifiers.

The paper stacks word-embedding vectors into a matrix and feeds it to a CNN.
Here the featurizer supports both views:

* :meth:`SentenceFeaturizer.vector` — the mean embedding plus a few cheap
  surface features (length, question mark, digit presence), used by the
  logistic / MLP models,
* :meth:`SentenceFeaturizer.matrix` — the padded ``(max_len, dim)`` embedding
  matrix used by the CNN.

Feature matrices for a whole corpus are cached because Darwin re-scores every
sentence after each retrain (the paper's main efficiency bottleneck).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..text.corpus import Corpus
from ..text.embeddings import EmbeddingModel, build_embeddings
from ..text.sentence import Sentence
from ..utils.rng import stable_hash

_SURFACE_FEATURES = 4


class SentenceFeaturizer:
    """Maps sentences to dense feature vectors / embedding matrices.

    The vector view concatenates three blocks:

    * the mean word embedding (semantic generalization across related words,
      the role SpaCy vectors play in the paper),
    * a hashed bag-of-words block (sharp lexical evidence — with only a
      handful of positives a linear model needs features it can latch onto),
    * a few cheap surface features (length, question mark, digits).

    Args:
        embeddings: A fitted :class:`EmbeddingModel`. Use
            :meth:`SentenceFeaturizer.fit` to train one from a corpus.
        max_len: Token cut-off for the CNN's embedding matrices.
        bow_dim: Width of the hashed bag-of-words block (0 disables it).
    """

    def __init__(
        self, embeddings: EmbeddingModel, max_len: int = 30, bow_dim: int = 192
    ) -> None:
        if max_len <= 0:
            raise ValueError("max_len must be positive")
        if bow_dim < 0:
            raise ValueError("bow_dim must be non-negative")
        self.embeddings = embeddings
        self.max_len = max_len
        self.bow_dim = bow_dim
        self._vector_cache: Dict[int, np.ndarray] = {}
        self._matrix_cache: Dict[int, np.ndarray] = {}

    @property
    def vector_dim(self) -> int:
        """Dimensionality of :meth:`vector` outputs."""
        return self.embeddings.dim + self.bow_dim + _SURFACE_FEATURES

    @classmethod
    def fit(
        cls,
        corpus: Corpus,
        embedding_dim: int = 50,
        max_len: int = 30,
        seed: int = 0,
        bow_dim: int = 192,
    ) -> "SentenceFeaturizer":
        """Train embeddings on ``corpus`` and return a featurizer over them."""
        embeddings = build_embeddings(
            (s.tokens for s in corpus), dim=embedding_dim, seed=seed
        )
        return cls(embeddings, max_len=max_len, bow_dim=bow_dim)

    # ------------------------------------------------------------ single-item
    def vector(self, sentence: Sentence) -> np.ndarray:
        """Mean-embedding + surface-feature vector for ``sentence``."""
        cached = self._vector_cache.get(sentence.sentence_id)
        if cached is not None:
            return cached
        embedding = self.embeddings.sentence_vector(sentence.tokens)
        surface = np.array(
            [
                min(len(sentence.tokens), 40) / 40.0,
                1.0 if "?" in sentence.tokens else 0.0,
                1.0 if any(t.isdigit() for t in sentence.tokens) else 0.0,
                len(set(sentence.tokens)) / (len(sentence.tokens) + 1.0),
            ]
        )
        features = np.concatenate([embedding, self._bow(sentence.tokens), surface])
        self._vector_cache[sentence.sentence_id] = features
        return features

    def _bow(self, tokens) -> np.ndarray:
        """Hashed bag-of-words block (L2-normalised token-count buckets)."""
        if self.bow_dim == 0:
            return np.zeros(0)
        bow = np.zeros(self.bow_dim)
        for token in tokens:
            bow[stable_hash("bow", token) % self.bow_dim] += 1.0
        norm = np.linalg.norm(bow)
        if norm > 0:
            bow /= norm
        return bow

    def matrix(self, sentence: Sentence) -> np.ndarray:
        """Padded ``(max_len, dim)`` embedding matrix for ``sentence``."""
        cached = self._matrix_cache.get(sentence.sentence_id)
        if cached is not None:
            return cached
        matrix = self.embeddings.sentence_matrix(sentence.tokens, self.max_len)
        self._matrix_cache[sentence.sentence_id] = matrix
        return matrix

    # ------------------------------------------------------------------ batch
    def vectors(self, sentences: Iterable[Sentence]) -> np.ndarray:
        """Stack :meth:`vector` outputs for ``sentences`` into ``(n, d)``."""
        rows = [self.vector(s) for s in sentences]
        if not rows:
            return np.zeros((0, self.vector_dim))
        return np.stack(rows)

    def matrices(self, sentences: Iterable[Sentence]) -> np.ndarray:
        """Stack :meth:`matrix` outputs into ``(n, max_len, dim)``."""
        mats = [self.matrix(s) for s in sentences]
        if not mats:
            return np.zeros((0, self.max_len, self.embeddings.dim))
        return np.stack(mats)

    def corpus_vectors(self, corpus: Corpus) -> np.ndarray:
        """Feature matrix for the entire corpus, in sentence-id order."""
        return self.vectors(corpus.sentences)

    def corpus_matrices(self, corpus: Corpus) -> np.ndarray:
        """Embedding tensors for the entire corpus, in sentence-id order."""
        return self.matrices(corpus.sentences)

    def invalidate(self, sentence_ids: Optional[Sequence[int]] = None) -> None:
        """Drop cached features (all of them when ``sentence_ids`` is None)."""
        if sentence_ids is None:
            self._vector_cache.clear()
            self._matrix_cache.clear()
            return
        for sentence_id in sentence_ids:
            self._vector_cache.pop(sentence_id, None)
            self._matrix_cache.pop(sentence_id, None)
