"""Classifier interface and training-set container."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ClassifierError


@dataclass(frozen=True)
class TrainingSet:
    """A featurized binary training set.

    Attributes:
        features: ``(n, d)`` feature matrix (or ``(n, max_len, d)`` token
            matrices for the CNN).
        labels: ``(n,)`` array of 0/1 labels.
    """

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.labels.shape[0]:
            raise ClassifierError("features and labels must have matching rows")
        if self.labels.ndim != 1:
            raise ClassifierError("labels must be one-dimensional")

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_positive(self) -> int:
        """Number of positive (label 1) examples."""
        return int(self.labels.sum())

    @property
    def num_negative(self) -> int:
        """Number of negative (label 0) examples."""
        return len(self) - self.num_positive


class TextClassifier(ABC):
    """Binary probabilistic classifier over featurized sentences."""

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed at least once."""
        return self._fitted

    @abstractmethod
    def fit(self, training_set: TrainingSet) -> "TextClassifier":
        """Train on ``training_set`` and return ``self``."""

    @abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return p(positive) for each row of ``features``."""

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at ``threshold``."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise ClassifierError(f"{type(self).__name__} used before fit()")

    # -------------------------------------------------------- state protocol
    def state_arrays(self) -> "dict[str, np.ndarray]":
        """The classifier's learned weights as named numpy arrays.

        Used by the engine's checkpoint protocol: the arrays land in the
        checkpoint bundle and :meth:`load_state_arrays` restores them into a
        freshly-constructed classifier of the same model, making the restored
        instance answer :meth:`predict_proba` identically without a retrain.
        Subclasses must override both methods together.
        """
        raise ClassifierError(
            f"{type(self).__name__} does not implement the weight-state protocol"
        )

    def load_state_arrays(self, arrays: "dict[str, np.ndarray]") -> None:
        """Restore weights captured by :meth:`state_arrays`; marks fitted."""
        raise ClassifierError(
            f"{type(self).__name__} does not implement the weight-state protocol"
        )


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic sigmoid."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def batches(
    n: int, batch_size: int, rng: np.random.Generator
) -> Sequence[np.ndarray]:
    """Yield shuffled index batches covering ``range(n)``."""
    order = rng.permutation(n)
    return [order[start:start + batch_size] for start in range(0, n, batch_size)]
