"""A generative label model with per-rule accuracies estimated by EM.

This plays the role Snorkel plays in the paper's Table 2 experiment: given the
(noisy, overlapping) votes of the discovered rules, estimate each rule's
accuracy and produce de-noised probabilistic labels.

Model. Let ``y_i`` be the latent binary label of sentence ``i`` with prior
``pi``, and let rule ``j`` have accuracy ``alpha_j`` (probability of voting
the true label when it does not abstain). Votes are conditionally independent
given ``y_i`` (the same naive-Bayes assumption Snorkel's default model makes).
EM alternates between the posterior ``p(y_i | votes)`` and the maximization of
``alpha_j`` and ``pi``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import EvaluationError
from .label_matrix import ABSTAIN, LabelMatrix, NEGATIVE, POSITIVE


class GenerativeLabelModel:
    """EM-trained naive-Bayes label model over labeling-function votes.

    Args:
        max_iterations: EM iteration cap.
        tolerance: Stop when posteriors move less than this (L-inf norm).
        accuracy_prior: Pseudo-count strength pulling accuracies toward
            ``accuracy_prior_value`` (regularizes rules with tiny coverage).
        accuracy_prior_value: Prior belief about rule accuracy (rules accepted
            by Darwin's oracle are precise by construction, hence 0.75).
    """

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        accuracy_prior: float = 2.0,
        accuracy_prior_value: float = 0.75,
        class_prior: Optional[float] = None,
    ) -> None:
        if max_iterations <= 0:
            raise EvaluationError("max_iterations must be positive")
        if not 0.0 < accuracy_prior_value < 1.0:
            raise EvaluationError("accuracy_prior_value must be in (0, 1)")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.accuracy_prior = accuracy_prior
        self.accuracy_prior_value = accuracy_prior_value
        self.class_prior = class_prior
        self.accuracies_: Optional[np.ndarray] = None
        self.prior_: Optional[float] = None
        self.posteriors_: Optional[np.ndarray] = None

    # ---------------------------------------------------------------- fitting
    def fit(self, matrix: LabelMatrix) -> "GenerativeLabelModel":
        """Estimate rule accuracies and label posteriors from ``matrix``."""
        votes = matrix.votes
        n, m = votes.shape
        if n == 0 or m == 0:
            raise EvaluationError("cannot fit a label model on an empty matrix")

        voted = votes != ABSTAIN
        positive_votes = votes == POSITIVE
        negative_votes = votes == NEGATIVE

        accuracies = np.full(m, self.accuracy_prior_value)
        prior = self.class_prior if self.class_prior is not None else 0.5
        posteriors = np.full(n, prior)

        for _ in range(self.max_iterations):
            # E-step: posterior p(y=1 | votes) under current parameters.
            log_pos = np.log(max(prior, 1e-9)) * np.ones(n)
            log_neg = np.log(max(1.0 - prior, 1e-9)) * np.ones(n)
            acc = np.clip(accuracies, 1e-4, 1.0 - 1e-4)
            log_acc = np.log(acc)
            log_inacc = np.log(1.0 - acc)
            # A positive vote is correct if y=1, incorrect if y=0 (and vice versa).
            log_pos += positive_votes @ log_acc + negative_votes @ log_inacc
            log_neg += positive_votes @ log_inacc + negative_votes @ log_acc
            shift = np.maximum(log_pos, log_neg)
            pos_unnorm = np.exp(log_pos - shift)
            neg_unnorm = np.exp(log_neg - shift)
            new_posteriors = pos_unnorm / (pos_unnorm + neg_unnorm)

            # M-step: accuracy of each rule = expected fraction of its
            # non-abstain votes that agree with the latent label.
            new_accuracies = np.empty(m)
            for j in range(m):
                rows = voted[:, j]
                if not rows.any():
                    new_accuracies[j] = self.accuracy_prior_value
                    continue
                agree = np.where(
                    positive_votes[rows, j], new_posteriors[rows], 1.0 - new_posteriors[rows]
                )
                numerator = agree.sum() + self.accuracy_prior * self.accuracy_prior_value
                denominator = rows.sum() + self.accuracy_prior
                new_accuracies[j] = numerator / denominator
            if self.class_prior is None:
                prior = float(new_posteriors.mean())

            delta = float(np.max(np.abs(new_posteriors - posteriors)))
            posteriors = new_posteriors
            accuracies = new_accuracies
            if delta < self.tolerance:
                break

        self.accuracies_ = accuracies
        self.prior_ = prior
        self.posteriors_ = posteriors
        return self

    # -------------------------------------------------------------- inference
    def predict_proba(self, matrix: Optional[LabelMatrix] = None) -> np.ndarray:
        """Posterior p(positive) per sentence (for the fitted matrix by default)."""
        if self.posteriors_ is None:
            raise EvaluationError("label model used before fit()")
        if matrix is None:
            return self.posteriors_.copy()
        fitted = GenerativeLabelModel(
            max_iterations=1,
            accuracy_prior=self.accuracy_prior,
            accuracy_prior_value=self.accuracy_prior_value,
            class_prior=self.prior_,
        )
        fitted.accuracies_ = self.accuracies_
        fitted.prior_ = self.prior_
        votes = matrix.votes
        positive_votes = votes == POSITIVE
        negative_votes = votes == NEGATIVE
        acc = np.clip(self.accuracies_, 1e-4, 1.0 - 1e-4)
        log_acc, log_inacc = np.log(acc), np.log(1.0 - acc)
        log_pos = np.log(max(self.prior_, 1e-9)) + positive_votes @ log_acc + negative_votes @ log_inacc
        log_neg = np.log(max(1.0 - self.prior_, 1e-9)) + positive_votes @ log_inacc + negative_votes @ log_acc
        shift = np.maximum(log_pos, log_neg)
        pos_unnorm = np.exp(log_pos - shift)
        neg_unnorm = np.exp(log_neg - shift)
        return pos_unnorm / (pos_unnorm + neg_unnorm)

    def predict(self, matrix: Optional[LabelMatrix] = None, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at ``threshold``."""
        return (self.predict_proba(matrix) >= threshold).astype(np.int64)

    def rule_accuracies(self) -> np.ndarray:
        """The estimated per-rule accuracies."""
        if self.accuracies_ is None:
            raise EvaluationError("label model used before fit()")
        return self.accuracies_.copy()
