"""Weak-supervision label aggregation (the Snorkel-style substrate).

Darwin's discovered rules are labeling functions; this subpackage turns their
(noisy, overlapping) votes into training labels:

* :class:`LabelMatrix` — the rules-by-sentences vote matrix,
* :func:`majority_vote` — the simple baseline aggregation,
* :class:`GenerativeLabelModel` — per-rule accuracies estimated by EM, the
  de-noising role Snorkel plays in the paper's Table 2 experiment,
* :class:`WeakSupervisionPipeline` — rules -> label model -> end classifier.
"""

from .label_matrix import ABSTAIN, NEGATIVE, POSITIVE, LabelMatrix
from .majority_vote import majority_vote
from .label_model import GenerativeLabelModel
from .pipeline import WeakSupervisionPipeline

__all__ = [
    "ABSTAIN",
    "NEGATIVE",
    "POSITIVE",
    "LabelMatrix",
    "majority_vote",
    "GenerativeLabelModel",
    "WeakSupervisionPipeline",
]
