"""Darwin -> label model -> end classifier pipeline (Table 2).

The paper compares a classifier trained directly on Darwin's labels against
one trained on Snorkel-de-noised labels. :class:`WeakSupervisionPipeline`
implements both paths over the same end classifier so the comparison isolates
the effect of de-noising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from ..classifier.features import SentenceFeaturizer
from ..classifier.trainer import make_classifier
from ..config import ClassifierConfig
from ..evaluation.metrics import binary_f1
from ..rules.rule_set import RuleSet
from ..text.corpus import Corpus
from .label_matrix import LabelMatrix
from .label_model import GenerativeLabelModel
from .majority_vote import majority_vote


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of training an end classifier on weak labels.

    Attributes:
        f1: F1 of the end classifier against ground truth.
        label_f1: F1 of the weak labels themselves (before the classifier).
        used_label_model: Whether de-noising was applied.
    """

    f1: float
    label_f1: float
    used_label_model: bool


class WeakSupervisionPipeline:
    """Trains an end classifier from a Darwin rule set, with or without de-noising."""

    def __init__(
        self,
        corpus: Corpus,
        featurizer: Optional[SentenceFeaturizer] = None,
        classifier_config: Optional[ClassifierConfig] = None,
        label_threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.corpus = corpus
        self.featurizer = featurizer or SentenceFeaturizer.fit(corpus, seed=seed)
        self.classifier_config = classifier_config or ClassifierConfig(epochs=15)
        self.label_threshold = label_threshold
        self.seed = seed

    # ----------------------------------------------------------------- labels
    def weak_labels(self, rule_set: RuleSet, use_label_model: bool) -> np.ndarray:
        """Probabilistic positive labels implied by ``rule_set``.

        Sentences on which every rule abstains carry no weak-supervision signal
        and get probability 0 (the standard "filter unlabeled points" step
        before training on label-model output).
        """
        matrix = LabelMatrix.from_rule_set(rule_set, self.corpus)
        if use_label_model and len(rule_set) > 0:
            model = GenerativeLabelModel()
            model.fit(matrix)
            probabilities = model.predict_proba()
            return np.where(matrix.coverage_mask(), probabilities, 0.0)
        return majority_vote(matrix, default=0.0)

    # ------------------------------------------------------------------ train
    def train_end_classifier(
        self,
        rule_set: RuleSet,
        use_label_model: bool = False,
        evaluation_positive_ids: Optional[Set[int]] = None,
    ) -> PipelineResult:
        """Train the end classifier on weak labels and evaluate it.

        Sentences whose weak-label probability exceeds ``label_threshold``
        become positive training examples; an equal-sized random sample of the
        remaining sentences becomes the negatives (mirroring how the paper
        trains its final classifier on weak labels).
        """
        probabilities = self.weak_labels(rule_set, use_label_model)
        positives = [i for i, p in enumerate(probabilities) if p >= self.label_threshold]
        negatives = [i for i, p in enumerate(probabilities) if p < self.label_threshold]

        truth = evaluation_positive_ids
        if truth is None and self.corpus.has_labels():
            truth = self.corpus.positive_ids()
        truth = truth or set()

        label_f1 = binary_f1(predicted=set(positives), actual=set(truth))

        if not positives or not negatives:
            return PipelineResult(f1=label_f1, label_f1=label_f1, used_label_model=use_label_model)

        rng = np.random.default_rng(self.seed)
        sample_size = min(len(negatives), max(len(positives) * 3, 10))
        sampled_negatives = list(
            rng.choice(np.array(negatives), size=sample_size, replace=False)
        )

        training_ids = positives + sampled_negatives
        labels = np.array([1.0] * len(positives) + [0.0] * len(sampled_negatives))
        sentences = [self.corpus[i] for i in training_ids]
        if self.classifier_config.model == "cnn":
            features = self.featurizer.matrices(sentences)
            all_features = self.featurizer.corpus_matrices(self.corpus)
        else:
            features = self.featurizer.vectors(sentences)
            all_features = self.featurizer.corpus_vectors(self.corpus)

        from ..classifier.base import TrainingSet

        classifier = make_classifier(self.classifier_config)
        classifier.fit(TrainingSet(features=features, labels=labels))
        predictions = classifier.predict_proba(all_features) >= 0.5
        predicted_ids = {i for i, flag in enumerate(predictions) if flag}
        f1 = binary_f1(predicted=predicted_ids, actual=set(truth))
        return PipelineResult(f1=f1, label_f1=label_f1, used_label_model=use_label_model)
