"""The labeling-function vote matrix.

Each accepted rule votes POSITIVE on the sentences it covers and ABSTAINs
elsewhere. Negative-voting labeling functions (supported by Snorkel, not
produced by Darwin) are represented with NEGATIVE so the label model is
general.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..rules.rule_set import RuleSet
from ..text.corpus import Corpus

POSITIVE = 1
NEGATIVE = 0
ABSTAIN = -1


class LabelMatrix:
    """An ``(num_sentences, num_rules)`` matrix of votes in {-1, 0, 1}.

    Attributes:
        votes: The vote matrix (ABSTAIN = -1).
        rule_names: Human-readable rule identifiers, one per column.
    """

    def __init__(self, votes: np.ndarray, rule_names: Optional[Sequence[str]] = None) -> None:
        votes = np.asarray(votes, dtype=np.int64)
        if votes.ndim != 2:
            raise ValueError("votes must be a 2-D matrix")
        valid = np.isin(votes, (POSITIVE, NEGATIVE, ABSTAIN))
        if not bool(valid.all()):
            raise ValueError("votes must be in {-1, 0, 1}")
        self.votes = votes
        if rule_names is None:
            rule_names = [f"rule_{j}" for j in range(votes.shape[1])]
        if len(rule_names) != votes.shape[1]:
            raise ValueError("rule_names must match the number of columns")
        self.rule_names = list(rule_names)

    # ---------------------------------------------------------------- factory
    @classmethod
    def from_rule_set(cls, rule_set: RuleSet, corpus: Corpus) -> "LabelMatrix":
        """Build the vote matrix implied by a Darwin rule set over ``corpus``."""
        num_sentences = len(corpus)
        rules = rule_set.rules
        votes = np.full((num_sentences, max(len(rules), 1)), ABSTAIN, dtype=np.int64)
        names: List[str] = []
        for column, rule in enumerate(rules):
            names.append(rule.render())
            for sentence_id in rule.coverage:
                if 0 <= sentence_id < num_sentences:
                    votes[sentence_id, column] = POSITIVE
        if not rules:
            names = ["empty"]
        return cls(votes, rule_names=names)

    @classmethod
    def from_coverages(
        cls,
        coverages: Iterable[Iterable[int]],
        num_sentences: int,
        polarity: int = POSITIVE,
        rule_names: Optional[Sequence[str]] = None,
    ) -> "LabelMatrix":
        """Build a matrix from raw coverage sets (used by the Snuba baseline)."""
        coverage_list = [set(c) for c in coverages]
        votes = np.full((num_sentences, max(len(coverage_list), 1)), ABSTAIN, dtype=np.int64)
        for column, coverage in enumerate(coverage_list):
            for sentence_id in coverage:
                if 0 <= sentence_id < num_sentences:
                    votes[sentence_id, column] = polarity
        return cls(votes, rule_names=rule_names)

    # -------------------------------------------------------------- accessors
    @property
    def num_sentences(self) -> int:
        """Number of rows (sentences)."""
        return int(self.votes.shape[0])

    @property
    def num_rules(self) -> int:
        """Number of columns (labeling functions)."""
        return int(self.votes.shape[1])

    def coverage_mask(self) -> np.ndarray:
        """Boolean row mask: sentences on which at least one rule votes."""
        return (self.votes != ABSTAIN).any(axis=1)

    def overlap_mask(self) -> np.ndarray:
        """Boolean row mask: sentences on which two or more rules vote."""
        return (self.votes != ABSTAIN).sum(axis=1) >= 2

    def conflict_mask(self) -> np.ndarray:
        """Boolean row mask: sentences where voting rules disagree."""
        conflicts = np.zeros(self.num_sentences, dtype=bool)
        for row in range(self.num_sentences):
            row_votes = self.votes[row][self.votes[row] != ABSTAIN]
            if row_votes.size >= 2 and len(set(row_votes.tolist())) > 1:
                conflicts[row] = True
        return conflicts

    def summary(self) -> dict:
        """Coverage / overlap / conflict statistics (Snorkel-style report)."""
        coverage = self.coverage_mask()
        return {
            "num_rules": self.num_rules,
            "num_sentences": self.num_sentences,
            "coverage": float(coverage.mean()) if self.num_sentences else 0.0,
            "overlap": float(self.overlap_mask().mean()) if self.num_sentences else 0.0,
            "conflict": float(self.conflict_mask().mean()) if self.num_sentences else 0.0,
        }
