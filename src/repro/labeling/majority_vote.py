"""Majority-vote label aggregation (the baseline the label model improves on)."""

from __future__ import annotations

import numpy as np

from .label_matrix import ABSTAIN, LabelMatrix, NEGATIVE, POSITIVE


def majority_vote(matrix: LabelMatrix, default: float = 0.5) -> np.ndarray:
    """Per-sentence probabilistic labels by unweighted majority vote.

    Args:
        matrix: The labeling-function vote matrix.
        default: Probability assigned to sentences on which every rule
            abstains.

    Returns:
        Array of length ``num_sentences`` with p(positive) estimates: the
        fraction of non-abstaining votes that are POSITIVE, or ``default``
        where all rules abstain.
    """
    votes = matrix.votes
    positive_counts = (votes == POSITIVE).sum(axis=1).astype(np.float64)
    negative_counts = (votes == NEGATIVE).sum(axis=1).astype(np.float64)
    total = positive_counts + negative_counts
    probabilities = np.full(matrix.num_sentences, float(default))
    voted = total > 0
    probabilities[voted] = positive_counts[voted] / total[voted]
    return probabilities
