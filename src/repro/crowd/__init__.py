"""Crowd session service: concurrent multi-annotator rule verification.

The subsystem multiplexes K annotator sessions over one shared
:class:`~repro.core.darwin.Darwin` state (the paper's Section 4.3 crowd
setting): :class:`CrowdCoordinator` dispatches distinct in-flight questions
with redundancy-r assignment and majority-vote commit, and :func:`run_crowd`
drives it with asyncio workers that simulate per-annotator latency and noise.
Expensive classifier retrains and hierarchy refreshes are batched across
``batch_size`` committed answers.
"""

from ..config import CrowdConfig
from .coordinator import Assignment, CrowdCoordinator, CrowdResult
from .runner import CrowdRunResult, drive_crowd, run_crowd, simulated_annotators

__all__ = [
    "Assignment",
    "CrowdConfig",
    "CrowdCoordinator",
    "CrowdResult",
    "CrowdRunResult",
    "drive_crowd",
    "run_crowd",
    "simulated_annotators",
]
