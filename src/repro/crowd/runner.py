"""Asyncio driver for crowd sessions with simulated annotator latency/noise.

:func:`run_crowd` spins up one worker coroutine per annotator. Each worker
polls the coordinator for an assignment, sleeps for its simulated think time,
answers with its oracle, and submits the vote. Because annotator latency
dominates a real crowd deployment, overlapping K think times (plus amortizing
retrains across a batch) is where the throughput scaling comes from — the
coordinator's own bookkeeping stays single-threaded on the event loop.

``benchmarks/bench_crowd.py`` measures answers/sec and questions-to-recall of
this runner against the serial ``Darwin.run`` loop.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..config import CrowdConfig
from ..core.darwin import Darwin, DarwinResult
from ..core.oracle import GroundTruthOracle, NoisyOracle, Oracle
from ..errors import ConfigurationError
from ..rules.heuristic import LabelingHeuristic
from ..text.corpus import Corpus
from ..utils.rng import derive_rng
from .coordinator import CrowdCoordinator, CrowdResult


@dataclass
class CrowdRunResult:
    """A :class:`CrowdResult` plus wall-clock throughput measurements.

    Attributes:
        crowd: Coordinator statistics and the underlying Darwin result.
        wall_seconds: Wall-clock time of the answering loop.
        answers_per_sec: Committed answers per wall-clock second.
        votes_per_sec: Individual votes per wall-clock second.
    """

    crowd: CrowdResult
    wall_seconds: float
    answers_per_sec: float
    votes_per_sec: float

    @property
    def darwin_result(self) -> DarwinResult:
        """The underlying run result (rules, history, timings)."""
        return self.crowd.darwin_result


def simulated_annotators(
    corpus: Corpus, config: CrowdConfig
) -> List[Oracle]:
    """Ground-truth annotators, independently noisy when ``label_noise`` > 0.

    Each annotator gets its own seeded RNG (derived from ``config.seed`` and
    its position), so a crowd run is reproducible end to end.
    """
    base = GroundTruthOracle(corpus)
    if not config.label_noise:
        return [base for _ in range(config.num_annotators)]
    return [
        NoisyOracle(
            base,
            flip_prob=config.label_noise,
            seed=config.seed * 1000 + annotator_id,
        )
        for annotator_id in range(config.num_annotators)
    ]


async def _annotator_worker(
    coordinator: CrowdCoordinator,
    annotator_id: int,
    oracle: Oracle,
    config: CrowdConfig,
) -> None:
    rng = derive_rng(config.seed, "crowd-latency", str(annotator_id))
    # Idle polling period while no assignment is available: short enough to
    # pick freed capacity up quickly, long enough not to busy-spin the loop.
    idle = max(config.annotator_latency / 4.0, 1e-4)
    while not coordinator.is_done:
        assignment = coordinator.request_question(annotator_id)
        if assignment is None:
            await asyncio.sleep(idle)
            continue
        if config.annotator_latency > 0:
            jitter = 1.0 + config.latency_jitter * (2.0 * rng.random() - 1.0)
            await asyncio.sleep(config.annotator_latency * jitter)
        else:
            # Yield so workers interleave even in the zero-latency simulation.
            await asyncio.sleep(0)
        answer = oracle.ask(assignment.rule, assignment.sample_ids)
        coordinator.submit_answer(assignment, answer.is_useful)


async def drive_crowd(
    coordinator: CrowdCoordinator,
    annotators: Sequence[Oracle],
    config: CrowdConfig,
) -> None:
    """Drive one coordinator's annotator workers to completion.

    Exposed as a coroutine (rather than only through :func:`run_crowd`'s
    ``asyncio.run``) so a caller multiplexing several independent crowds on
    one event loop — the :mod:`repro.serving` tenant loop, one coordinator
    per tenant — can ``gather`` them.
    """
    workers = [
        _annotator_worker(coordinator, annotator_id, oracle, config)
        for annotator_id, oracle in enumerate(annotators)
    ]
    await asyncio.gather(*workers)


def run_crowd(
    darwin: Darwin,
    config: Optional[CrowdConfig] = None,
    annotators: Optional[Sequence[Oracle]] = None,
    seed_rules: Optional[Sequence[LabelingHeuristic]] = None,
    seed_rule_texts: Optional[Sequence[str]] = None,
    seed_positive_ids: Optional[Sequence[int]] = None,
    evaluation_positive_ids: Optional[Set[int]] = None,
) -> CrowdRunResult:
    """Run a full crowd session against simulated (or supplied) annotators.

    Args:
        darwin: The shared Darwin instance. Started here from the seed
            arguments unless the caller already called ``start()``.
        config: Crowd parameters; defaults to :class:`CrowdConfig`.
        annotators: One oracle per annotator (length must match
            ``config.num_annotators``); defaults to ground-truth annotators
            with ``config.label_noise`` flip noise.
        seed_rules / seed_rule_texts / seed_positive_ids: Seeds, as for
            :meth:`Darwin.start` (ignored when the Darwin is already started).
        evaluation_positive_ids: Ground-truth positives for history records.

    Returns:
        A :class:`CrowdRunResult` with the rule set, history and throughput.
    """
    config = config or CrowdConfig()
    if not getattr(darwin, "_started", False):
        darwin.start(
            seed_rules=seed_rules,
            seed_rule_texts=seed_rule_texts,
            seed_positive_ids=seed_positive_ids,
        )
    if annotators is None:
        annotators = simulated_annotators(darwin.corpus, config)
    if len(annotators) != config.num_annotators:
        raise ConfigurationError(
            f"got {len(annotators)} annotators for "
            f"config.num_annotators={config.num_annotators}"
        )
    coordinator = CrowdCoordinator(
        darwin, config, evaluation_positive_ids=evaluation_positive_ids
    )
    start = time.perf_counter()
    asyncio.run(drive_crowd(coordinator, annotators, config))
    wall_seconds = time.perf_counter() - start
    crowd = coordinator.result()
    denominator = max(wall_seconds, 1e-9)
    return CrowdRunResult(
        crowd=crowd,
        wall_seconds=wall_seconds,
        answers_per_sec=crowd.questions_committed / denominator,
        votes_per_sec=crowd.votes_collected / denominator,
    )


__all__ = [
    "CrowdRunResult",
    "drive_crowd",
    "run_crowd",
    "simulated_annotators",
]
