"""Crowd session coordination: K concurrent annotators over one Darwin state.

The paper's crowd setting (Section 4.3) verifies each candidate rule with
several noisy annotators and aggregates their YES/NO votes by majority.
:class:`CrowdCoordinator` turns Darwin's propose-many / apply-batch API into a
question service for that workload:

* **redundant dispatch** — every open question (a *ticket*) is assigned to
  ``redundancy`` distinct annotators; an annotator is never handed the same
  ticket twice,
* **no duplicate proposals** — a rule dispatched to any annotator is marked
  in-flight in Darwin, so the traversal can never re-propose it to another
  session,
* **majority commit** — once the required votes arrive, the strict majority
  (ties count as NO) is applied to the rule set immediately,
* **batched apply/retrain** — accepted coverage grows ``P`` right away, but
  the classifier retrain and hierarchy refresh are deferred until
  ``batch_size`` answers accumulate (or :meth:`CrowdCoordinator.flush`).

The coordinator is a synchronous state machine and is *not* thread-safe: the
asyncio runner (:mod:`repro.crowd.runner`) drives it from a single event loop,
which is all the concurrency the simulated annotators need — their latency
overlaps while the coordinator's bookkeeping stays serial.

With ``batch_size=1`` at most one question is in flight, answers are flushed
as they commit, and the coordinator reproduces the serial ``Darwin.run`` loop
exactly (same proposals, same history) — batching trades that strict
sequential consistency for throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..config import CrowdConfig
from ..core.darwin import Darwin, DarwinResult, QueryRecord
from ..errors import ConfigurationError, OracleError
from ..obs import get_registry
from ..rules.heuristic import LabelingHeuristic


@dataclass(frozen=True)
class Assignment:
    """One (question, annotator) pairing handed out by the dispatcher.

    Attributes:
        ticket_id: Identifier of the open question this vote belongs to.
        annotator_id: The annotator the question was assigned to.
        rule: The candidate rule being verified.
        rendered: The rule as a human-readable string.
        sample_ids: Sentence ids shown as examples (Darwin's oracle sample).
        example_texts: Texts of the sample sentences (what Figure 2 shows).
    """

    ticket_id: int
    annotator_id: int
    rule: LabelingHeuristic
    rendered: str
    sample_ids: Tuple[int, ...]
    example_texts: Tuple[str, ...]


@dataclass
class _Ticket:
    """An open question: the rule, its sample, and the votes collected so far."""

    ticket_id: int
    rule: LabelingHeuristic
    sample_ids: Tuple[int, ...]
    assigned: Set[int] = field(default_factory=set)
    votes: Dict[int, bool] = field(default_factory=dict)


@dataclass
class CrowdResult:
    """Outcome of a crowd session.

    Attributes:
        darwin_result: The underlying run result (rules, history, timings).
        questions_committed: Questions answered and applied to the rule set.
        questions_dispatched: Tickets opened (committed + still open).
        votes_collected: Individual annotator votes received.
        votes_per_annotator: Vote counts keyed by annotator id.
    """

    darwin_result: DarwinResult
    questions_committed: int
    questions_dispatched: int
    votes_collected: int
    votes_per_annotator: Dict[int, int]


class CrowdCoordinator:
    """Multiplexes K annotator sessions over one shared :class:`Darwin`.

    Args:
        darwin: A *started* Darwin instance (call ``darwin.start(...)`` first;
            the coordinator never seeds it so several frontends can share one).
        config: Crowd parameters (:class:`~repro.config.CrowdConfig`).
        evaluation_positive_ids: Ground-truth positives for history records
            (defaults to the corpus labels when present).
        obs_tenant: Label for this coordinator's metric series (the serve
            loop passes the tenant id; defaults to the Darwin's obs label).
    """

    def __init__(
        self,
        darwin: Darwin,
        config: Optional[CrowdConfig] = None,
        evaluation_positive_ids: Optional[Set[int]] = None,
        obs_tenant: Optional[str] = None,
    ) -> None:
        self.darwin = darwin
        self.config = config or CrowdConfig()
        if not getattr(darwin, "_started", False):
            raise ConfigurationError(
                "CrowdCoordinator requires a started Darwin; call start() "
                "with seeds first"
            )
        self.budget = (
            self.config.budget
            if self.config.budget is not None
            else darwin.config.budget
        )
        self._evaluation_positive_ids = evaluation_positive_ids
        self._tickets: Dict[int, _Ticket] = {}
        self._next_ticket_id = 0
        self._committed = 0
        self._applied_since_flush = 0
        self._votes_collected = 0
        self._votes_per_annotator: Dict[int, int] = {
            annotator_id: 0 for annotator_id in range(self.config.num_annotators)
        }
        self._exhausted = False
        # Telemetry (repro.obs): children resolved once, no-ops by default.
        registry = get_registry()
        tenant = obs_tenant if obs_tenant is not None else getattr(
            darwin, "obs_label", darwin.corpus.name
        )
        commits = registry.counter(
            "crowd_commits_total",
            "Majority-committed tickets by outcome",
            labels=("tenant", "outcome"),
        )
        self._obs_commit_accept = commits.labels(tenant=tenant, outcome="accept")
        self._obs_commit_reject = commits.labels(tenant=tenant, outcome="reject")
        self._obs_ties = registry.counter(
            "crowd_ties_total",
            "Tied votes committed as NO (even redundancy only)",
            labels=("tenant",),
        ).labels(tenant=tenant)
        self._obs_votes = registry.counter(
            "crowd_votes_total", "Individual annotator votes", labels=("tenant",)
        ).labels(tenant=tenant)
        self._obs_open = registry.gauge(
            "crowd_open_tickets",
            "Questions currently in flight (dispatch depth)",
            labels=("tenant",),
        ).labels(tenant=tenant)
        self._obs_flush_seconds = registry.histogram(
            "crowd_flush_seconds",
            "Latency of batched retrain/refresh flushes",
            labels=("tenant",),
        ).labels(tenant=tenant)

    # -------------------------------------------------------------- inspection
    @property
    def questions_committed(self) -> int:
        """Questions whose majority answer has been applied."""
        return self._committed

    @property
    def questions_dispatched(self) -> int:
        """Tickets opened so far (committed plus still in flight)."""
        return self._next_ticket_id

    @property
    def open_tickets(self) -> int:
        """Questions currently in flight (dispatched, not yet committed)."""
        return len(self._tickets)

    @property
    def votes_collected(self) -> int:
        """Total individual votes received across all annotators."""
        return self._votes_collected

    @property
    def votes_per_annotator(self) -> Dict[int, int]:
        """Vote counts keyed by annotator id (a copy)."""
        return dict(self._votes_per_annotator)

    @property
    def is_done(self) -> bool:
        """True once no further question can be dispatched or committed."""
        if self._tickets:
            return False
        return self._committed >= self.budget or self._exhausted

    # ---------------------------------------------------------------- dispatch
    def _check_annotator(self, annotator_id: int) -> None:
        if not 0 <= annotator_id < self.config.num_annotators:
            raise ConfigurationError(
                f"annotator_id {annotator_id} out of range for "
                f"{self.config.num_annotators} annotators"
            )

    def _assignment(self, ticket: _Ticket, annotator_id: int) -> Assignment:
        ticket.assigned.add(annotator_id)
        examples = tuple(
            self.darwin.corpus[sid].text for sid in ticket.sample_ids
        )
        return Assignment(
            ticket_id=ticket.ticket_id,
            annotator_id=annotator_id,
            rule=ticket.rule,
            rendered=ticket.rule.render(),
            sample_ids=ticket.sample_ids,
            example_texts=examples,
        )

    def request_question(self, annotator_id: int) -> Optional[Assignment]:
        """A question for ``annotator_id`` to vote on, or None if none is free.

        Open tickets still short of their ``redundancy`` assignments are
        served first (oldest ticket first); only then is a fresh question
        proposed, bounded by the in-flight limit and the remaining budget.
        A ``None`` return is not terminal — votes by other annotators may free
        capacity — so callers should poll until :attr:`is_done`.
        """
        self._check_annotator(annotator_id)
        # Oldest open ticket this annotator can still vote on.
        for ticket in self._tickets.values():
            if (
                annotator_id not in ticket.assigned
                and len(ticket.assigned) < self.config.redundancy
            ):
                return self._assignment(ticket, annotator_id)
        if self._exhausted:
            return None
        if len(self._tickets) >= self.config.in_flight_limit:
            return None
        if self._committed + len(self._tickets) >= self.budget:
            return None
        rule = self.darwin.propose_next()
        if rule is None and self._applied_since_flush:
            # Fresh candidates may be gated behind the deferred hierarchy
            # refresh; flush the partial batch and retry before giving up.
            self.flush()
            rule = self.darwin.propose_next()
        if rule is None:
            # With questions still in flight this is transient — their
            # commits can unreserve rules and unlock new candidates — so only
            # an idle coordinator with nothing left to propose is exhausted.
            if not self._tickets:
                self._exhausted = True
            return None
        self.darwin.mark_in_flight(rule)
        ticket = _Ticket(
            ticket_id=self._next_ticket_id,
            rule=rule,
            sample_ids=tuple(self.darwin.sample_for_query(rule)),
        )
        self._next_ticket_id += 1
        self._tickets[ticket.ticket_id] = ticket
        self._obs_open.set(len(self._tickets))
        return self._assignment(ticket, annotator_id)

    # ------------------------------------------------------------------ voting
    def submit_vote(
        self, ticket_id: int, annotator_id: int, is_useful: bool
    ) -> Optional[QueryRecord]:
        """Record one annotator's vote; commit the majority when complete.

        Returns the committed :class:`QueryRecord` when this vote completed
        the ticket, else None. A strict majority of YES votes accepts the
        rule; ties (possible with even redundancy) count as NO, matching
        :class:`~repro.core.oracle.MajorityVoteOracle`.
        """
        self._check_annotator(annotator_id)
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise OracleError(f"ticket {ticket_id} is not open")
        if annotator_id not in ticket.assigned:
            raise OracleError(
                f"annotator {annotator_id} was never assigned ticket {ticket_id}"
            )
        if annotator_id in ticket.votes:
            raise OracleError(
                f"annotator {annotator_id} already voted on ticket {ticket_id}"
            )
        ticket.votes[annotator_id] = bool(is_useful)
        self._votes_collected += 1
        self._votes_per_annotator[annotator_id] += 1
        self._obs_votes.inc()
        if len(ticket.votes) < self.config.redundancy:
            return None
        return self._commit(ticket)

    def submit_answer(
        self, assignment: Assignment, is_useful: bool
    ) -> Optional[QueryRecord]:
        """Convenience wrapper over :meth:`submit_vote` for an assignment."""
        return self.submit_vote(
            assignment.ticket_id, assignment.annotator_id, is_useful
        )

    def _commit(self, ticket: _Ticket) -> QueryRecord:
        del self._tickets[ticket.ticket_id]
        self._obs_open.set(len(self._tickets))
        yes_votes = sum(1 for vote in ticket.votes.values() if vote)
        majority = yes_votes * 2 > len(ticket.votes)
        if yes_votes * 2 == len(ticket.votes):
            self._obs_ties.inc()
        (self._obs_commit_accept if majority else self._obs_commit_reject).inc()
        self.darwin.apply_answer(ticket.rule, majority, defer_update=True)
        self._committed += 1
        self._applied_since_flush += 1
        if self._applied_since_flush >= self.config.batch_size:
            self.flush()
        return self.darwin.log_answer(
            ticket.rule,
            majority,
            evaluation_positive_ids=self._evaluation_positive_ids,
        )

    # ----------------------------------------------------------------- results
    def flush(self) -> int:
        """Apply deferred retrain/refresh work now; returns answers flushed."""
        if not self._applied_since_flush:
            return 0
        self._applied_since_flush = 0
        start = time.perf_counter()
        try:
            return self.darwin.flush_updates()
        finally:
            self._obs_flush_seconds.observe(time.perf_counter() - start)

    def result(self) -> CrowdResult:
        """Snapshot the session (flushing any trailing partial batch)."""
        self.flush()
        darwin_result = DarwinResult(
            rule_set=self.darwin.rule_set,
            covered_ids=self.darwin.rule_set.covered_ids,
            history=list(self.darwin.history),
            queries_used=self._committed,
            timings=self.darwin.stopwatch.as_dict(),
            config=self.darwin.config,
        )
        return CrowdResult(
            darwin_result=darwin_result,
            questions_committed=self._committed,
            questions_dispatched=self._next_ticket_id,
            votes_collected=self._votes_collected,
            votes_per_annotator=self.votes_per_annotator,
        )
