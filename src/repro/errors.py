"""Exception hierarchy for the Darwin reproduction.

All library-specific errors derive from :class:`ReproError` so that callers can
catch a single exception type at the API boundary while still being able to
distinguish configuration problems from runtime/algorithmic problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An invalid parameter or configuration value was supplied."""


class GrammarError(ReproError):
    """A grammar definition or derivation is malformed."""


class RuleParseError(GrammarError):
    """A rule expression could not be parsed under its grammar."""


class IndexError_(ReproError):
    """The corpus index is inconsistent or was used before being built.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``CorpusIndexError`` from the package root.
    """


class TraversalError(ReproError):
    """A hierarchy traversal was asked to operate on an invalid state."""


class OracleError(ReproError):
    """The oracle received a malformed query or exhausted its budget."""


class BudgetExhaustedError(OracleError):
    """Raised when a component attempts to query past the oracle budget."""


class ClassifierError(ReproError):
    """A classifier was used before fitting or received invalid input."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters."""


class EvaluationError(ReproError):
    """An experiment or metric computation received inconsistent inputs."""


# Public alias that reads better at call sites.
CorpusIndexError = IndexError_
