"""The :class:`DarwinEngine` facade: declarative construction, sessions, and
checkpoint/resume for the Darwin loop.

``DarwinEngine`` subsumes the ``Darwin`` / ``LabelingSession`` entry points
behind one object with an explicit lifecycle:

* **construction** — directly from a corpus, or declaratively from a plain
  dict/JSON config via :meth:`DarwinEngine.from_config`: datasets, grammars,
  classifiers, traversals and oracles are resolved by name through
  :mod:`repro.engine.registry`, so no class imports are needed;
* **sessions** — :meth:`session` hands out a single-annotator
  :class:`~repro.core.session.LabelingSession`, :meth:`crowd` a
  :class:`~repro.crowd.CrowdCoordinator` for K concurrent annotators, and
  :meth:`run` drives a full simulated loop (optionally checkpointing every N
  answers);
* **state** — :meth:`save` serializes the entire session (index + coverage
  columns, rules, hierarchy, traversal pools, classifier scores/weights, RNG
  streams, history) into one versioned ``.npz`` checkpoint, and
  :meth:`DarwinEngine.load` rebuilds an engine that replays
  question-for-question identically to an uninterrupted run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

from ..config import DEFAULT_CONFIG, CrowdConfig, DarwinConfig
from ..core.darwin import Darwin, DarwinResult
from ..core.oracle import Oracle
from ..core.session import LabelingSession
from ..errors import ConfigurationError
from ..obs import get_registry, summarize_snapshot, write_snapshot
from ..rules.heuristic import LabelingHeuristic
from ..text.corpus import Corpus
from .registry import DATASETS, GRAMMARS, ORACLES
from .state import (
    CHECKPOINT_KIND,
    ArrayBundle,
    read_checkpoint,
    read_checkpoint_summary,
    write_checkpoint,
)


def _build_grammars(config: DarwinConfig, grammar_options: Mapping[str, Mapping]) -> List:
    """Instantiate ``config.grammars`` through the grammar registry.

    The full :class:`DarwinConfig` is passed to every factory as the
    ``config`` keyword, so each factory decides for itself which config
    fields feed its defaults (tokensregex takes ``max_phrase_len``); the
    engine stays free of per-grammar special cases.
    """
    grammars = []
    for name in config.grammars:
        options = dict(grammar_options.get(name, {}))
        grammars.append(GRAMMARS.create(name, config=config, **options))
    return grammars


class DarwinEngine:
    """Versioned facade over the Darwin core.

    Args:
        corpus: The corpus to label.
        config: Run configuration; its ``grammars``/``oracle``/``traversal``/
            ``classifier.model`` fields are registry names.
        grammars: Optional pre-built grammar instances (otherwise built from
            ``config.grammars`` via the registry).
        index: Optional pre-built (or checkpoint-restored) corpus index.
        featurizer: Optional pre-fitted sentence featurizer.
        dataset_spec: ``{"name": ..., "options": {...}}`` recording how the
            corpus was loaded; stored in checkpoints so :meth:`load` can
            rebuild the corpus without help.
        grammar_options: Per-grammar constructor options keyed by registry
            name (recorded in checkpoints).
        oracle_options: Extra options for :meth:`build_oracle`.
        seeds: Default seeds for :meth:`start` — a mapping with any of
            ``rule_texts`` and ``positive_ids``.
    """

    def __init__(
        self,
        corpus: Corpus,
        config: Optional[DarwinConfig] = None,
        grammars: Optional[Sequence] = None,
        index=None,
        featurizer=None,
        dataset_spec: Optional[Mapping[str, Any]] = None,
        grammar_options: Optional[Mapping[str, Mapping]] = None,
        oracle_options: Optional[Mapping[str, Any]] = None,
        seeds: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.config = config or DEFAULT_CONFIG
        self.grammar_options: Dict[str, Dict] = {
            name: dict(options) for name, options in (grammar_options or {}).items()
        }
        self.oracle_options: Dict[str, Any] = dict(oracle_options or {})
        self.seeds: Dict[str, Any] = dict(seeds or {})
        self.dataset_spec = dict(dataset_spec) if dataset_spec else None
        self._oracle: Optional[Oracle] = None
        # Checkpoints can only rebuild grammars the registry knows how to
        # construct; explicitly-passed instances are flagged so load() can
        # demand them back instead of silently substituting defaults.
        self._grammars_explicit = grammars is not None
        if grammars is None:
            grammars = _build_grammars(self.config, self.grammar_options)
        self.darwin = Darwin(
            corpus,
            grammars=grammars,
            config=self.config,
            index=index,
            featurizer=featurizer,
        )

    # ------------------------------------------------------------ declarative
    @classmethod
    def from_config(
        cls, spec: Mapping[str, Any], corpus: Optional[Corpus] = None
    ) -> "DarwinEngine":
        """Build an engine from a plain dict/JSON config, no class imports.

        Recognized keys:

        * ``dataset`` — a registry name or ``{"name": ..., **loader options}``
          (ignored when ``corpus`` is passed explicitly);
        * ``config`` (or ``darwin``) — :class:`~repro.config.DarwinConfig`
          fields, including the ``grammars``/``oracle``/``traversal``/
          ``classifier`` name fields;
        * ``grammar_options`` — per-grammar constructor options keyed by
          registry name;
        * ``oracle_options`` — options for :meth:`build_oracle`;
        * ``seeds`` — default seeds: ``{"rule_texts": [...],
          "positive_ids": [...]}``.

        Example::

            engine = DarwinEngine.from_config({
                "dataset": {"name": "directions", "num_sentences": 500,
                            "seed": 7, "parse_trees": False},
                "config": {"budget": 20, "traversal": "hybrid",
                           "grammars": ["tokensregex"],
                           "oracle": "ground_truth",
                           "classifier": {"model": "logistic", "epochs": 15}},
                "seeds": {"rule_texts": ["best way to get to"]},
            })
        """
        if not isinstance(spec, Mapping):
            raise ConfigurationError("engine config must be a mapping")
        known_keys = {"dataset", "config", "darwin", "grammar_options",
                      "oracle_options", "seeds"}
        unknown = set(spec) - known_keys
        if unknown:
            raise ConfigurationError(
                f"unknown engine config keys: {', '.join(sorted(map(str, unknown)))}"
            )
        config_spec = spec.get("config", spec.get("darwin")) or {}
        config = (
            config_spec
            if isinstance(config_spec, DarwinConfig)
            else DarwinConfig.from_dict(config_spec)
        )
        dataset_spec = None
        if corpus is None:
            dataset = spec.get("dataset")
            if dataset is None:
                raise ConfigurationError(
                    "engine config needs a 'dataset' entry (or pass corpus=...)"
                )
            if isinstance(dataset, str):
                dataset = {"name": dataset}
            options = {k: v for k, v in dataset.items() if k != "name"}
            name = dataset.get("name")
            if not name:
                raise ConfigurationError("dataset spec needs a 'name'")
            corpus = DATASETS.create(name, **options)
            dataset_spec = {"name": name, "options": options}
        return cls(
            corpus,
            config=config,
            dataset_spec=dataset_spec,
            grammar_options=spec.get("grammar_options"),
            oracle_options=spec.get("oracle_options"),
            seeds=spec.get("seeds"),
        )

    # -------------------------------------------------------------- lifecycle
    @property
    def corpus(self) -> Corpus:
        """The corpus being labeled."""
        return self.darwin.corpus

    @property
    def started(self) -> bool:
        """True once the session has been seeded (or restored)."""
        return getattr(self.darwin, "_started", False)

    @property
    def questions_asked(self) -> int:
        """Questions answered so far in this session."""
        return len(self.darwin.history)

    def start(
        self,
        seed_rules: Optional[Sequence[LabelingHeuristic]] = None,
        seed_rule_texts: Optional[Sequence[str]] = None,
        seed_positive_ids: Optional[Sequence[int]] = None,
    ) -> "DarwinEngine":
        """Seed the session (defaults to the config's ``seeds`` entry)."""
        if not (seed_rules or seed_rule_texts or seed_positive_ids):
            seed_rule_texts = self.seeds.get("rule_texts")
            seed_positive_ids = self.seeds.get("positive_ids")
        self.darwin.start(
            seed_rules=seed_rules,
            seed_rule_texts=seed_rule_texts,
            seed_positive_ids=seed_positive_ids,
        )
        return self

    def build_oracle(self, **overrides: Any) -> Oracle:
        """Construct the configured oracle through the oracle registry."""
        options: Dict[str, Any] = {
            "precision_threshold": self.config.oracle_precision_threshold
        }
        options.update(self.oracle_options)
        options.update(overrides)
        return ORACLES.create(self.config.oracle, self.corpus, **options)

    @property
    def oracle(self) -> Oracle:
        """The engine's persistent oracle (built on first use, then reused).

        Persistence matters for stochastic oracles: one continuous RNG stream
        answers every :meth:`run` call, and :meth:`save` checkpoints the
        stream so a resumed engine's oracle picks up where it stopped —
        without this, noisy oracles would replay differently after a resume.
        """
        if self._oracle is None:
            self._oracle = self.build_oracle()
        return self._oracle

    # --------------------------------------------------------------- sessions
    def session(
        self,
        budget: Optional[int] = None,
        oracle: Optional[Oracle] = None,
        seed_rules: Optional[Sequence[LabelingHeuristic]] = None,
        seed_rule_texts: Optional[Sequence[str]] = None,
        seed_positive_ids: Optional[Sequence[int]] = None,
    ) -> LabelingSession:
        """An interactive single-annotator session over this engine.

        A fresh engine is seeded from the given seeds (or the config's
        ``seeds``); a started/restored engine continues its run in place, so
        ``DarwinEngine.load(path).session()`` picks up mid-session.
        """
        if not self.started and not (
            seed_rules or seed_rule_texts or seed_positive_ids
        ):
            seed_rule_texts = self.seeds.get("rule_texts")
            seed_positive_ids = self.seeds.get("positive_ids")
        if oracle is not None:
            # Adopt the session's oracle as the engine's persistent one (as
            # run() does) so its answering state lands in checkpoints and
            # load() can detect an oracle the config cannot rebuild.
            self._oracle = oracle
        return LabelingSession(
            self.darwin,
            budget=budget,
            oracle=oracle,
            seed_rules=seed_rules,
            seed_rule_texts=seed_rule_texts,
            seed_positive_ids=seed_positive_ids,
        )

    def crowd(self, crowd_config: Optional[CrowdConfig] = None):
        """A :class:`~repro.crowd.CrowdCoordinator` over this engine.

        The engine must be started (seed first, or load a checkpoint); the
        coordinator then serves K concurrent annotators from the shared
        session state.
        """
        from ..crowd.coordinator import CrowdCoordinator

        return CrowdCoordinator(self.darwin, crowd_config)

    def run(
        self,
        oracle: Optional[Oracle] = None,
        budget: Optional[int] = None,
        seed_rules: Optional[Sequence[LabelingHeuristic]] = None,
        seed_rule_texts: Optional[Sequence[str]] = None,
        seed_positive_ids: Optional[Sequence[int]] = None,
        evaluation_positive_ids: Optional[Set[int]] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        metrics_out: Optional[str] = None,
    ) -> DarwinResult:
        """Drive the loop until ``budget`` *total* questions are answered.

        Resume-aware: on an engine restored from a checkpoint the loop
        continues from the recorded history, so "run 10, checkpoint, resume
        10" asks exactly the questions an uninterrupted run of 20 asks.

        Args:
            oracle: Answering oracle (default: :meth:`build_oracle`).
            budget: Total question budget including already-answered ones
                (default ``config.budget``).
            seed_rules / seed_rule_texts / seed_positive_ids: Seeds for a
                fresh engine (ignored when already started).
            evaluation_positive_ids: Ground truth for history records.
            checkpoint_every: Save a checkpoint after every N answers.
            checkpoint_path: Where to save checkpoints. Required with
                ``checkpoint_every``; on its own it requests one final
                checkpoint when the run ends. Either way the file holds the
                end-of-run state when :meth:`run` returns.
            metrics_out: Write a ``repro.obs`` metrics+spans snapshot JSON
                here on every checkpoint and when the run ends (enable the
                registry with :func:`repro.obs.enable` first, or the snapshot
                records only that metrics were disabled).
        """
        if not self.started:
            self.start(
                seed_rules=seed_rules,
                seed_rule_texts=seed_rule_texts,
                seed_positive_ids=seed_positive_ids,
            )
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ConfigurationError("checkpoint_every must be positive")
        if checkpoint_every and not checkpoint_path:
            raise ConfigurationError("checkpoint_every requires a checkpoint_path")
        if oracle is not None:
            # An explicitly-passed oracle becomes the engine's persistent one
            # so its answering state lands in subsequent checkpoints.
            self._oracle = oracle
        oracle = self.oracle
        total_budget = budget or self.config.budget
        darwin = self.darwin
        saved_at = -1
        while len(darwin.history) < total_budget:
            rule = darwin.propose_next()
            if rule is None:
                break
            samples = darwin.sample_for_query(rule)
            with darwin._phase("oracle_answer"):
                answer = oracle.ask(rule, samples)
            darwin.record_answer(
                rule,
                answer.is_useful,
                evaluation_positive_ids=evaluation_positive_ids,
            )
            if checkpoint_every and len(darwin.history) % checkpoint_every == 0:
                self.save(checkpoint_path)
                saved_at = len(darwin.history)
                if metrics_out:
                    write_snapshot(metrics_out)
        if checkpoint_path and saved_at != len(darwin.history):
            # The final state is always written when a checkpoint path was
            # given: with checkpoint_every, a budget that is not a multiple
            # of N (or a loop that ran out of candidates) must not leave a
            # stale file; without it, the path alone requests one end-of-run
            # checkpoint.
            self.save(checkpoint_path)
        if metrics_out:
            write_snapshot(metrics_out)
        return self.result()

    def result(self) -> DarwinResult:
        """Snapshot the session as a :class:`DarwinResult`."""
        darwin = self.darwin
        return DarwinResult(
            rule_set=darwin.rule_set,
            covered_ids=darwin.rule_set.covered_ids,
            history=list(darwin.history),
            queries_used=len(darwin.history),
            timings=darwin.stopwatch.as_dict(),
            config=self.config,
        )

    # ------------------------------------------------------------------ state
    def save(self, path: str) -> str:
        """Write the whole session to one checkpoint file; returns ``path``.

        The engine must be started. The checkpoint is self-contained when the
        engine knows its dataset spec (``from_config`` / CLI runs); engines
        built around an ad-hoc corpus save fine but need the same corpus
        passed back to :meth:`load`.
        """
        if not self.started:
            raise ConfigurationError("cannot save an engine before start()")
        bundle = ArrayBundle()
        manifest = {
            "kind": CHECKPOINT_KIND,
            "repro_version": _repro_version(),
            "config": self.config.as_dict(),
            "grammar_options": self.grammar_options,
            "oracle_options": self.oracle_options,
            "seeds": self.seeds,
            "dataset": self.dataset_spec,
            "corpus_name": self.corpus.name,
            "grammars_explicit": self._grammars_explicit,
            # The persistent oracle's answering state (RNG streams), so a
            # stochastic oracle resumes mid-stream instead of replaying from
            # its seed. The class name lets load() detect an oracle it cannot
            # rebuild from config. None when no oracle has answered yet.
            "oracle_state": (
                {
                    "class": type(self._oracle).__name__,
                    "state": self._oracle.state_dict(),
                }
                if self._oracle is not None
                else None
            ),
            "index": self.darwin.index.to_state(bundle, prefix="index/"),
            "darwin": self.darwin.to_state(bundle),
            # Informational telemetry block: the registry snapshot at save
            # time (None when metrics are disabled). Never read on restore —
            # describe_checkpoint/export-state surface it so "what has this
            # engine done" is answerable without loading the checkpoint.
            "metrics": (
                get_registry().snapshot() if get_registry().enabled else None
            ),
        }
        return write_checkpoint(path, manifest, bundle.as_mapping())

    @classmethod
    def load(
        cls,
        path: str,
        corpus: Optional[Corpus] = None,
        grammars: Optional[Sequence] = None,
        oracle: Optional[Oracle] = None,
    ) -> "DarwinEngine":
        """Rebuild a started engine from a :meth:`save` checkpoint.

        Components the checkpoint cannot reconstruct must be passed back in,
        mirroring how the engine was built: the corpus when the checkpoint
        has no dataset spec (ad-hoc corpora), the grammar instances when the
        engine was built with explicit instances rather than config names,
        and the oracle when the run used one the config cannot rebuild. Each
        missing piece raises :class:`~repro.errors.ConfigurationError` —
        loudly, because substituting a default would silently break the
        question-for-question replay guarantee. Corrupted files and
        schema-version mismatches raise the same error.
        """
        manifest, bundle = read_checkpoint(path)
        config = DarwinConfig.from_dict(manifest["config"])
        dataset_spec = manifest.get("dataset")
        if corpus is None:
            if not dataset_spec:
                raise ConfigurationError(
                    "checkpoint records no dataset spec; pass the original "
                    "corpus to DarwinEngine.load(path, corpus=...)"
                )
            corpus = DATASETS.create(
                dataset_spec["name"], **dataset_spec.get("options", {})
            )
        else:
            # A caller-supplied corpus must be the one the checkpoint was
            # taken over: every serialized sentence id refers into it, so a
            # substitute would restore silently-wrong state (or crash later
            # with an opaque shape error).
            recorded_sentences = manifest.get("index", {}).get("num_sentences")
            if recorded_sentences is not None and len(corpus) != recorded_sentences:
                raise ConfigurationError(
                    f"checkpoint was taken over a corpus of "
                    f"{recorded_sentences} sentences, but the supplied corpus "
                    f"has {len(corpus)}"
                )
            recorded_name = manifest.get("corpus_name")
            if recorded_name is not None and corpus.name != recorded_name:
                raise ConfigurationError(
                    f"checkpoint was taken over corpus {recorded_name!r}, but "
                    f"the supplied corpus is named {corpus.name!r}"
                )
        grammar_options = manifest.get("grammar_options") or {}
        if grammars is None:
            if manifest.get("grammars_explicit"):
                raise ConfigurationError(
                    "this checkpoint's engine was built with explicit grammar "
                    "instances whose options the config does not record; pass "
                    "the same instances to DarwinEngine.load(path, grammars=...)"
                )
            grammars = _build_grammars(config, grammar_options)
        from ..index.arena import ArenaConfig
        from ..index.trie_index import CorpusIndex

        # Runtime arena tuning (bitset cache budget) comes from the config;
        # the arena *file* is located by the checkpoint's reference and its
        # content digest is verified on reattach.
        arena_config = ArenaConfig(
            path=config.index.arena_path,
            bitset_cache_bytes=config.index.bitset_cache_bytes,
        )
        index = CorpusIndex.from_state(
            manifest["index"], bundle, grammars, arena_config=arena_config
        )
        engine = cls(
            corpus,
            config=config,
            grammars=grammars,
            index=index,
            dataset_spec=dataset_spec,
            grammar_options=grammar_options,
            oracle_options=manifest.get("oracle_options"),
            seeds=manifest.get("seeds"),
        )
        engine._grammars_explicit = bool(manifest.get("grammars_explicit"))
        engine.darwin.restore_state(manifest["darwin"], bundle)
        engine._restore_oracle(manifest.get("oracle_state"), oracle)
        return engine

    def _restore_oracle(
        self, oracle_state: Optional[Mapping[str, Any]], oracle: Optional[Oracle]
    ) -> None:
        """Rebuild/adopt the persistent oracle and resume its RNG streams."""
        if oracle_state is None:
            self._oracle = oracle
            return
        recorded_class = oracle_state.get("class")
        if oracle is None:
            oracle = self.build_oracle()
            if recorded_class is not None and type(oracle).__name__ != recorded_class:
                raise ConfigurationError(
                    f"this checkpoint's questions were answered by a "
                    f"{recorded_class} oracle, which config.oracle="
                    f"{self.config.oracle!r} does not rebuild; pass the same "
                    f"oracle to DarwinEngine.load(path, oracle=...)"
                )
        elif recorded_class is not None and type(oracle).__name__ != recorded_class:
            raise ConfigurationError(
                f"checkpoint oracle state belongs to {recorded_class}, not "
                f"{type(oracle).__name__}; pass a matching oracle (or none, "
                f"to rebuild from config)"
            )
        oracle.load_state(oracle_state.get("state", {}))
        self._oracle = oracle

    @staticmethod
    def describe_checkpoint(path: str) -> Dict[str, Any]:
        """Human-readable summary of a checkpoint (the ``export-state`` CLI).

        Returns the manifest with bulk sections summarized (counts instead of
        full node/rule listings) plus the array inventory. Array payloads are
        not decompressed — only their ``.npy`` headers are read — so
        inspecting a large-corpus checkpoint stays cheap.
        """
        manifest, inventory = read_checkpoint_summary(path)
        darwin_state = manifest.get("darwin", {})
        index_state = manifest.get("index", {})
        summary = {
            "kind": manifest.get("kind"),
            "schema_version": manifest.get("schema_version"),
            "repro_version": manifest.get("repro_version"),
            "config": manifest.get("config"),
            "dataset": manifest.get("dataset"),
            "corpus_name": manifest.get("corpus_name"),
            "seeds": manifest.get("seeds"),
            "questions_asked": len(darwin_state.get("history", [])),
            "accepted_rules": [
                ref["e"] for ref in darwin_state.get("rule_set", {}).get("rules", [])
            ],
            "hierarchy_nodes": len(darwin_state.get("hierarchy", {}).get("nodes", [])),
            "queried": len(darwin_state.get("queried", [])),
            "in_flight": len(darwin_state.get("in_flight", [])),
            "traversal": darwin_state.get("traversal", {}).get("kind"),
            "index_nodes": len(index_state.get("nodes", [])),
            "num_sentences": index_state.get("num_sentences"),
            "coverage_backend": index_state.get("store", {}).get(
                "backend", "memory"
            ),
            # Overlay stores (tenant checkpoints) keep their arena reference
            # one level down, on the shared base they point at.
            "arena": index_state.get("store", {}).get("arena")
            or index_state.get("store", {}).get("base", {}).get("arena"),
            # Digest of the embedded telemetry snapshot (questions asked,
            # retrains, phase latency, cache hit ratios); {} when the
            # checkpoint was saved with metrics disabled.
            "metrics": summarize_snapshot(manifest.get("metrics")),
            "arrays": {name: inventory[name] for name in sorted(inventory)},
        }
        return summary


def _repro_version() -> str:
    from .. import __version__

    return __version__


def export_state_json(path: str, indent: int = 2) -> str:
    """The :meth:`DarwinEngine.describe_checkpoint` summary as a JSON string."""
    return json.dumps(DarwinEngine.describe_checkpoint(path), indent=indent, sort_keys=True)
