"""Versioned checkpoint files for the engine's state protocol.

A checkpoint is **one** ``.npz`` file holding

* a JSON manifest (under the reserved ``__manifest__`` entry) with a schema
  version, the engine configuration, the dataset spec, and every non-array
  piece of session state, and
* the numpy arrays referenced by the manifest (coverage columns, CSR maps,
  classifier scores and weights, positive ids, ...), each under the string
  key the manifest recorded.

The JSON/array split keeps the manifest human-inspectable (``python -m repro
export-state``) while the bulk state stays binary. :func:`read_checkpoint`
validates the container, the manifest JSON, the checkpoint kind, and the
schema version, raising :class:`~repro.errors.ConfigurationError` on any
mismatch — a corrupted or future-versioned checkpoint fails loudly instead of
resuming into silently-wrong state.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

STATE_SCHEMA_VERSION = 1
"""Bump whenever the manifest layout or array contract changes."""

CHECKPOINT_KIND = "darwin-engine-checkpoint"
MANIFEST_KEY = "__manifest__"


class ArrayBundle:
    """Collects named numpy arrays for a checkpoint (and reads them back).

    Writing: components call :meth:`put` with a unique slash-namespaced key
    (``"index/coverage_values"``) and store the returned key in their manifest
    fragment. Reading: the same key retrieves the array from the loaded file.
    """

    def __init__(self, source: Optional[Mapping[str, np.ndarray]] = None) -> None:
        self._arrays: Dict[str, np.ndarray] = {}
        self._source = source

    def put(self, name: str, array: Any) -> str:
        """Store ``array`` under ``name``; returns ``name`` for the manifest."""
        if name == MANIFEST_KEY:
            raise ConfigurationError(f"array name {name!r} is reserved")
        if name in self._arrays:
            raise ConfigurationError(f"duplicate checkpoint array name {name!r}")
        self._arrays[name] = np.asarray(array)
        return name

    def get(self, name: str) -> np.ndarray:
        """The array stored under ``name`` (from memory or the loaded file)."""
        if name in self._arrays:
            return self._arrays[name]
        if self._source is not None:
            try:
                return np.asarray(self._source[name])
            except KeyError:
                pass
        raise ConfigurationError(f"checkpoint is missing array {name!r}")

    def as_mapping(self) -> Dict[str, np.ndarray]:
        """The collected arrays (for :func:`write_checkpoint`)."""
        return dict(self._arrays)

    def names(self) -> "list[str]":
        """All array names available (collected plus loaded-file entries)."""
        names = set(self._arrays)
        if self._source is not None:
            names.update(
                name
                for name in getattr(self._source, "files", self._source)
                if name != MANIFEST_KEY
            )
        return sorted(names)


def write_checkpoint(
    path: str, manifest: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> str:
    """Write a single-file checkpoint; returns ``path``.

    The manifest is stamped with the checkpoint kind and schema version when
    the caller has not set them already.
    """
    record = dict(manifest)
    record.setdefault("kind", CHECKPOINT_KIND)
    record.setdefault("schema_version", STATE_SCHEMA_VERSION)
    try:
        encoded = json.dumps(record, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"checkpoint manifest is not JSON-able: {exc}") from exc
    payload: Dict[str, np.ndarray] = {
        MANIFEST_KEY: np.frombuffer(encoded, dtype=np.uint8)
    }
    for name, array in arrays.items():
        if name == MANIFEST_KEY:
            raise ConfigurationError(f"array name {name!r} is reserved")
        payload[name] = np.asarray(array)
    # Write-then-rename keeps re-saves atomic: a crash or full disk mid-write
    # must not destroy the previous good checkpoint (periodic re-saving over
    # the same path is the normal checkpoint_every flow). The file handle
    # also stops np.savez appending ".npz" to bare paths.
    temp_path = f"{path}.tmp"
    try:
        with open(temp_path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path


def read_checkpoint(
    path: str, expected_kind: str = CHECKPOINT_KIND
) -> Tuple[Dict[str, Any], ArrayBundle]:
    """Load and validate a checkpoint written by :func:`write_checkpoint`.

    Returns ``(manifest, bundle)``. The file is read eagerly and closed
    before returning — a loaded engine holds no descriptor on its checkpoint,
    so long-lived services can load repeatedly and the file can be rewritten
    (``resume --checkpoint-every``) on platforms that forbid writing an open
    file. Raises :class:`~repro.errors.ConfigurationError` when the file is
    unreadable, does not carry ``expected_kind`` (other checkpoint families
    — e.g. the fleet's substrate snapshot — share the container format under
    their own kind stamp), or carries a different schema version.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
    except FileNotFoundError:
        raise ConfigurationError(f"checkpoint file not found: {path}") from None
    except Exception as exc:
        raise ConfigurationError(
            f"could not read checkpoint {path}: {exc}"
        ) from exc
    if MANIFEST_KEY not in arrays:
        raise ConfigurationError(
            f"{path} is not a Darwin engine checkpoint (no manifest entry)"
        )
    manifest = _decode_manifest(
        arrays.pop(MANIFEST_KEY).tobytes(), path, expected_kind
    )
    return manifest, ArrayBundle(source=arrays)


def _decode_manifest(
    encoded: bytes, path: str, expected_kind: str = CHECKPOINT_KIND
) -> Dict[str, Any]:
    """Parse and validate a manifest payload (kind + schema version)."""
    try:
        manifest = json.loads(encoded.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"checkpoint manifest in {path} is corrupted: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("kind") != expected_kind:
        raise ConfigurationError(
            f"{path} is not a {expected_kind} checkpoint "
            f"(kind={manifest.get('kind') if isinstance(manifest, dict) else manifest!r})"
        )
    version = manifest.get("schema_version")
    if version != STATE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"checkpoint schema version {version!r} does not match this "
            f"build's version {STATE_SCHEMA_VERSION}; re-create the checkpoint "
            f"with a matching repro release"
        )
    return manifest


def read_checkpoint_summary(path: str) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """The manifest plus a shape/dtype inventory, without reading array data.

    ``export-state`` uses this so inspecting a large-corpus checkpoint stays
    O(manifest): only the manifest member and each ``.npy`` member's header
    are decompressed, never the coverage/CSR/score payloads.
    """
    import zipfile

    import numpy.lib.format as npy_format

    inventory: Dict[str, Dict[str, Any]] = {}
    manifest: Optional[Dict[str, Any]] = None
    try:
        with zipfile.ZipFile(path) as archive:
            for member in archive.namelist():
                name = member[:-4] if member.endswith(".npy") else member
                with archive.open(member) as handle:
                    if name == MANIFEST_KEY:
                        version = npy_format.read_magic(handle)
                        npy_format._check_version(version)
                        shape, _, dtype = npy_format._read_array_header(
                            handle, version
                        )
                        manifest = _decode_manifest(handle.read(), path)
                        continue
                    version = npy_format.read_magic(handle)
                    npy_format._check_version(version)
                    shape, _, dtype = npy_format._read_array_header(handle, version)
                inventory[name] = {"shape": list(shape), "dtype": str(dtype)}
    except FileNotFoundError:
        raise ConfigurationError(f"checkpoint file not found: {path}") from None
    except ConfigurationError:
        raise
    except Exception:
        # Anything surprising in the fast path (numpy internals changed, odd
        # archive layout): fall back to the eager reader, which validates
        # everything and reports shapes from the materialized arrays.
        manifest, bundle = read_checkpoint(path)
        for name in bundle.names():
            array = bundle.get(name)
            inventory[name] = {"shape": list(array.shape), "dtype": str(array.dtype)}
        return manifest, inventory
    if manifest is None:
        raise ConfigurationError(
            f"{path} is not a Darwin engine checkpoint (no manifest entry)"
        )
    return manifest, inventory


def rng_state_dict(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-able snapshot of a numpy ``Generator``'s bit-generator state."""
    return {
        "bit_generator": type(rng.bit_generator).__name__,
        "state": rng.bit_generator.state,
    }


def restore_rng(state: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a ``Generator`` from :func:`rng_state_dict` output."""
    name = state.get("bit_generator", "PCG64")
    bit_generator_cls = getattr(np.random, str(name), None)
    if not (
        isinstance(bit_generator_cls, type)
        and issubclass(bit_generator_cls, np.random.BitGenerator)
    ):
        # Guards corrupted manifests naming a non-BitGenerator np.random
        # attribute (e.g. "seed"), which getattr alone would happily return.
        raise ConfigurationError(
            f"checkpoint uses unknown bit generator {name!r}"
        )
    bit_generator = bit_generator_cls()
    try:
        bit_generator.state = state["state"]
    except (KeyError, AttributeError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"checkpoint RNG state is corrupted: {exc}"
        ) from exc
    return np.random.Generator(bit_generator)
