"""String-keyed component registries for the declarative engine API.

Every pluggable component family — heuristic grammars, benefit classifiers,
traversal strategies, oracles, and dataset loaders — gets a :class:`Registry`
mapping short names to factories. The shipped implementations register
themselves here, and user code can add its own with the ``@register_*``
decorators:

    from repro.engine import register_grammar

    @register_grammar("my-grammar")
    def _build(**options):
        return MyGrammar(**options)

A full engine is then constructible from a plain dict/JSON config via
:meth:`repro.engine.DarwinEngine.from_config` with no direct class imports:
the config names components ("tokensregex", "logistic", "hybrid",
"ground_truth", "directions") and the registries resolve them.

This module deliberately imports only leaf modules (grammars, classifier
models, traversal strategies, oracles, dataset loaders) and **not**
``repro.config`` — :class:`~repro.config.DarwinConfig` validates its name
fields against these registries lazily, so an import in the other direction
would be circular.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..errors import ConfigurationError

Factory = Callable[..., Any]


class Registry:
    """A named mapping from string keys to component factories.

    Args:
        kind: Human-readable family name used in error messages
            (e.g. ``"grammar"``).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Factory] = {}

    # ------------------------------------------------------------ registration
    def register(
        self, name: str, factory: Optional[Factory] = None, overwrite: bool = False
    ):
        """Register ``factory`` under ``name``; usable as a decorator.

        Args:
            name: Registry key (non-empty string).
            factory: The factory callable; when omitted a decorator is
                returned.
            overwrite: Allow replacing an existing registration (off by
                default so two components cannot silently shadow each other).
        """
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"{self.kind} name must be a non-empty string")

        def _register(fn: Factory) -> Factory:
            if not overwrite and name in self._factories:
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass overwrite=True to replace it"
                )
            self._factories[name] = fn
            return fn

        if factory is None:
            return _register
        return _register(factory)

    # ----------------------------------------------------------------- lookup
    def get(self, name: str) -> Factory:
        """The factory registered under ``name``."""
        factory = self._factories.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}"
            )
        return factory

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={list(self.names())})"


GRAMMARS = Registry("grammar")
CLASSIFIERS = Registry("classifier")
TRAVERSALS = Registry("traversal")
ORACLES = Registry("oracle")
DATASETS = Registry("dataset")

register_grammar = GRAMMARS.register
register_classifier = CLASSIFIERS.register
register_traversal = TRAVERSALS.register
register_oracle = ORACLES.register
register_dataset = DATASETS.register


# --------------------------------------------------------------------- grammars
# Grammar factories receive the engine's DarwinConfig as the optional
# ``config`` keyword; each factory decides which config fields feed its
# defaults, keeping the engine free of per-grammar special cases.
@register_grammar("tokensregex")
def _make_tokensregex(
    max_phrase_len: Optional[int] = None,
    allow_gaps: bool = False,
    config: Any = None,
    **_: Any,
):
    from ..grammars.tokensregex import TokensRegexGrammar

    if max_phrase_len is None:
        max_phrase_len = config.max_phrase_len if config is not None else 4
    return TokensRegexGrammar(max_phrase_len=max_phrase_len, allow_gaps=allow_gaps)


@register_grammar("treematch")
def _make_treematch(
    max_pattern_size: int = 5, include_pos_leaves: bool = True, **_: Any
):
    from ..grammars.treematch import TreeMatchGrammar

    return TreeMatchGrammar(
        max_pattern_size=max_pattern_size, include_pos_leaves=include_pos_leaves
    )


# ------------------------------------------------------------------ classifiers
# Factories take a ClassifierConfig-shaped object (duck-typed so this module
# never has to import repro.config).
@register_classifier("logistic")
def _make_logistic(config):
    from ..classifier.logistic import LogisticTextClassifier

    return LogisticTextClassifier(
        epochs=config.epochs,
        learning_rate=config.learning_rate,
        l2=config.l2,
        batch_size=config.batch_size,
        seed=config.seed,
    )


@register_classifier("mlp")
def _make_mlp(config):
    from ..classifier.mlp import MLPTextClassifier

    return MLPTextClassifier(
        hidden_dim=config.hidden_dim,
        epochs=config.epochs,
        learning_rate=config.learning_rate,
        l2=config.l2,
        batch_size=config.batch_size,
        seed=config.seed,
    )


@register_classifier("cnn")
def _make_cnn(config):
    from ..classifier.cnn import CNNTextClassifier

    return CNNTextClassifier(
        epochs=config.epochs,
        learning_rate=config.learning_rate,
        l2=config.l2,
        batch_size=config.batch_size,
        seed=config.seed,
    )


# ------------------------------------------------------------------- traversals
@register_traversal("local")
def _make_local(context, seed_rules, tau: int = 5, **_: Any):
    from ..core.traversal.local import LocalSearch

    return LocalSearch(context, seed_rules)


@register_traversal("universal")
def _make_universal(context, seed_rules, tau: int = 5, **_: Any):
    from ..core.traversal.universal import UniversalSearch

    return UniversalSearch(context, seed_rules)


@register_traversal("hybrid")
def _make_hybrid(context, seed_rules, tau: int = 5, **_: Any):
    from ..core.traversal.hybrid import HybridSearch

    return HybridSearch(context, seed_rules, tau=tau)


# ---------------------------------------------------------------------- oracles
@register_oracle("ground_truth")
def _make_ground_truth(corpus, precision_threshold: float = 0.8, **_: Any):
    from ..core.oracle import GroundTruthOracle

    return GroundTruthOracle(corpus, precision_threshold=precision_threshold)


@register_oracle("sample_based")
def _make_sample_based(
    corpus,
    precision_threshold: float = 0.8,
    label_noise: float = 0.0,
    seed: int = 0,
    **_: Any,
):
    from ..core.oracle import SampleBasedOracle

    return SampleBasedOracle(
        corpus,
        precision_threshold=precision_threshold,
        label_noise=label_noise,
        seed=seed,
    )


@register_oracle("noisy_ground_truth")
def _make_noisy_ground_truth(
    corpus,
    precision_threshold: float = 0.8,
    flip_prob: float = 0.1,
    seed: int = 0,
    **_: Any,
):
    from ..core.oracle import GroundTruthOracle, NoisyOracle

    return NoisyOracle(
        GroundTruthOracle(corpus, precision_threshold=precision_threshold),
        flip_prob=flip_prob,
        seed=seed,
    )


@register_oracle("majority_vote")
def _make_majority_vote(
    corpus,
    precision_threshold: float = 0.8,
    label_noise: float = 0.1,
    num_votes: int = 3,
    seed: int = 0,
    **_: Any,
):
    from ..core.oracle import MajorityVoteOracle, SampleBasedOracle

    annotators = [
        SampleBasedOracle(
            corpus,
            precision_threshold=precision_threshold,
            label_noise=label_noise,
            seed=seed + i,
        )
        for i in range(num_votes)
    ]
    return MajorityVoteOracle(annotators)


# --------------------------------------------------------------------- datasets
def _register_shipped_datasets() -> None:
    from ..datasets.registry import DATASET_NAMES, load_dataset

    for dataset_name in DATASET_NAMES:
        if dataset_name in DATASETS:
            continue

        def _loader(name: str = dataset_name, **options: Any):
            return load_dataset(name, **options)

        DATASETS.register(dataset_name, _loader)


_register_shipped_datasets()


# ---------------------------------------------------------------- completeness
def check_shipped_registrations() -> None:
    """Verify that every shipped component is reachable through the registries.

    Raises :class:`~repro.errors.ConfigurationError` listing anything missing.
    Run by the CI registry-completeness step so a new grammar, classifier,
    traversal strategy, oracle, or dataset cannot ship without a registry
    entry: the check imports the shipping subpackages and walks the concrete
    subclasses of each family's base class (instantiating classifier/oracle
    factories to learn which classes the registries can actually produce), so
    a subclass added to the package without a registration fails here. The
    one blind spot is a component module that nothing imports — keep new
    modules exported from their subpackage ``__init__`` as usual.
    """
    import repro.classifier as _classifier_pkg  # noqa: F401 - loads subclasses
    import repro.core.traversal as _traversal_pkg  # noqa: F401

    from ..classifier.base import TextClassifier
    from ..config import ClassifierConfig
    from ..core.oracle import BudgetedOracle, Oracle
    from ..core.traversal.base import TraversalStrategy
    from ..core.traversal.hybrid import HybridSearch  # noqa: F401 - loads subclasses
    from ..datasets.registry import DATASET_NAMES
    from ..grammars.base import HeuristicGrammar
    from ..text.corpus import Corpus

    missing = []

    def concrete_subclasses(base):
        found = set()
        frontier = list(base.__subclasses__())
        while frontier:
            cls = frontier.pop()
            frontier.extend(cls.__subclasses__())
            if not getattr(cls, "__abstractmethods__", None):
                found.add(cls)
        return found

    shipped_grammars = {
        cls.name
        for cls in concrete_subclasses(HeuristicGrammar)
        if cls.name != "abstract"
    }
    for name in sorted(shipped_grammars):
        if name not in GRAMMARS:
            missing.append(f"grammar {name!r}")

    producible_classifiers = {
        type(CLASSIFIERS.get(name)(ClassifierConfig())) for name in CLASSIFIERS
    }
    for cls in sorted(
        concrete_subclasses(TextClassifier) - producible_classifiers,
        key=lambda c: c.__name__,
    ):
        missing.append(f"classifier class {cls.__name__!r}")

    shipped_traversals = {
        cls.name
        for cls in concrete_subclasses(TraversalStrategy)
        if cls.name != "abstract"
    }
    for name in sorted(shipped_traversals):
        if name not in TRAVERSALS:
            missing.append(f"traversal {name!r}")

    probe_corpus = Corpus.from_texts(
        ["alpha beta", "beta gamma", "gamma delta", "delta alpha"],
        [True, True, False, False],
        name="registry-probe",
    )
    producible_oracles = set()
    for name in ORACLES:
        oracle = ORACLES.get(name)(probe_corpus)
        while isinstance(oracle, Oracle):
            producible_oracles.add(type(oracle))
            oracle = getattr(oracle, "base", None) or (
                getattr(oracle, "annotators", [None])[0]
            )
    # BudgetedOracle is a budget-tracking wrapper applied by callers, not an
    # answering strategy a config would name.
    for cls in sorted(
        concrete_subclasses(Oracle) - producible_oracles - {BudgetedOracle},
        key=lambda c: c.__name__,
    ):
        missing.append(f"oracle class {cls.__name__!r}")

    for name in DATASET_NAMES:
        if name not in DATASETS:
            missing.append(f"dataset {name!r}")

    if missing:
        raise ConfigurationError(
            "shipped components missing from the engine registries: "
            + ", ".join(missing)
        )
