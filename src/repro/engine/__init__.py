"""The declarative engine API: registries, state protocol, and the facade.

Public surface:

* :class:`DarwinEngine` — construct from a config dict
  (:meth:`~DarwinEngine.from_config`), hand out serial/crowd sessions, and
  checkpoint/resume whole sessions (:meth:`~DarwinEngine.save` /
  :meth:`~DarwinEngine.load`);
* the component registries (:data:`GRAMMARS`, :data:`CLASSIFIERS`,
  :data:`TRAVERSALS`, :data:`ORACLES`, :data:`DATASETS`) and their
  ``@register_*`` decorators;
* the checkpoint primitives (:data:`STATE_SCHEMA_VERSION`,
  :func:`read_checkpoint`, :func:`write_checkpoint`, :class:`ArrayBundle`).

This ``__init__`` stays import-light (:class:`DarwinEngine` loads lazily):
``repro.config`` validates its name fields against the registries during its
own module initialization, so pulling the full facade in here would be a
circular import.
"""

from .registry import (
    CLASSIFIERS,
    DATASETS,
    GRAMMARS,
    ORACLES,
    TRAVERSALS,
    Registry,
    check_shipped_registrations,
    register_classifier,
    register_dataset,
    register_grammar,
    register_oracle,
    register_traversal,
)
from .state import (
    STATE_SCHEMA_VERSION,
    ArrayBundle,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "DarwinEngine",
    "export_state_json",
    "Registry",
    "GRAMMARS",
    "CLASSIFIERS",
    "TRAVERSALS",
    "ORACLES",
    "DATASETS",
    "register_grammar",
    "register_classifier",
    "register_traversal",
    "register_oracle",
    "register_dataset",
    "check_shipped_registrations",
    "STATE_SCHEMA_VERSION",
    "ArrayBundle",
    "read_checkpoint",
    "write_checkpoint",
]

_LAZY = {"DarwinEngine", "export_state_json"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import engine as _engine

        return getattr(_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
