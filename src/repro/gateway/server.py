"""HTTP server backends over :class:`~repro.gateway.handlers.GatewayApp`.

The app is framework-free; a *backend* is only the byte-moving shell around
``app.handle``. Backends are registered by name in :data:`BACKENDS` — the
same string-keyed registry pattern the engine uses for grammars and oracles
— so ``GatewayConfig(backend="stdlib")`` picks the shipped
:class:`ThreadingHTTPServer` shell and ``backend="starlette"`` builds an
ASGI adapter *iff* starlette is importable, without ever being imported at
module load (zero new hard dependencies).

The stdlib backend's shutdown choreography is the part worth reading
twice: ``daemon_threads=False`` + ``block_on_close=True`` make
``server_close()`` join every in-flight request thread, so the drain
sequence — stop admitting, stop accepting, join handlers, then flush and
checkpoint — has no window where a half-served request races the final
checkpoint. A SIGTERM handler must *not* call :meth:`GatewayServer.stop`
inline when the signal arrives on the serving thread (``shutdown()``
blocks until ``serve_forever`` exits — a deadlock); spawn a thread, as
``repro serve-http`` does.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError
from .handlers import GatewayApp
from .wire import MAX_BODY_BYTES


class GatewayServer:
    """A running (or startable) gateway: one app bound to one listener.

    Thin lifecycle wrapper every backend returns, so the CLI and tests can
    treat them uniformly: :meth:`serve_forever` blocks, :meth:`stop`
    unblocks it from any *other* thread, and :attr:`port` reports the bound
    port (meaningful with ephemeral ``port=0``).
    """

    def __init__(
        self,
        app: GatewayApp,
        serve: Callable[[], None],
        shutdown: Callable[[], None],
        host: str,
        port: int,
    ) -> None:
        self.app = app
        self._serve = serve
        self._shutdown = shutdown
        self.host = host
        self.port = port

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept and serve requests until :meth:`stop` is called."""
        self._serve()

    def stop(self) -> None:
        """Stop accepting, join in-flight request threads, release the port.

        Call from a different thread than :meth:`serve_forever` (a SIGTERM
        handler on the serving thread must delegate to a helper thread).
        """
        self._shutdown()


def _build_stdlib(app: GatewayApp, host: str, port: int) -> GatewayServer:
    class _Handler(BaseHTTPRequestHandler):
        # Request threads outlive accept-loop shutdown only until
        # server_close(); keep-alive would hold them (and the drain) open
        # indefinitely, so every response closes the connection.
        protocol_version = "HTTP/1.0"
        server_version = "repro-gateway"

        def log_message(self, format: str, *args: object) -> None:
            pass  # request logging is the metrics registry's job

        def _respond(self) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                # Refuse before reading: the error envelope for oversized
                # bodies without buffering them.
                body = b""
                self.rfile.read(length)
            else:
                body = self.rfile.read(length) if length else b""
            status, headers, payload = app.handle(
                self.command, self.path, dict(self.headers.items()), body
            )
            self.send_response(status)
            for name, value in headers.items():
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        do_GET = do_POST = do_PUT = do_DELETE = _respond

    class _Server(ThreadingHTTPServer):
        # The drain contract: server_close() joins every in-flight request
        # thread before returning, so nothing is half-served when the final
        # checkpoints are written.
        daemon_threads = False
        block_on_close = True
        # socketserver's default listen backlog is 5; an open-loop burst
        # must reach the admission queues and earn a 429, not die with a
        # refused connection at the kernel.
        request_queue_size = 128

    try:
        httpd = _Server((host, port), _Handler)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot bind gateway to {host}:{port}: {exc}"
        ) from exc

    def _shutdown() -> None:
        httpd.shutdown()
        httpd.server_close()

    return GatewayServer(
        app,
        serve=httpd.serve_forever,
        shutdown=_shutdown,
        host=host,
        port=httpd.server_address[1],
    )


def _build_starlette(app: GatewayApp, host: str, port: int) -> GatewayServer:
    try:
        import starlette  # noqa: F401
        import uvicorn  # noqa: F401
    except ImportError as exc:
        raise ConfigurationError(
            "the 'starlette' gateway backend needs starlette + uvicorn "
            "installed; the shipped 'stdlib' backend has no dependencies"
        ) from exc
    # The adapter is deliberately unwritten until someone deploys behind an
    # ASGI stack: the registry seam is the deliverable, and it fails loudly
    # instead of half-working.
    raise ConfigurationError(
        "starlette backend adapter not implemented yet; use backend='stdlib'"
    )


BACKENDS: Dict[str, Callable[[GatewayApp, str, int], GatewayServer]] = {
    "stdlib": _build_stdlib,
    "starlette": _build_starlette,
}


def build_server(
    app: GatewayApp, host: Optional[str] = None, port: Optional[int] = None
) -> GatewayServer:
    """Bind ``app`` with the backend its config names; returns the server.

    Host/port default to the app's :class:`~repro.config.GatewayConfig`;
    ``port=0`` binds an ephemeral port (read it back from ``server.port``).
    """
    backend = app.config.backend
    builder = BACKENDS.get(backend)
    if builder is None:
        raise ConfigurationError(
            f"unknown gateway backend {backend!r}; registered: "
            f"{', '.join(sorted(BACKENDS))}"
        )
    return builder(
        app,
        host if host is not None else app.config.host,
        port if port is not None else app.config.port,
    )
