"""Wire schemas: JSON request parsing, response shapes, and error envelopes.

Everything that crosses the HTTP boundary is defined here, framework-free:
the handlers (:mod:`repro.gateway.handlers`) and any server backend
(:mod:`repro.gateway.server`) exchange plain dicts, and this module owns the
translation to and from bytes plus the single place where Python exceptions
become structured JSON error envelopes.

Every error response has the same shape::

    {"error": {"type": "QueueFullError", "message": "...", "status": 429}}

mapped from the library's exception hierarchy: gateway admission errors carry
their own HTTP status (429 with ``Retry-After`` when a tenant queue is full,
503 while draining, 504 past a deadline), domain errors map by type
(:class:`~repro.errors.ConfigurationError` → 400,
:class:`~repro.errors.OracleError` → 409 — a vote on a closed ticket is a
conflict, not a malformed request), and anything unrecognized is a 500 so
bugs never masquerade as client mistakes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

from ..crowd.coordinator import Assignment
from ..core.darwin import QueryRecord
from ..errors import ConfigurationError, OracleError, ReproError

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Bodies above this size are rejected before parsing (64 KiB is orders of
#: magnitude above any legitimate propose/answer/checkpoint payload).
MAX_BODY_BYTES = 64 * 1024


class GatewayError(ReproError):
    """Base class for errors minted at the HTTP boundary.

    Attributes:
        status: The HTTP status code the error maps to.
        retry_after: Optional ``Retry-After`` header value in seconds.
    """

    status = 500

    def __init__(self, message: str, retry_after: Optional[int] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class BadRequestError(GatewayError):
    """Malformed body, unknown field, or out-of-range value (400)."""

    status = 400


class UnauthorizedError(GatewayError):
    """Missing or unrecognized bearer token (401)."""

    status = 401


class ForbiddenError(GatewayError):
    """A valid token that is not entitled to the addressed tenant (403)."""

    status = 403


class NotFoundError(GatewayError):
    """Unknown route or unknown tenant id (404)."""

    status = 404


class MethodNotAllowedError(GatewayError):
    """A known route hit with the wrong HTTP method (405)."""

    status = 405


class QueueFullError(GatewayError):
    """The tenant's bounded admission queue is full — back off (429)."""

    status = 429


class DrainingError(GatewayError):
    """The gateway stopped admitting work (SIGTERM drain in progress, 503)."""

    status = 503


class DeadlineExceededError(GatewayError):
    """The request's deadline expired before its turn on the tenant (504)."""

    status = 504


def parse_json_body(raw: bytes) -> Dict[str, Any]:
    """Decode a request body into a dict; empty bodies parse as ``{}``."""
    if len(raw) > MAX_BODY_BYTES:
        raise BadRequestError(
            f"request body of {len(raw)} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit"
        )
    if not raw.strip():
        return {}
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BadRequestError("request body must be a JSON object")
    return payload


def _require_int(payload: Mapping[str, Any], key: str) -> int:
    value = payload.get(key)
    # bool is an int subclass; reject it explicitly so {"ticket_id": true}
    # fails loudly instead of becoming ticket 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"field {key!r} must be an integer")
    return value


def _require_bool(payload: Mapping[str, Any], key: str) -> bool:
    value = payload.get(key)
    if not isinstance(value, bool):
        raise BadRequestError(f"field {key!r} must be a boolean")
    return value


def _check_fields(payload: Mapping[str, Any], allowed: Tuple[str, ...]) -> None:
    unknown = set(payload) - set(allowed)
    if unknown:
        raise BadRequestError(
            f"unknown field(s): {', '.join(sorted(map(str, unknown)))} "
            f"(allowed: {', '.join(allowed)})"
        )


def propose_request(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a ``POST .../propose`` body: ``{"annotator_id": K}``."""
    _check_fields(payload, ("annotator_id", "deadline_ms"))
    return {"annotator_id": _require_int(payload, "annotator_id")}


def answer_request(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a ``POST .../answer`` body: ticket, annotator, and vote."""
    _check_fields(payload, ("ticket_id", "annotator_id", "is_useful", "deadline_ms"))
    return {
        "ticket_id": _require_int(payload, "ticket_id"),
        "annotator_id": _require_int(payload, "annotator_id"),
        "is_useful": _require_bool(payload, "is_useful"),
    }


def checkpoint_request(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a ``POST .../checkpoint`` body: an optional file stem.

    The name is a single path component — separators and traversal are
    rejected so a client can never write outside the configured checkpoint
    directory.
    """
    _check_fields(payload, ("name", "deadline_ms"))
    name = payload.get("name")
    if name is None:
        return {"name": None}
    if not isinstance(name, str) or not name:
        raise BadRequestError("field 'name' must be a non-empty string")
    if any(sep in name for sep in ("/", "\\", "..")) or name.startswith("."):
        raise BadRequestError(
            f"checkpoint name {name!r} must be a plain file stem "
            f"(no path separators or leading dots)"
        )
    return {"name": name}


def deadline_ms(payload: Mapping[str, Any]) -> Optional[float]:
    """The optional per-request ``deadline_ms`` override, validated."""
    value = payload.get("deadline_ms")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError("field 'deadline_ms' must be a number")
    if value <= 0:
        raise BadRequestError("field 'deadline_ms' must be positive")
    return float(value)


def assignment_to_wire(assignment: Assignment) -> Dict[str, Any]:
    """Serialize an :class:`~repro.crowd.coordinator.Assignment` for clients."""
    return {
        "ticket_id": assignment.ticket_id,
        "annotator_id": assignment.annotator_id,
        "rule": assignment.rendered,
        "grammar": assignment.rule.grammar.name,
        "sample_ids": list(assignment.sample_ids),
        "examples": list(assignment.example_texts),
    }


def record_to_wire(record: QueryRecord) -> Dict[str, Any]:
    """Serialize a committed :class:`~repro.core.darwin.QueryRecord`."""
    return {
        "question_number": record.question_number,
        "rule": record.rule,
        "grammar": record.grammar,
        "answer": record.answer,
        "rule_coverage": record.rule_coverage,
        "covered": record.covered,
        "recall": record.recall,
    }


def error_envelope(exc: BaseException) -> Tuple[int, Dict[str, str], bytes]:
    """Map an exception to ``(status, extra_headers, body_bytes)``.

    The mapping is intentionally a closed list: gateway errors carry their
    status, the two domain families clients can cause are 4xx, and every
    other :class:`~repro.errors.ReproError` or unexpected exception is a 500
    — an internal invariant violation must never be blamed on the caller.
    """
    headers: Dict[str, str] = {}
    if isinstance(exc, GatewayError):
        status = exc.status
        if exc.retry_after is not None:
            headers["Retry-After"] = str(max(1, int(exc.retry_after)))
    elif isinstance(exc, ConfigurationError):
        status = 400
    elif isinstance(exc, OracleError):
        status = 409
    else:
        status = 500
    body = {
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "status": status,
        }
    }
    return status, headers, encode_json(body)


def encode_json(payload: Mapping[str, Any]) -> bytes:
    """Render a response payload as UTF-8 JSON bytes (stable key order)."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
