"""Bearer-token tenant authentication for the HTTP gateway.

Tokens live in a JSON file the operator passes to ``repro serve-http
--auth-tokens``::

    {
      "s3cret-admin": "*",
      "alpha-token": "tenant-0",
      "team-token": ["tenant-1", "tenant-2"]
    }

Each key is a bearer token; the value names the tenant(s) it may address
(``"*"`` for all). Clients send ``Authorization: Bearer <token>``. With no
token file the gateway runs open — the mode every test corpus and local
bench uses. ``/healthz`` and ``/metrics`` are always unauthenticated: load
balancers and scrapers do not carry tenant credentials.

Token comparison goes through :func:`hmac.compare_digest`, so a mismatched
token costs the same time regardless of how many prefix characters matched.
"""

from __future__ import annotations

import hmac
import json
import os
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from .wire import ForbiddenError, UnauthorizedError


class TokenAuthenticator:
    """Checks ``Authorization: Bearer`` headers against a token table.

    Args:
        tokens: Mapping of token → entitlement, where an entitlement is
            ``"*"``, a tenant id, or a list/tuple of tenant ids. ``None``
            disables authentication entirely (every request is allowed).
    """

    def __init__(self, tokens: Optional[Mapping[str, object]] = None) -> None:
        self._entitlements: Optional[Dict[str, Tuple[str, ...]]] = None
        if tokens is None:
            return
        entitlements: Dict[str, Tuple[str, ...]] = {}
        for token, scope in tokens.items():
            if not isinstance(token, str) or not token:
                raise ConfigurationError(
                    "auth token table keys must be non-empty strings"
                )
            if isinstance(scope, str):
                scope_tuple = (scope,)
            elif isinstance(scope, (list, tuple)) and all(
                isinstance(item, str) and item for item in scope
            ) and scope:
                scope_tuple = tuple(scope)
            else:
                raise ConfigurationError(
                    f"auth token entitlement for token ending "
                    f"...{token[-4:]!r} must be '*', a tenant id, or a "
                    f"non-empty list of tenant ids"
                )
            entitlements[token] = scope_tuple
        self._entitlements = entitlements

    @classmethod
    def from_file(cls, path: Optional[str]) -> "TokenAuthenticator":
        """Load a token table from a JSON file (``None`` → auth disabled)."""
        if path is None:
            return cls(None)
        if not os.path.exists(path):
            raise ConfigurationError(f"auth token file not found: {path}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                table = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"auth token file {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(table, dict) or not table:
            raise ConfigurationError(
                f"auth token file {path} must hold a non-empty JSON object "
                f"mapping tokens to tenant entitlements"
            )
        return cls(table)

    @property
    def enabled(self) -> bool:
        """True when a token table is loaded (requests must authenticate)."""
        return self._entitlements is not None

    def _match(self, presented: str) -> Optional[Tuple[str, ...]]:
        # Constant-time comparison against every known token: no early exit
        # on the first prefix mismatch, no dict-lookup timing side channel.
        matched: Optional[Tuple[str, ...]] = None
        for token, scope in (self._entitlements or {}).items():
            if hmac.compare_digest(token, presented):
                matched = scope
        return matched

    def authorize(self, header: Optional[str], tenant_id: str) -> None:
        """Validate an ``Authorization`` header value for ``tenant_id``.

        Raises :class:`~repro.gateway.wire.UnauthorizedError` when the token
        is missing/unknown and :class:`~repro.gateway.wire.ForbiddenError`
        when a valid token is not entitled to the addressed tenant.
        """
        if self._entitlements is None:
            return
        if not header:
            raise UnauthorizedError(
                "missing Authorization header (expected 'Bearer <token>')"
            )
        scheme, _, token = header.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            raise UnauthorizedError(
                "malformed Authorization header (expected 'Bearer <token>')"
            )
        scope = self._match(token.strip())
        if scope is None:
            raise UnauthorizedError("unrecognized bearer token")
        if "*" not in scope and tenant_id not in scope:
            raise ForbiddenError(
                f"token is not entitled to tenant {tenant_id!r}"
            )
