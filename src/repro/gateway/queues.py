"""Bounded per-tenant admission queues over the crowd coordinator.

:class:`~repro.crowd.CrowdCoordinator` is a synchronous state machine and is
deliberately *not* thread-safe, while the gateway's HTTP server handles each
connection on its own thread. This module bridges the two: every tenant gets
one :class:`TenantQueue` — a bounded FIFO drained by a single worker thread
that owns all access to that tenant's coordinator. Request threads submit a
closure and block on its :class:`GatewayJob`; the worker runs jobs strictly
in admission order, so the coordinator sees exactly the serial call sequence
it was built for.

The queue bound is the backpressure mechanism: when a tenant's queue is full,
:meth:`TenantQueue.submit` raises
:class:`~repro.gateway.wire.QueueFullError` immediately (mapped to 429 +
``Retry-After``) instead of letting latency grow without bound. Per-request
deadlines use :func:`time.monotonic`; a job whose deadline passes while still
queued is *cancelled* — the waiting request thread expires it and returns
504, and the worker skips it when it surfaces. A job that began running is
never interrupted (the coordinator has no safe preemption point), so the
deadline bounds queueing delay, which under load is where all the latency
lives.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Optional

from ..obs import get_registry
from .wire import DeadlineExceededError, DrainingError, GatewayError, QueueFullError

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"
_EXPIRED = "expired"


class GatewayJob:
    """One admitted unit of work and its completion state.

    State machine: ``pending`` → ``running`` → ``done``/``failed``, or
    ``pending`` → ``expired`` when the deadline passes first. Transitions are
    guarded by a lock because two threads race over them: the tenant worker
    (begin/finish/fail) and the waiting request thread (expire).
    """

    def __init__(
        self, fn: Callable[[], Any], deadline: Optional[float]
    ) -> None:
        self._fn = fn
        self.deadline = deadline
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._state = _PENDING
        self._value: Any = None
        self._error: Optional[BaseException] = None

    @property
    def state(self) -> str:
        """The job's current lifecycle state (one of the module constants)."""
        with self._lock:
            return self._state

    def _try_begin(self) -> bool:
        """Claim the job for execution; False when expired or already taken."""
        with self._lock:
            if self._state != _PENDING:
                return False
            if self.deadline is not None and time.monotonic() >= self.deadline:
                self._state = _EXPIRED
                self._error = DeadlineExceededError(
                    "request deadline expired while queued"
                )
                self._finished.set()
                return False
            self._state = _RUNNING
            return True

    def execute(self) -> None:
        """Run the job's closure (worker thread only); no-op if not pending."""
        if not self._try_begin():
            return
        try:
            value = self._fn()
        except Exception as exc:
            with self._lock:
                self._state = _FAILED
                self._error = exc
            self._finished.set()
        else:
            with self._lock:
                self._state = _DONE
                self._value = value
            self._finished.set()

    def expire(self) -> bool:
        """Cancel a still-pending job (request thread, on deadline).

        Returns True when this call performed the cancellation; False when
        the worker already claimed the job (it will run to completion).
        """
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _EXPIRED
            self._error = DeadlineExceededError(
                "request deadline expired while queued"
            )
            self._finished.set()
            return True

    def result(self) -> Any:
        """Block until the job settles; the closure's value, or its error.

        Waits until the deadline, then attempts cancellation; a job the
        worker already started is waited out (no preemption), so the value is
        still returned if it completes.
        """
        while not self._finished.is_set():
            if self.deadline is None:
                self._finished.wait()
                break
            remaining = self.deadline - time.monotonic()
            if remaining > 0:
                self._finished.wait(remaining)
            elif not self.expire():
                # Worker owns it now: wait for the real completion.
                self._finished.wait()
        with self._lock:
            if self._error is not None:
                raise self._error
            return self._value


class TenantQueue:
    """One tenant's bounded admission queue and its single worker thread.

    Args:
        tenant_id: Label for thread names and the queue-depth gauge.
        depth: Maximum admitted-but-unfinished jobs; beyond it
            :meth:`submit` raises :class:`QueueFullError`.
        retry_after: Seconds clients are told to back off on 429/503.
    """

    def __init__(
        self, tenant_id: str, depth: int, retry_after: int = 1
    ) -> None:
        self.tenant_id = tenant_id
        self.depth = depth
        self.retry_after = retry_after
        self._jobs: "queue.Queue[GatewayJob]" = queue.Queue(maxsize=depth)
        self._draining = threading.Event()
        self._stopping = threading.Event()
        self._obs_depth = get_registry().gauge(
            "gateway_queue_depth",
            "Jobs admitted and not yet finished, per tenant",
            labels=("tenant",),
        ).labels(tenant=tenant_id)
        self._worker = threading.Thread(
            target=self._run, name=f"gateway-{tenant_id}", daemon=True
        )
        self._worker.start()

    @property
    def draining(self) -> bool:
        """True once the queue stopped admitting new work."""
        return self._draining.is_set()

    def submit(
        self, fn: Callable[[], Any], deadline: Optional[float]
    ) -> GatewayJob:
        """Admit a job, or raise the appropriate backpressure error.

        Raises :class:`DrainingError` (503) once draining began and
        :class:`QueueFullError` (429) when the bounded queue is full; both
        carry ``Retry-After``.
        """
        if self._draining.is_set():
            raise DrainingError(
                f"tenant {self.tenant_id!r} is draining; not admitting work",
                retry_after=self.retry_after,
            )
        job = GatewayJob(fn, deadline)
        try:
            self._jobs.put_nowait(job)
        except queue.Full:
            raise QueueFullError(
                f"tenant {self.tenant_id!r} admission queue is full "
                f"(depth {self.depth}); retry later",
                retry_after=self.retry_after,
            ) from None
        self._obs_depth.set(self._jobs.qsize())
        return job

    def run_now(self, fn: Callable[[], Any], deadline: Optional[float]) -> Any:
        """Submit ``fn`` and block for its result (the handler fast path)."""
        return self.submit(fn, deadline).result()

    def _run(self) -> None:
        while True:
            try:
                job = self._jobs.get(timeout=0.05)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            try:
                job.execute()
            finally:
                self._jobs.task_done()
                self._obs_depth.set(self._jobs.qsize())

    def begin_drain(self) -> None:
        """Stop admitting; already-queued jobs still run to completion."""
        self._draining.set()

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain queued jobs, stop the worker, and join it. Idempotent."""
        self._draining.set()
        self._stopping.set()
        if self._worker.is_alive():
            self._worker.join(timeout)
            if self._worker.is_alive():  # pragma: no cover - stuck job guard
                raise GatewayError(
                    f"tenant {self.tenant_id!r} worker did not stop within "
                    f"{timeout}s; a job is stuck"
                )
