"""Bounded per-tenant admission queues over the crowd coordinator.

:class:`~repro.crowd.CrowdCoordinator` is a synchronous state machine and is
deliberately *not* thread-safe, while the gateway's HTTP server handles each
connection on its own thread. This module bridges the two: every tenant gets
one :class:`TenantQueue` — a bounded FIFO drained by a single worker thread
that owns all access to that tenant's coordinator. Request threads submit a
closure and block on its :class:`GatewayJob`; the worker runs jobs strictly
in admission order, so the coordinator sees exactly the serial call sequence
it was built for.

The queue bound is the backpressure mechanism: when a tenant's queue is full,
:meth:`TenantQueue.submit` raises
:class:`~repro.gateway.wire.QueueFullError` immediately (mapped to 429 +
``Retry-After``) instead of letting latency grow without bound. Per-request
deadlines use :func:`time.monotonic`; a job whose deadline passes while still
queued is *cancelled* — the waiting request thread expires it, returns 504,
and the expiry **reclaims the admission slot immediately** (the job is
removed from the queue, not left for the worker to skip), so a burst of
timed-out requests can never hold the queue full against live traffic. A job
that began running is never interrupted (the coordinator has no safe
preemption point), so the deadline bounds queueing delay, which under load is
where all the latency lives.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..obs import get_registry
from .wire import DeadlineExceededError, DrainingError, GatewayError, QueueFullError

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"
_EXPIRED = "expired"


class GatewayJob:
    """One admitted unit of work and its completion state.

    State machine: ``pending`` → ``running`` → ``done``/``failed``, or
    ``pending`` → ``expired`` when the deadline passes first (and
    ``pending`` → ``failed`` when the queue settles it during drain).
    Transitions are guarded by a lock because two threads race over them:
    the tenant worker (begin/finish/fail) and the waiting request thread
    (expire).
    """

    def __init__(
        self,
        fn: Callable[[], Any],
        deadline: Optional[float],
        on_expire: Optional[Callable[["GatewayJob"], None]] = None,
    ) -> None:
        self._fn = fn
        self.deadline = deadline
        self._on_expire = on_expire
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._state = _PENDING
        self._value: Any = None
        self._error: Optional[BaseException] = None

    @property
    def state(self) -> str:
        """The job's current lifecycle state (one of the module constants)."""
        with self._lock:
            return self._state

    def _try_begin(self) -> bool:
        """Claim the job for execution; False when expired or already taken."""
        with self._lock:
            if self._state != _PENDING:
                return False
            if self.deadline is not None and time.monotonic() >= self.deadline:
                self._state = _EXPIRED
                self._error = DeadlineExceededError(
                    "request deadline expired while queued"
                )
                self._finished.set()
                return False
            self._state = _RUNNING
            return True

    def execute(self) -> None:
        """Run the job's closure (worker thread only); no-op if not pending."""
        if not self._try_begin():
            return
        try:
            value = self._fn()
        except Exception as exc:
            with self._lock:
                self._state = _FAILED
                self._error = exc
            self._finished.set()
        else:
            with self._lock:
                self._state = _DONE
                self._value = value
            self._finished.set()

    def expire(self) -> bool:
        """Cancel a still-pending job (request thread, on deadline).

        Returns True when this call performed the cancellation; False when
        the worker already claimed the job (it will run to completion). On
        cancellation the owning queue's slot is reclaimed immediately via
        the ``on_expire`` callback — invoked *outside* the job lock, because
        the queue takes its own lock to remove the job (worker threads
        acquire queue-then-job, so expire must never hold job-then-queue).
        """
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _EXPIRED
            self._error = DeadlineExceededError(
                "request deadline expired while queued"
            )
            self._finished.set()
        callback = self._on_expire
        if callback is not None:
            callback(self)
        return True

    def settle(self, error: BaseException) -> bool:
        """Fail a still-pending job without running it (queue drain path).

        Returns True when this call settled the job; False when it already
        ran, failed, or expired. Unlike :meth:`expire` this does not notify
        the queue — the queue itself calls it while emptying.
        """
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _FAILED
            self._error = error
            self._finished.set()
            return True

    def result(self) -> Any:
        """Block until the job settles; the closure's value, or its error.

        Waits until the deadline, then attempts cancellation; a job the
        worker already started is waited out (no preemption), so the value is
        still returned if it completes.
        """
        while not self._finished.is_set():
            if self.deadline is None:
                self._finished.wait()
                break
            remaining = self.deadline - time.monotonic()
            if remaining > 0:
                self._finished.wait(remaining)
            elif not self.expire():
                # Worker owns it now: wait for the real completion.
                self._finished.wait()
        with self._lock:
            error = self._error
            if error is None:
                return self._value
        # Re-raise a shallow copy chained to the worker's instance: raising
        # the instance itself would graft this request thread's traceback
        # onto it, clobbering what every other waiter (and the worker-side
        # log) observes. The copy carries args and __dict__ (retry_after,
        # status) and gets a fresh traceback; __cause__ points back at the
        # original with the worker-side traceback intact.
        try:
            rethrown = copy.copy(error)
            rethrown.__traceback__ = None
        except Exception:  # pragma: no cover - exotic uncopyable exception
            raise error from None
        raise rethrown from error


class TenantQueue:
    """One tenant's bounded admission queue and its single worker thread.

    Args:
        tenant_id: Label for thread names and the queue-depth gauge.
        depth: Maximum admitted-but-unstarted jobs; beyond it
            :meth:`submit` raises :class:`QueueFullError`. Expired jobs do
            not count — their slots are reclaimed the moment they expire.
        retry_after: Seconds clients are told to back off on 429/503.
    """

    def __init__(
        self, tenant_id: str, depth: int, retry_after: int = 1
    ) -> None:
        self.tenant_id = tenant_id
        self.depth = depth
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._pending: Deque[GatewayJob] = deque()
        self._draining = threading.Event()
        self._stopping = threading.Event()
        self._obs_depth = get_registry().gauge(
            "gateway_queue_depth",
            "Jobs admitted and not yet started or expired, per tenant",
            labels=("tenant",),
        ).labels(tenant=tenant_id)
        self._worker = threading.Thread(
            target=self._run, name=f"gateway-{tenant_id}", daemon=True
        )
        self._worker.start()

    @property
    def draining(self) -> bool:
        """True once the queue stopped admitting new work."""
        return self._draining.is_set()

    def submit(
        self, fn: Callable[[], Any], deadline: Optional[float]
    ) -> GatewayJob:
        """Admit a job, or raise the appropriate backpressure error.

        Raises :class:`DrainingError` (503) once draining began and
        :class:`QueueFullError` (429) when the bounded queue is full; both
        carry ``Retry-After``. Only live (unexpired, unstarted) jobs occupy
        slots, so a storm of already-expired requests cannot starve fresh
        traffic.
        """
        if self._draining.is_set():
            raise DrainingError(
                f"tenant {self.tenant_id!r} is draining; not admitting work",
                retry_after=self.retry_after,
            )
        job = GatewayJob(fn, deadline, on_expire=self._reclaim)
        with self._not_empty:
            if self._draining.is_set() or self._stopping.is_set():
                # Re-checked under the lock: a drain that began after the
                # unlocked check above must not admit a job the (possibly
                # already exited) worker will never run.
                raise DrainingError(
                    f"tenant {self.tenant_id!r} is draining; not admitting "
                    f"work",
                    retry_after=self.retry_after,
                )
            if len(self._pending) >= self.depth:
                raise QueueFullError(
                    f"tenant {self.tenant_id!r} admission queue is full "
                    f"(depth {self.depth}); retry later",
                    retry_after=self.retry_after,
                )
            self._pending.append(job)
            self._obs_depth.set(len(self._pending))
            self._not_empty.notify()
        return job

    def run_now(self, fn: Callable[[], Any], deadline: Optional[float]) -> Any:
        """Submit ``fn`` and block for its result (the handler fast path)."""
        return self.submit(fn, deadline).result()

    def _reclaim(self, job: GatewayJob) -> None:
        """Drop an expired job from the queue, freeing its slot (expire path)."""
        with self._not_empty:
            try:
                self._pending.remove(job)
            except ValueError:
                return  # the worker claimed it first; nothing to reclaim
            self._obs_depth.set(len(self._pending))

    def _run(self) -> None:
        while True:
            with self._not_empty:
                while not self._pending:
                    if self._stopping.is_set():
                        return
                    self._not_empty.wait(timeout=0.05)
                job = self._pending.popleft()
                self._obs_depth.set(len(self._pending))
            job.execute()

    def begin_drain(self) -> None:
        """Stop admitting; already-queued jobs still run to completion."""
        self._draining.set()

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain queued jobs, stop the worker, and join it. Idempotent.

        Raises :class:`GatewayError` when the worker is wedged on a running
        job past ``timeout`` — but only *after* settling every still-pending
        job with a :class:`DrainingError`, so request threads blocked in
        :meth:`GatewayJob.result` (including ``deadline=None`` waiters)
        always unblock instead of hanging on a queue nobody will ever drain.
        """
        self._draining.set()
        with self._not_empty:
            self._stopping.set()
            self._not_empty.notify_all()
        stuck = False
        if self._worker.is_alive():
            self._worker.join(timeout)
            stuck = self._worker.is_alive()
        leftovers: List[GatewayJob] = []
        with self._not_empty:
            if self._pending:
                leftovers = list(self._pending)
                self._pending.clear()
                self._obs_depth.set(0)
        for job in leftovers:
            job.settle(
                DrainingError(
                    f"tenant {self.tenant_id!r} queue closed before this job "
                    f"could run",
                    retry_after=self.retry_after,
                )
            )
        if stuck:
            raise GatewayError(
                f"tenant {self.tenant_id!r} worker did not stop within "
                f"{timeout}s; a job is stuck"
            )
