"""Framework-free request handling: routes, tenant ops, and the drain path.

:class:`GatewayApp` is the whole HTTP surface expressed as one pure-ish
function, ``handle(method, path, headers, body) -> (status, headers, body)``.
Server backends (:mod:`repro.gateway.server`) only move bytes; everything a
request *means* — routing, auth, admission, deadline bookkeeping, error
envelopes, metrics — happens here, which is what makes the app testable
without ever opening a socket and keeps alternate backends (starlette) thin.

Routes::

    GET  /healthz                      liveness + drain state (no auth)
    GET  /metrics                      Prometheus exposition     (no auth)
    POST /tenants/{id}/propose        -> assignment or null
    POST /tenants/{id}/answer         -> vote, maybe a committed record
    POST /tenants/{id}/checkpoint     -> engine checkpoint on disk
    POST /tenants/{id}/debug/sleep     worker stall (allow_debug_ops only)

Tenant operations are closures submitted to the tenant's
:class:`~repro.gateway.queues.TenantQueue`, so the non-thread-safe
coordinator only ever runs on its single worker thread; the HTTP thread
blocks on the job (bounded by the request deadline).

Graceful drain (SIGTERM): :meth:`GatewayApp.begin_drain` flips every queue
to rejecting (503 + ``Retry-After``) while queued work keeps running;
:meth:`GatewayApp.finish_drain` then joins the workers, flushes every
coordinator's deferred batch, writes one final checkpoint per started
tenant, and snapshots the metrics registry — the state a replacement
process needs to resume exactly where this one stopped.
"""

from __future__ import annotations

import re
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Tuple

from .. import obs
from ..config import CrowdConfig, GatewayConfig
from ..errors import ReproError
from ..obs import get_registry
from ..serving.pool import Tenant, TenantPool
from . import wire
from .auth import TokenAuthenticator
from .queues import TenantQueue
from .wire import (
    BadRequestError,
    DrainingError,
    MethodNotAllowedError,
    NotFoundError,
)

Response = Tuple[int, Dict[str, str], bytes]

_TENANT_ROUTE = re.compile(
    r"^/tenants/(?P<tenant_id>[A-Za-z0-9._-]+)/(?P<op>[a-z/]+)$"
)


class GatewayApp:
    """The gateway's request handler and drain controller.

    Args:
        pool: The tenant pool to serve. Tenants must be spawned before the
            app sees traffic; unknown ids answer 404.
        config: Gateway parameters (:class:`~repro.config.GatewayConfig`).
        crowd_config: Crowd parameters for each tenant's coordinator.
        authenticator: Bearer-token table; defaults to one built from
            ``config.auth_tokens_path``.
    """

    def __init__(
        self,
        pool: TenantPool,
        config: Optional[GatewayConfig] = None,
        crowd_config: Optional[CrowdConfig] = None,
        authenticator: Optional[TokenAuthenticator] = None,
    ) -> None:
        self.pool = pool
        self.config = config or GatewayConfig()
        self.crowd_config = crowd_config or CrowdConfig()
        self.auth = (
            authenticator
            if authenticator is not None
            else TokenAuthenticator.from_file(self.config.auth_tokens_path)
        )
        self._queues: Dict[str, TenantQueue] = {}
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._drain_paths: Dict[str, str] = {}
        for tenant_id, tenant in self.pool.tenants.items():
            if not tenant.started:
                tenant.start()
            # Bind the long-lived coordinator now, on the construction
            # thread, so the worker threads only ever *use* it.
            tenant.coordinator(self.crowd_config)
            self._queues[tenant_id] = TenantQueue(
                tenant_id,
                depth=self.config.queue_depth,
                retry_after=self.config.retry_after_s,
            )
        # Telemetry (repro.obs): families resolved once; children per
        # (route, status) resolve lazily on first use and are cached by the
        # registry, no-ops under the NullRegistry.
        registry = get_registry()
        self._obs_requests = registry.counter(
            "gateway_requests_total",
            "HTTP requests by route and status code",
            labels=("route", "status"),
        )
        self._obs_latency = registry.histogram(
            "gateway_request_seconds",
            "End-to-end request latency by route",
            labels=("route",),
        )
        self._obs_rejected = registry.counter(
            "gateway_rejected_total",
            "Requests refused at admission, by reason",
            labels=("reason",),
        )

    # ------------------------------------------------------------------ routing
    def handle(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> Response:
        """Serve one request; never raises — errors become JSON envelopes."""
        start = time.perf_counter()
        route = "unknown"
        try:
            route, response = self._dispatch(method, path, headers, body)
        except Exception as exc:  # noqa: BLE001 - boundary: everything maps
            status, extra, payload = wire.error_envelope(exc)
            if status in (429, 503, 504):
                reason = {429: "queue_full", 503: "draining", 504: "deadline"}
                self._obs_rejected.labels(reason=reason[status]).inc()
            headers_out = {"Content-Type": wire.JSON_CONTENT_TYPE}
            headers_out.update(extra)
            response = (status, headers_out, payload)
        self._obs_requests.labels(route=route, status=str(response[0])).inc()
        self._obs_latency.labels(route=route).observe(
            time.perf_counter() - start
        )
        return response

    def _dispatch(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> Tuple[str, Response]:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise MethodNotAllowedError("/healthz supports GET only")
            return "healthz", self._healthz()
        if path == "/metrics":
            if method != "GET":
                raise MethodNotAllowedError("/metrics supports GET only")
            return "metrics", self._metrics()
        match = _TENANT_ROUTE.match(path)
        if match is None:
            raise NotFoundError(f"no route for {path!r}")
        op = match.group("op")
        ops: Dict[str, Callable[[Tenant, Mapping[str, object]], Dict[str, object]]] = {
            "propose": self._op_propose,
            "answer": self._op_answer,
            "checkpoint": self._op_checkpoint,
        }
        if self.config.allow_debug_ops:
            ops["debug/sleep"] = self._op_debug_sleep
        handler = ops.get(op)
        if handler is None:
            raise NotFoundError(f"no tenant operation {op!r}")
        route = f"tenants/{op}"
        if method != "POST":
            raise MethodNotAllowedError(f"{path} supports POST only")
        tenant_id = match.group("tenant_id")
        self.auth.authorize(_header(headers, "authorization"), tenant_id)
        if self._draining.is_set():
            raise DrainingError(
                "gateway is draining; not admitting work",
                retry_after=self.config.retry_after_s,
            )
        tenant = self.pool.tenants.get(tenant_id)
        queue = self._queues.get(tenant_id)
        if tenant is None or queue is None:
            raise NotFoundError(
                f"no tenant {tenant_id!r}; live tenants: "
                f"{', '.join(sorted(self._queues)) or '(none)'}"
            )
        payload = wire.parse_json_body(body)
        deadline_ms = wire.deadline_ms(payload) or self.config.deadline_ms
        deadline = time.monotonic() + deadline_ms / 1000.0
        result = queue.submit(lambda: handler(tenant, payload), deadline).result()
        return route, _json_response(200, result)

    # ------------------------------------------------------------ plain routes
    def _healthz(self) -> Response:
        status = "draining" if self._draining.is_set() else "ok"
        return _json_response(
            200 if status == "ok" else 503,
            {
                "status": status,
                "tenants": sorted(self._queues),
                "auth": self.auth.enabled,
            },
            extra_headers=(
                {"Retry-After": str(self.config.retry_after_s)}
                if status == "draining"
                else None
            ),
        )

    def _metrics(self) -> Response:
        text = get_registry().render_prometheus()
        return (
            200,
            {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
            text.encode("utf-8"),
        )

    # -------------------------------------------------- tenant ops (worker thread)
    def _op_propose(
        self, tenant: Tenant, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        request = wire.propose_request(payload)
        coordinator = tenant.coordinator(self.crowd_config)
        assignment = coordinator.request_question(request["annotator_id"])
        return {
            "tenant": tenant.tenant_id,
            "assignment": (
                wire.assignment_to_wire(assignment) if assignment else None
            ),
            "done": coordinator.is_done,
        }

    def _op_answer(
        self, tenant: Tenant, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        request = wire.answer_request(payload)
        coordinator = tenant.coordinator(self.crowd_config)
        record = coordinator.submit_vote(
            request["ticket_id"], request["annotator_id"], request["is_useful"]
        )
        return {
            "tenant": tenant.tenant_id,
            "committed": record is not None,
            "record": wire.record_to_wire(record) if record else None,
            "questions_committed": coordinator.questions_committed,
            "done": coordinator.is_done,
        }

    def _op_checkpoint(
        self, tenant: Tenant, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        request = wire.checkpoint_request(payload)
        stem = request["name"] or f"{tenant.tenant_id}"
        path = self._checkpoint_path(f"{stem}.npz")
        tenant.flush()
        saved = tenant.save(str(path))
        coordinator = tenant.coordinator(self.crowd_config)
        return {
            "tenant": tenant.tenant_id,
            "path": saved,
            "questions_committed": coordinator.questions_committed,
        }

    def _op_debug_sleep(
        self, tenant: Tenant, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        seconds = payload.get("seconds", 0.1)
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
            raise BadRequestError("field 'seconds' must be a number")
        if not 0 <= float(seconds) <= 30:
            raise BadRequestError("field 'seconds' must be in [0, 30]")
        time.sleep(float(seconds))
        return {"tenant": tenant.tenant_id, "slept": float(seconds)}

    def _checkpoint_path(self, filename: str) -> Path:
        directory = Path(self.config.checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        return directory / filename

    # -------------------------------------------------------------------- drain
    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` ran."""
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop admitting work everywhere; queued jobs keep running."""
        self._draining.set()
        for queue in self._queues.values():
            queue.begin_drain()

    def finish_drain(
        self, metrics_snapshot_path: Optional[str] = None
    ) -> Dict[str, str]:
        """Complete the drain: join workers, flush, checkpoint, snapshot.

        Returns the final checkpoint paths keyed by tenant id. Idempotent —
        a second call returns the already-written paths without re-saving.
        """
        self.begin_drain()
        if self._drained.is_set():
            return dict(self._drain_paths)
        for queue in self._queues.values():
            queue.close(timeout=60.0)
        paths: Dict[str, str] = {}
        for tenant_id in sorted(self._queues):
            tenant = self.pool.tenants.get(tenant_id)
            if tenant is None or not tenant.started:
                continue
            try:
                tenant.flush()
                path = self._checkpoint_path(f"{tenant_id}-final.npz")
                paths[tenant_id] = tenant.save(str(path))
            except ReproError:
                # A tenant that cannot checkpoint must not block the others'
                # drain; its absence from the returned map is the signal.
                continue
        if metrics_snapshot_path is not None:
            obs.write_snapshot(metrics_snapshot_path)
        self._drain_paths = paths
        self._drained.set()
        return dict(paths)


def _header(headers: Mapping[str, str], name: str) -> Optional[str]:
    """Case-insensitive header lookup over a plain mapping."""
    for key, value in headers.items():
        if key.lower() == name:
            return value
    return None


def _json_response(
    status: int,
    payload: Mapping[str, object],
    extra_headers: Optional[Mapping[str, str]] = None,
) -> Response:
    headers = {"Content-Type": wire.JSON_CONTENT_TYPE}
    if extra_headers:
        headers.update(extra_headers)
    return status, headers, wire.encode_json(payload)
