"""Framework-free request handling: routes, backends, and the drain path.

:class:`GatewayApp` is the whole HTTP surface expressed as one pure-ish
function, ``handle(method, path, headers, body) -> (status, headers, body)``.
Server backends (:mod:`repro.gateway.server`) only move bytes; everything a
request *means* — routing, auth, admission, deadline bookkeeping, error
envelopes, metrics — happens here, which is what makes the app testable
without ever opening a socket and keeps alternate backends (starlette) thin.

Where the tenants *live* is a second, orthogonal axis — the serving
backend. :class:`LocalPoolBackend` hosts them in-process on a
:class:`~repro.serving.pool.TenantPool` (the classic single-process
gateway); :class:`FleetBackend` routes every operation over pipe RPC to a
:class:`~repro.fleet.supervisor.FleetSupervisor`'s worker processes. Both
run the same operation bodies (:mod:`repro.gateway.ops`), so the wire shape
is identical and the choice is pure deployment (``repro serve-http
--workers N``).

Routes::

    GET  /healthz                      liveness + drain state (no auth)
    GET  /metrics                      Prometheus exposition     (no auth)
    POST /tenants/{id}/propose        -> assignment or null
    POST /tenants/{id}/answer         -> vote, maybe a committed record
    POST /tenants/{id}/checkpoint     -> engine checkpoint on disk
    POST /tenants/{id}/migrate         move tenant between workers (fleet)
    POST /tenants/{id}/debug/sleep     worker stall (allow_debug_ops only)

Tenant operations are closures submitted to the tenant's
:class:`~repro.gateway.queues.TenantQueue`, so each tenant's work is
serialized on its single queue-worker thread whichever backend runs the
body; the HTTP thread blocks on the job (bounded by the request deadline).

Graceful drain (SIGTERM): :meth:`GatewayApp.begin_drain` flips every queue
to rejecting (503 + ``Retry-After``) while queued work keeps running;
:meth:`GatewayApp.finish_drain` then joins the workers, writes one final
checkpoint per tenant through the backend, and snapshots the metrics
registry — the state a replacement process needs to resume exactly where
this one stopped.
"""

from __future__ import annotations

import re
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .. import obs
from ..config import CrowdConfig, GatewayConfig
from ..errors import ReproError
from ..obs import get_registry
from ..obs.prometheus import render_snapshot
from ..serving.pool import TenantPool
from . import ops as gateway_ops
from . import wire
from .auth import TokenAuthenticator
from .queues import TenantQueue
from .wire import (
    BadRequestError,
    DrainingError,
    MethodNotAllowedError,
    NotFoundError,
)

Response = Tuple[int, Dict[str, str], bytes]

_TENANT_ROUTE = re.compile(
    r"^/tenants/(?P<tenant_id>[A-Za-z0-9._-]+)/(?P<op>[a-z/]+)$"
)


class LocalPoolBackend:
    """Tenants hosted in this process on a :class:`TenantPool`.

    Starting each tenant and binding its long-lived coordinator happens
    here, on the construction thread, so the queue-worker threads only
    ever *use* the coordinator.
    """

    kind = "local"
    supports_migration = False

    def __init__(
        self,
        pool: TenantPool,
        crowd_config: CrowdConfig,
        checkpoint_dir: str,
    ) -> None:
        self.pool = pool
        self.crowd_config = crowd_config
        self.checkpoint_dir = checkpoint_dir
        for tenant in self.pool.tenants.values():
            if not tenant.started:
                tenant.start()
            tenant.coordinator(self.crowd_config)

    def tenant_ids(self) -> List[str]:
        return sorted(self.pool.tenants)

    def call(
        self, tenant_id: str, op: str, payload: Mapping[str, Any]
    ) -> Dict[str, Any]:
        tenant = self.pool.tenants.get(tenant_id)
        if tenant is None:
            raise NotFoundError(
                f"no tenant {tenant_id!r}; live tenants: "
                f"{', '.join(self.tenant_ids()) or '(none)'}"
            )
        if op == "propose":
            return gateway_ops.op_propose(tenant, self.crowd_config, payload)
        if op == "answer":
            return gateway_ops.op_answer(tenant, self.crowd_config, payload)
        if op == "checkpoint":
            return gateway_ops.op_checkpoint(
                tenant, self.crowd_config, payload, self.checkpoint_dir
            )
        if op == "debug/sleep":
            return gateway_ops.op_debug_sleep(tenant, payload)
        raise NotFoundError(f"no tenant operation {op!r}")

    def describe(self) -> Dict[str, Any]:
        return {"backend": self.kind}

    def merge_metrics(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        return snapshot

    def drain(self, checkpoint_dir: str) -> Dict[str, str]:
        directory = Path(checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, str] = {}
        for tenant_id in self.tenant_ids():
            tenant = self.pool.tenants[tenant_id]
            if not tenant.started:
                continue
            try:
                tenant.flush()
                paths[tenant_id] = tenant.save(
                    str(directory / f"{tenant_id}-final.npz")
                )
            except ReproError:
                # A tenant that cannot checkpoint must not block the others'
                # drain; its absence from the returned map is the signal.
                continue
        return paths

    def close(self) -> None:
        if not self.pool.closed:
            self.pool.close()


class FleetBackend:
    """Tenants hosted across a :class:`FleetSupervisor`'s worker processes.

    Every operation crosses the pipe RPC to the tenant's worker; the
    supervisor transparently respawns a crashed worker (restoring its
    tenants from their autosaves) and retries once, so a worker crash
    costs the caller latency, not a 5xx. ``migrate`` is the extra verb
    this backend adds: checkpoint-and-evict on the source worker, adopt on
    the target, reroute.
    """

    kind = "fleet"
    supports_migration = True

    def __init__(self, supervisor, checkpoint_dir: str) -> None:
        self.supervisor = supervisor
        self.checkpoint_dir = checkpoint_dir
        # The queues (and /healthz) enumerate tenants at construction; the
        # fleet spawns them before the app sees traffic, like the pool.
        self.pool = None

    def tenant_ids(self) -> List[str]:
        return self.supervisor.tenant_ids()

    def call(
        self, tenant_id: str, op: str, payload: Mapping[str, Any]
    ) -> Dict[str, Any]:
        if op == "migrate":
            target = payload.get("worker")
            if target is not None and (
                isinstance(target, bool) or not isinstance(target, int)
            ):
                raise BadRequestError("field 'worker' must be an integer")
            return self.supervisor.migrate(tenant_id, target=target)
        return self.supervisor.call_tenant(
            tenant_id,
            op,
            body=payload,
            checkpoint_dir=self.checkpoint_dir if op == "checkpoint" else None,
        )

    def describe(self) -> Dict[str, Any]:
        return {"backend": self.kind, "workers": self.supervisor.status()}

    def merge_metrics(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Fold every worker's registry into the gateway's snapshot.

        Worker series get an injected ``worker`` label; families are merged
        by name so the exposition declares each ``# TYPE`` exactly once (a
        family re-declaration resets samples in strict parsers, including
        the repo's own).
        """
        merged: Dict[str, Any] = {
            name: {**family, "series": list(family.get("series", []))}
            for name, family in (snapshot.get("metrics") or {}).items()
        }
        enabled = bool(snapshot.get("enabled"))
        for worker, metrics in sorted(
            self.supervisor.metrics_snapshots().items()
        ):
            labeled = _label_snapshot(metrics, worker=worker)
            enabled = enabled or bool(labeled["metrics"])
            for name, family in labeled["metrics"].items():
                if name in merged:
                    merged[name]["series"].extend(family["series"])
                else:
                    merged[name] = family
        return {"enabled": enabled, "metrics": merged}

    def drain(self, checkpoint_dir: str) -> Dict[str, str]:
        return self.supervisor.drain(checkpoint_dir)

    def close(self) -> None:
        self.supervisor.close()


def _label_snapshot(
    snapshot: Mapping[str, Any], **extra_labels: str
) -> Dict[str, Any]:
    """A copy of a registry snapshot with ``extra_labels`` on every series.

    The gateway's merged ``/metrics`` uses this to keep worker samples
    distinguishable from the supervisor's own (and from each other) without
    the workers knowing their fleet position.
    """
    metrics: Dict[str, Any] = {}
    for name, family in (snapshot.get("metrics") or {}).items():
        series = [
            {**entry, "labels": {**extra_labels, **entry.get("labels", {})}}
            for entry in family.get("series", [])
        ]
        metrics[name] = {**family, "series": series}
    return {"enabled": snapshot.get("enabled", True), "metrics": metrics}


class GatewayApp:
    """The gateway's request handler and drain controller.

    Args:
        pool: The tenant pool to serve in-process. Tenants must be spawned
            before the app sees traffic; unknown ids answer 404. Mutually
            exclusive with ``backend``.
        config: Gateway parameters (:class:`~repro.config.GatewayConfig`).
        crowd_config: Crowd parameters for each tenant's coordinator.
        authenticator: Bearer-token table; defaults to one built from
            ``config.auth_tokens_path``.
        backend: A pre-built serving backend (:class:`FleetBackend` for the
            multi-process fleet); when omitted, ``pool`` is wrapped in a
            :class:`LocalPoolBackend`.
    """

    def __init__(
        self,
        pool: Optional[TenantPool] = None,
        config: Optional[GatewayConfig] = None,
        crowd_config: Optional[CrowdConfig] = None,
        authenticator: Optional[TokenAuthenticator] = None,
        backend=None,
    ) -> None:
        self.config = config or GatewayConfig()
        self.crowd_config = crowd_config or CrowdConfig()
        if (backend is None) == (pool is None):
            raise BadRequestError(
                "GatewayApp needs exactly one of pool= or backend="
            )
        self.backend = backend or LocalPoolBackend(
            pool, self.crowd_config, self.config.checkpoint_dir
        )
        self.pool = getattr(self.backend, "pool", None)
        self.auth = (
            authenticator
            if authenticator is not None
            else TokenAuthenticator.from_file(self.config.auth_tokens_path)
        )
        self._queues: Dict[str, TenantQueue] = {}
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._drain_paths: Dict[str, str] = {}
        for tenant_id in self.backend.tenant_ids():
            self._queues[tenant_id] = TenantQueue(
                tenant_id,
                depth=self.config.queue_depth,
                retry_after=self.config.retry_after_s,
            )
        # Telemetry (repro.obs): families resolved once; children per
        # (route, status) resolve lazily on first use and are cached by the
        # registry, no-ops under the NullRegistry.
        registry = get_registry()
        self._obs_requests = registry.counter(
            "gateway_requests_total",
            "HTTP requests by route and status code",
            labels=("route", "status"),
        )
        self._obs_latency = registry.histogram(
            "gateway_request_seconds",
            "End-to-end request latency by route",
            labels=("route",),
        )
        self._obs_rejected = registry.counter(
            "gateway_rejected_total",
            "Requests refused at admission, by reason",
            labels=("reason",),
        )

    # ------------------------------------------------------------------ routing
    def handle(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> Response:
        """Serve one request; never raises — errors become JSON envelopes."""
        start = time.perf_counter()
        route = "unknown"
        try:
            route, response = self._dispatch(method, path, headers, body)
        except Exception as exc:  # noqa: BLE001 - boundary: everything maps
            status, extra, payload = wire.error_envelope(exc)
            if status in (429, 503, 504):
                reason = {429: "queue_full", 503: "draining", 504: "deadline"}
                self._obs_rejected.labels(reason=reason[status]).inc()
            headers_out = {"Content-Type": wire.JSON_CONTENT_TYPE}
            headers_out.update(extra)
            response = (status, headers_out, payload)
        self._obs_requests.labels(route=route, status=str(response[0])).inc()
        self._obs_latency.labels(route=route).observe(
            time.perf_counter() - start
        )
        return response

    def _dispatch(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> Tuple[str, Response]:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise MethodNotAllowedError("/healthz supports GET only")
            return "healthz", self._healthz()
        if path == "/metrics":
            if method != "GET":
                raise MethodNotAllowedError("/metrics supports GET only")
            return "metrics", self._metrics()
        match = _TENANT_ROUTE.match(path)
        if match is None:
            raise NotFoundError(f"no route for {path!r}")
        op = match.group("op")
        ops = {"propose", "answer", "checkpoint"}
        if self.config.allow_debug_ops:
            ops.add("debug/sleep")
        if self.backend.supports_migration:
            ops.add("migrate")
        if op not in ops:
            raise NotFoundError(f"no tenant operation {op!r}")
        route = f"tenants/{op}"
        if method != "POST":
            raise MethodNotAllowedError(f"{path} supports POST only")
        tenant_id = match.group("tenant_id")
        self.auth.authorize(_header(headers, "authorization"), tenant_id)
        if self._draining.is_set():
            raise DrainingError(
                "gateway is draining; not admitting work",
                retry_after=self.config.retry_after_s,
            )
        queue = self._queues.get(tenant_id)
        if queue is None:
            raise NotFoundError(
                f"no tenant {tenant_id!r}; live tenants: "
                f"{', '.join(sorted(self._queues)) or '(none)'}"
            )
        payload = wire.parse_json_body(body)
        deadline_ms = wire.deadline_ms(payload) or self.config.deadline_ms
        deadline = time.monotonic() + deadline_ms / 1000.0
        result = queue.submit(
            lambda: self.backend.call(tenant_id, op, payload), deadline
        ).result()
        return route, _json_response(200, result)

    # ------------------------------------------------------------ plain routes
    def _healthz(self) -> Response:
        status = "draining" if self._draining.is_set() else "ok"
        body: Dict[str, Any] = {
            "status": status,
            "tenants": sorted(self._queues),
            "auth": self.auth.enabled,
        }
        body.update(self.backend.describe())
        return _json_response(
            200 if status == "ok" else 503,
            body,
            extra_headers=(
                {"Retry-After": str(self.config.retry_after_s)}
                if status == "draining"
                else None
            ),
        )

    def _metrics(self) -> Response:
        merged = self.backend.merge_metrics(get_registry().snapshot())
        text = render_snapshot(merged)
        return (
            200,
            {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
            text.encode("utf-8"),
        )

    # -------------------------------------------------------------------- drain
    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` ran."""
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop admitting work everywhere; queued jobs keep running."""
        self._draining.set()
        for queue in self._queues.values():
            queue.begin_drain()

    def finish_drain(
        self, metrics_snapshot_path: Optional[str] = None
    ) -> Dict[str, str]:
        """Complete the drain: join workers, flush, checkpoint, snapshot.

        Returns the final checkpoint paths keyed by tenant id. Idempotent —
        a second call returns the already-written paths without re-saving.
        """
        self.begin_drain()
        if self._drained.is_set():
            return dict(self._drain_paths)
        for queue in self._queues.values():
            queue.close(timeout=60.0)
        paths = self.backend.drain(self.config.checkpoint_dir)
        if metrics_snapshot_path is not None:
            obs.write_snapshot(metrics_snapshot_path)
        self._drain_paths = dict(paths)
        self._drained.set()
        return dict(paths)


def _header(headers: Mapping[str, str], name: str) -> Optional[str]:
    """Case-insensitive header lookup over a plain mapping."""
    for key, value in headers.items():
        if key.lower() == name:
            return value
    return None


def _json_response(
    status: int,
    payload: Mapping[str, object],
    extra_headers: Optional[Mapping[str, str]] = None,
) -> Response:
    headers = {"Content-Type": wire.JSON_CONTENT_TYPE}
    if extra_headers:
        headers.update(extra_headers)
    return status, headers, wire.encode_json(payload)
