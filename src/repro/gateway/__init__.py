"""`repro.gateway` — the HTTP/JSON front door over :mod:`repro.serving`.

Layering, innermost out:

* :mod:`~repro.gateway.wire` — request/response schemas and the error
  envelope; nothing here knows about HTTP servers or threads.
* :mod:`~repro.gateway.auth` — bearer-token tenant entitlements.
* :mod:`~repro.gateway.queues` — bounded per-tenant admission queues, each
  drained by the single worker thread that owns that tenant's (not
  thread-safe) :class:`~repro.crowd.CrowdCoordinator`. Backpressure (429)
  and deadline cancellation (504) live here.
* :mod:`~repro.gateway.ops` — the tenant operation bodies, shared between
  the in-process backend and the fleet's worker processes.
* :mod:`~repro.gateway.handlers` — :class:`GatewayApp`, the full HTTP
  surface as one ``handle()`` function plus the SIGTERM drain path, over a
  pluggable serving backend (:class:`LocalPoolBackend` in-process,
  :class:`FleetBackend` routing to :mod:`repro.fleet` workers).
* :mod:`~repro.gateway.server` — byte-moving backends behind a string
  registry (``stdlib`` ships; ``starlette`` is optional, never required).

Typical embedding (the ``repro serve-http`` CLI does exactly this)::

    from repro import obs
    from repro.gateway import GatewayApp, build_server

    obs.enable()                     # instruments bind at construction time
    pool.spawn_many(4)
    app = GatewayApp(pool, config=GatewayConfig(port=0))
    server = build_server(app)
    server.serve_forever()           # SIGTERM → begin_drain + stop (threaded)
    app.finish_drain("final-metrics.json")
"""

from ..config import GatewayConfig
from .auth import TokenAuthenticator
from .handlers import FleetBackend, GatewayApp, LocalPoolBackend
from .queues import GatewayJob, TenantQueue
from .server import BACKENDS, GatewayServer, build_server
from .wire import (
    BadRequestError,
    DeadlineExceededError,
    DrainingError,
    ForbiddenError,
    GatewayError,
    MethodNotAllowedError,
    NotFoundError,
    QueueFullError,
    UnauthorizedError,
    error_envelope,
)

__all__ = [
    "BACKENDS",
    "BadRequestError",
    "DeadlineExceededError",
    "DrainingError",
    "FleetBackend",
    "ForbiddenError",
    "GatewayApp",
    "GatewayConfig",
    "GatewayError",
    "GatewayJob",
    "GatewayServer",
    "LocalPoolBackend",
    "MethodNotAllowedError",
    "NotFoundError",
    "QueueFullError",
    "TenantQueue",
    "TokenAuthenticator",
    "UnauthorizedError",
    "build_server",
    "error_envelope",
]
