"""Tenant operation bodies, shared between serving backends.

The gateway exposes four per-tenant operations (propose / answer /
checkpoint / debug-sleep). Their *bodies* — validate the payload, drive the
tenant's coordinator, shape the response dict — are identical whether the
tenant lives in the gateway process (:class:`~repro.gateway.handlers.
LocalPoolBackend`) or in a fleet worker process reached over RPC
(:mod:`repro.fleet.worker`). This module is that single definition; both
callers pass a live :class:`~repro.serving.pool.Tenant` and get back a
JSON-able dict, so the wire shape cannot drift between the single-process
and fleet deployments.

Every body runs on whatever thread serializes that tenant's work — the
gateway's per-tenant queue worker locally, the worker process's RPC loop in
the fleet — so none of them lock.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Mapping, Optional

from ..config import CrowdConfig
from ..serving.pool import Tenant
from . import wire
from .wire import BadRequestError


def op_propose(
    tenant: Tenant, crowd_config: CrowdConfig, payload: Mapping[str, object]
) -> Dict[str, object]:
    """``POST .../propose`` — hand the annotator a question (or null)."""
    request = wire.propose_request(payload)
    coordinator = tenant.coordinator(crowd_config)
    assignment = coordinator.request_question(request["annotator_id"])
    return {
        "tenant": tenant.tenant_id,
        "assignment": (
            wire.assignment_to_wire(assignment) if assignment else None
        ),
        "done": coordinator.is_done,
    }


def op_answer(
    tenant: Tenant, crowd_config: CrowdConfig, payload: Mapping[str, object]
) -> Dict[str, object]:
    """``POST .../answer`` — record a vote; maybe commit the question."""
    request = wire.answer_request(payload)
    coordinator = tenant.coordinator(crowd_config)
    record = coordinator.submit_vote(
        request["ticket_id"], request["annotator_id"], request["is_useful"]
    )
    return {
        "tenant": tenant.tenant_id,
        "committed": record is not None,
        "record": wire.record_to_wire(record) if record else None,
        "questions_committed": coordinator.questions_committed,
        "done": coordinator.is_done,
    }


def op_checkpoint(
    tenant: Tenant,
    crowd_config: CrowdConfig,
    payload: Mapping[str, object],
    checkpoint_dir: str,
) -> Dict[str, object]:
    """``POST .../checkpoint`` — flush and save the tenant's engine."""
    request = wire.checkpoint_request(payload)
    stem = request["name"] or f"{tenant.tenant_id}"
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    tenant.flush()
    saved = tenant.save(str(directory / f"{stem}.npz"))
    coordinator = tenant.coordinator(crowd_config)
    return {
        "tenant": tenant.tenant_id,
        "path": saved,
        "questions_committed": coordinator.questions_committed,
    }


def op_debug_sleep(
    tenant: Tenant, payload: Mapping[str, object]
) -> Dict[str, object]:
    """``POST .../debug/sleep`` — occupy the tenant's worker (tests only)."""
    seconds = payload.get("seconds", 0.1)
    if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
        raise BadRequestError("field 'seconds' must be a number")
    if not 0 <= float(seconds) <= 30:
        raise BadRequestError("field 'seconds' must be in [0, 30]")
    time.sleep(float(seconds))
    return {"tenant": tenant.tenant_id, "slept": float(seconds)}


def questions_committed(
    tenant: Tenant, crowd_config: Optional[CrowdConfig] = None
) -> int:
    """The tenant's committed-question count via its cached coordinator."""
    return tenant.coordinator(crowd_config).questions_committed
