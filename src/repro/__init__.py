"""repro — a reproduction of "Adaptive Rule Discovery for Labeling Text Data".

The package implements Darwin, an interactive system that discovers labeling
heuristics (rules) for weakly-supervised text labeling, together with every
substrate the paper relies on: a text-processing pipeline, heuristic grammars,
a corpus index over derivation sketches, benefit classifiers, a Snorkel-style
label model, the Snuba / active-learning / keyword-sampling baselines, five
synthetic dataset generators mirroring the paper's corpora, and an experiment
harness regenerating every table and figure of the evaluation.

Quickstart (declarative engine API)::

    from repro import DarwinEngine

    engine = DarwinEngine.from_config({
        "dataset": {"name": "directions", "scale": 0.2, "seed": 7},
        "config": {"budget": 50, "oracle": "ground_truth",
                   "grammars": ["tokensregex"]},
        "seeds": {"rule_texts": ["best way to get to"]},
    })
    result = engine.run()
    print(result.final_recall, result.accepted_rules()[:5])

The engine supports whole-session checkpointing (``engine.save(path)`` /
``DarwinEngine.load(path)``) with question-for-question identical resume.
The pre-engine entry points remain available::

    from repro import Darwin, DarwinConfig, GroundTruthOracle
    from repro.datasets import load_dataset

    corpus = load_dataset("directions", scale=0.2, seed=7)
    darwin = Darwin(corpus, config=DarwinConfig(budget=50))
    oracle = GroundTruthOracle(corpus)
    result = darwin.run(oracle, seed_rule_texts=["best way to get to"])
"""

from .config import (
    ClassifierConfig,
    CrowdConfig,
    DarwinConfig,
    FleetConfig,
    IndexConfig,
    DEFAULT_CONFIG,
)
from .errors import (
    BudgetExhaustedError,
    ClassifierError,
    ConfigurationError,
    CorpusIndexError,
    DatasetError,
    EvaluationError,
    GrammarError,
    OracleError,
    ReproError,
    RuleParseError,
    TraversalError,
)
from .core import (
    BenefitScorer,
    BudgetedOracle,
    Darwin,
    DarwinResult,
    GroundTruthOracle,
    LabelingSession,
    MajorityVoteOracle,
    NoisyOracle,
    Oracle,
    OracleAnswer,
    OracleQuery,
    QueryRecord,
    SampleBasedOracle,
)
from .crowd import (
    Assignment,
    CrowdCoordinator,
    CrowdResult,
    CrowdRunResult,
    run_crowd,
    simulated_annotators,
)
from .engine.engine import DarwinEngine
from .engine.registry import (
    register_classifier,
    register_dataset,
    register_grammar,
    register_oracle,
    register_traversal,
)
from .grammars import TokensRegexGrammar, TreeMatchGrammar, TreePattern
from .index import (
    ArenaConfig,
    CorpusIndex,
    CoverageArena,
    CoverageStore,
    CoverageView,
    OverlayCoverageStore,
    RuleHierarchy,
)
from .rules import LabelingHeuristic, RuleSet
from .serving import ServeReport, Tenant, TenantPool, serve
from .text import Corpus, Sentence
from . import obs
from .obs import MetricsRegistry, SpanTracer

__version__ = "1.1.0"

__all__ = [
    "ClassifierConfig",
    "CrowdConfig",
    "DarwinConfig",
    "FleetConfig",
    "IndexConfig",
    "DEFAULT_CONFIG",
    "ReproError",
    "ConfigurationError",
    "GrammarError",
    "RuleParseError",
    "CorpusIndexError",
    "TraversalError",
    "OracleError",
    "BudgetExhaustedError",
    "ClassifierError",
    "DatasetError",
    "EvaluationError",
    "Darwin",
    "DarwinEngine",
    "DarwinResult",
    "QueryRecord",
    "LabelingSession",
    "register_grammar",
    "register_classifier",
    "register_traversal",
    "register_oracle",
    "register_dataset",
    "Assignment",
    "CrowdCoordinator",
    "CrowdResult",
    "CrowdRunResult",
    "run_crowd",
    "simulated_annotators",
    "BenefitScorer",
    "Oracle",
    "OracleQuery",
    "OracleAnswer",
    "GroundTruthOracle",
    "SampleBasedOracle",
    "NoisyOracle",
    "MajorityVoteOracle",
    "BudgetedOracle",
    "TokensRegexGrammar",
    "TreeMatchGrammar",
    "TreePattern",
    "CorpusIndex",
    "ArenaConfig",
    "CoverageArena",
    "CoverageStore",
    "CoverageView",
    "OverlayCoverageStore",
    "RuleHierarchy",
    "LabelingHeuristic",
    "RuleSet",
    "Tenant",
    "TenantPool",
    "ServeReport",
    "serve",
    "Corpus",
    "Sentence",
    "obs",
    "MetricsRegistry",
    "SpanTracer",
    "__version__",
]
