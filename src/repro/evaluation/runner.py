"""Experiment-runner helpers: repeated trials and curve averaging."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """A named collection of measurement series.

    Attributes:
        name: Experiment identifier (e.g. ``"fig9a-musicians"``).
        series: Mapping from series label (e.g. ``"Darwin(HS)"``) to the
            measured values (e.g. recall after each question).
        metadata: Free-form extra values (dataset sizes, parameters...).
    """

    name: str
    series: Dict[str, List[float]] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_series(self, label: str, values: Sequence[float]) -> None:
        """Add or replace a measurement series."""
        self.series[label] = list(values)

    def final_values(self) -> Dict[str, float]:
        """The last value of every series (0.0 for empty series)."""
        return {
            label: (values[-1] if values else 0.0)
            for label, values in self.series.items()
        }


def run_trials(
    trial: Callable[[int], Sequence[float]],
    num_trials: int,
    base_seed: int = 0,
) -> List[List[float]]:
    """Run ``trial(seed)`` for ``num_trials`` different seeds."""
    if num_trials <= 0:
        raise ValueError("num_trials must be positive")
    return [list(trial(base_seed + offset)) for offset in range(num_trials)]


def average_curves(curves: Sequence[Sequence[float]]) -> List[float]:
    """Point-wise mean of curves, padding shorter curves with their last value."""
    curves = [list(c) for c in curves if c]
    if not curves:
        return []
    length = max(len(c) for c in curves)
    padded = []
    for curve in curves:
        if len(curve) < length:
            curve = curve + [curve[-1]] * (length - len(curve))
        padded.append(curve)
    return [sum(curve[i] for curve in padded) / len(padded) for i in range(length)]
