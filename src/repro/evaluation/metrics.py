"""Binary classification / coverage metrics used throughout the experiments."""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple


def _as_sets(predicted: Iterable[int], actual: Iterable[int]) -> Tuple[Set[int], Set[int]]:
    return set(predicted), set(actual)


def binary_precision(predicted: Iterable[int], actual: Iterable[int]) -> float:
    """Precision of ``predicted`` ids against ``actual`` positive ids."""
    predicted_set, actual_set = _as_sets(predicted, actual)
    if not predicted_set:
        return 0.0
    return len(predicted_set & actual_set) / len(predicted_set)


def binary_recall(predicted: Iterable[int], actual: Iterable[int]) -> float:
    """Recall of ``predicted`` ids against ``actual`` positive ids."""
    predicted_set, actual_set = _as_sets(predicted, actual)
    if not actual_set:
        return 0.0
    return len(predicted_set & actual_set) / len(actual_set)


def binary_f1(predicted: Iterable[int], actual: Iterable[int]) -> float:
    """F1 of ``predicted`` ids against ``actual`` positive ids."""
    precision = binary_precision(predicted, actual)
    recall = binary_recall(predicted, actual)
    if precision + recall == 0.0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def precision_recall_f1(
    predicted: Iterable[int], actual: Iterable[int]
) -> Dict[str, float]:
    """All three metrics at once."""
    precision = binary_precision(predicted, actual)
    recall = binary_recall(predicted, actual)
    f1 = 0.0 if precision + recall == 0 else 2 * precision * recall / (precision + recall)
    return {"precision": precision, "recall": recall, "f1": f1}


def f1_from_counts(true_positive: int, predicted_positive: int, actual_positive: int) -> float:
    """F1 from raw counts (used where sets are too large to materialize)."""
    if predicted_positive <= 0 or actual_positive <= 0 or true_positive <= 0:
        return 0.0
    precision = true_positive / predicted_positive
    recall = true_positive / actual_positive
    return 2 * precision * recall / (precision + recall)


def coverage_recall(covered_ids: Iterable[int], positive_ids: Iterable[int]) -> float:
    """The paper's "coverage": fraction of ground-truth positives covered.

    This is the y-axis of Figures 7-10(a): recall of the union coverage ``P``
    over the positive class.
    """
    return binary_recall(covered_ids, positive_ids)
