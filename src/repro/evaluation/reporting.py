"""Plain-text report formatting for experiment and benchmark output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent and readable in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a simple fixed-width table."""
    columns = len(headers)
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i in range(min(columns, len(row))):
            widths[i] = max(widths[i], len(row[i]))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(
                (row[i] if i < len(row) else "").ljust(widths[i]) for i in range(columns)
            )
        )
    return "\n".join(lines)


def format_curve_table(
    curves: Dict[str, Sequence[float]],
    x_label: str = "#Questions",
    x_values: Sequence[int] = (),
    step: int = 10,
    title: str = "",
) -> str:
    """Render curves (series over question counts) as a table sampled every ``step``."""
    if not curves:
        return title
    length = max(len(v) for v in curves.values())
    if not x_values:
        x_values = list(range(step, length + 1, step))
        if length not in x_values and length > 0:
            x_values = list(x_values) + [length]
    headers = [x_label] + list(curves.keys())
    rows = []
    for x in x_values:
        row: List[object] = [x]
        for series in curves.values():
            index = min(x, len(series)) - 1
            row.append(series[index] if 0 <= index < len(series) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
