"""Evaluation metrics, experiment runner helpers, and reporting."""

from .metrics import (
    binary_f1,
    binary_precision,
    binary_recall,
    coverage_recall,
    f1_from_counts,
    precision_recall_f1,
)
from .runner import ExperimentResult, average_curves, run_trials
from .reporting import format_curve_table, format_table

__all__ = [
    "binary_f1",
    "binary_precision",
    "binary_recall",
    "coverage_recall",
    "f1_from_counts",
    "precision_recall_f1",
    "ExperimentResult",
    "average_curves",
    "run_trials",
    "format_curve_table",
    "format_table",
]
