"""The TokensRegex grammar: regular expressions over tokens (Example 2).

An expression is a tuple of tokens in which the special symbol :data:`GAP`
(rendered ``*``) matches one or more arbitrary tokens. Expressions without a
gap are plain contiguous phrases ("best way to"); expressions with gaps match
ordered, possibly non-adjacent occurrences ("shuttle * hotel").

Structural neighbourhood (used by the hierarchy and LocalSearch):

* *generalizations* of a phrase drop its first or last token, or replace an
  interior token with a gap;
* *specializations* extend the phrase by one adjacent corpus token (computed
  against a witness sentence when available) or instantiate a gap.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import RuleParseError
from ..text.sentence import Sentence
from .base import HeuristicGrammar
from .cfg import ContextFreeGrammar, phrase_grammar

GAP = "*"

Phrase = Tuple[str, ...]


class TokensRegexGrammar(HeuristicGrammar):
    """Phrase / gapped-phrase heuristics over token sequences.

    Args:
        max_phrase_len: Maximum number of non-gap tokens in enumerated
            expressions (the paper bounds derivation length at 10; phrase
            sketches rarely need more than 4-5 tokens to become precise).
        allow_gaps: Enumerate gapped variants ("a * b") of adjacent bigrams in
            sketches. Matching supports gaps regardless.
    """

    name = "tokensregex"

    def __init__(self, max_phrase_len: int = 4, allow_gaps: bool = False) -> None:
        if max_phrase_len < 1:
            raise ValueError("max_phrase_len must be at least 1")
        self.max_phrase_len = max_phrase_len
        self.allow_gaps = allow_gaps

    # ------------------------------------------------------------- matching
    def matches(self, expression: Phrase, sentence: Sentence) -> bool:
        """True if ``sentence`` contains the phrase / gapped pattern."""
        phrase = self._validate(expression)
        if not phrase:
            return True
        if GAP not in phrase:
            return sentence.contains_phrase(phrase)
        segments = self._split_on_gaps(phrase)
        return self._match_segments(segments, sentence.tokens)

    # ---------------------------------------------------------- enumeration
    def enumerate_expressions(
        self, sentence: Sentence, max_depth: int
    ) -> Iterable[Phrase]:
        """All contiguous n-grams (and optionally gapped skip-bigrams)."""
        limit = min(self.max_phrase_len, max_depth)
        seen = set()
        for gram in sentence.ngrams(limit):
            if gram not in seen:
                seen.add(gram)
                yield gram
        if self.allow_gaps:
            tokens = sentence.tokens
            for i in range(len(tokens)):
                for j in range(i + 2, min(len(tokens), i + 6)):
                    gapped = (tokens[i], GAP, tokens[j])
                    if gapped not in seen:
                        seen.add(gapped)
                        yield gapped

    # --------------------------------------------------------- neighbourhood
    def generalizations(self, expression: Phrase) -> List[Phrase]:
        phrase = self._validate(expression)
        parents: List[Phrase] = []
        if len([t for t in phrase if t != GAP]) <= 1:
            return parents
        # Drop the first or last token.
        for candidate in (phrase[1:], phrase[:-1]):
            cleaned = self._strip_gaps(candidate)
            if cleaned and cleaned != phrase and cleaned not in parents:
                parents.append(cleaned)
        # Replace an interior token with a gap (only for pure phrases).
        if GAP not in phrase and len(phrase) >= 3:
            for index in range(1, len(phrase) - 1):
                candidate = phrase[:index] + (GAP,) + phrase[index + 1:]
                cleaned = self._strip_gaps(candidate)
                if cleaned not in parents and cleaned != phrase:
                    parents.append(cleaned)
        return parents

    def specializations(
        self, expression: Phrase, sentence: Optional[Sentence] = None
    ) -> List[Phrase]:
        phrase = self._validate(expression)
        children: List[Phrase] = []
        if sentence is None:
            return children
        tokens = sentence.tokens
        length = len(phrase)
        if GAP in phrase:
            # Instantiate the first gap with each token that keeps a match.
            gap_index = phrase.index(GAP)
            for token in set(tokens):
                candidate = phrase[:gap_index] + (token,) + phrase[gap_index + 1:]
                if self.matches(candidate, sentence) and candidate not in children:
                    children.append(candidate)
            return children
        if length >= self.max_phrase_len:
            return children
        # Extend left or right using the witness sentence's occurrences.
        n = len(tokens)
        for start in range(n - length + 1):
            if tuple(tokens[start:start + length]) != phrase:
                continue
            if start > 0:
                candidate = (tokens[start - 1],) + phrase
                if candidate not in children:
                    children.append(candidate)
            end = start + length
            if end < n:
                candidate = phrase + (tokens[end],)
                if candidate not in children:
                    children.append(candidate)
        return children

    def is_ancestor(self, general: Phrase, specific: Phrase) -> bool:
        """A phrase is an ancestor if it is a (gapped) sub-pattern."""
        general = self._validate(general)
        specific = self._validate(specific)
        if GAP in general or GAP in specific:
            return super().is_ancestor(general, specific)
        if len(general) > len(specific):
            return False
        for start in range(len(specific) - len(general) + 1):
            if specific[start:start + len(general)] == general:
                return True
        return False

    # -------------------------------------------------------------- plumbing
    def formal_grammar(self, vocabulary: Sequence[str]) -> ContextFreeGrammar:
        return phrase_grammar(vocabulary, allow_gap=True)

    def render(self, expression: Phrase) -> str:
        phrase = self._validate(expression)
        return " ".join(phrase)

    def parse(self, text: str) -> Phrase:
        if text is None:
            raise RuleParseError("cannot parse None as a TokensRegex rule")
        tokens = tuple(part for part in text.strip().lower().split() if part)
        if not tokens:
            raise RuleParseError("empty TokensRegex rule")
        if tokens[0] == GAP or tokens[-1] == GAP:
            raise RuleParseError("a TokensRegex rule cannot start or end with a gap")
        return tokens

    def complexity(self, expression: Phrase) -> int:
        return len(self._validate(expression))

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _validate(expression: Phrase) -> Phrase:
        if isinstance(expression, str):
            return tuple(expression.split())
        if not isinstance(expression, tuple):
            raise RuleParseError(
                f"TokensRegex expressions are tuples of tokens, got {type(expression)}"
            )
        return expression

    @staticmethod
    def _strip_gaps(phrase: Phrase) -> Phrase:
        """Remove leading/trailing/duplicate gaps left behind by edits."""
        items = list(phrase)
        while items and items[0] == GAP:
            items.pop(0)
        while items and items[-1] == GAP:
            items.pop()
        cleaned: List[str] = []
        for token in items:
            if token == GAP and cleaned and cleaned[-1] == GAP:
                continue
            cleaned.append(token)
        return tuple(cleaned)

    @staticmethod
    def _split_on_gaps(phrase: Phrase) -> List[Phrase]:
        segments: List[Phrase] = []
        current: List[str] = []
        for token in phrase:
            if token == GAP:
                if current:
                    segments.append(tuple(current))
                    current = []
            else:
                current.append(token)
        if current:
            segments.append(tuple(current))
        return segments

    @staticmethod
    def _match_segments(segments: List[Phrase], tokens: Tuple[str, ...]) -> bool:
        """Match segments in order, each after the previous one ends."""
        position = 0
        n = len(tokens)
        for segment_index, segment in enumerate(segments):
            m = len(segment)
            found = -1
            for start in range(position, n - m + 1):
                if tokens[start:start + m] == segment:
                    found = start
                    break
            if found < 0:
                return False
            # A gap requires at least one token between segments.
            position = found + m + (1 if segment_index < len(segments) - 1 else 0)
        return True
