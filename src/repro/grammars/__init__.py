"""Heuristic grammars: the rule languages Darwin searches over.

Darwin supports *any* rule language specifiable as a context-free grammar
(Definition 1). This subpackage provides:

* :mod:`repro.grammars.cfg` — a generic CFG representation with derivation
  machinery (used to validate that grammars are context-free and to enumerate
  derivations up to a bounded number of rule applications),
* :mod:`repro.grammars.base` — the :class:`HeuristicGrammar` interface every
  rule language implements (matching, sketch enumeration, generalization /
  specialization neighbours),
* :mod:`repro.grammars.tokensregex` — the TokensRegex grammar (Example 2),
* :mod:`repro.grammars.treematch` — the TreeMatch grammar over dependency
  parse trees (Definition 3).
"""

from .cfg import ContextFreeGrammar, Production, Derivation
from .base import HeuristicGrammar
from .tokensregex import TokensRegexGrammar, GAP
from .treematch import TreeMatchGrammar, TreePattern

__all__ = [
    "ContextFreeGrammar",
    "Production",
    "Derivation",
    "HeuristicGrammar",
    "TokensRegexGrammar",
    "GAP",
    "TreeMatchGrammar",
    "TreePattern",
]
