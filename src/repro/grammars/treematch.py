"""The TreeMatch grammar: patterns over dependency parse trees (Definition 3).

Terminals are tokens *and* universal POS tags. The operations are

* ``a/b``  — ``b`` is a direct child of ``a`` in the dependency tree,
* ``a//b`` — ``b`` is a descendant of ``a``,
* ``p ∧ q`` — the sentence satisfies both sub-patterns.

Expressions are represented as :class:`TreePattern`, an immutable AST with
four node kinds: ``label``, ``child``, ``desc`` and ``and``. Rendering uses
the paper's notation (``/is/NOUN ∧ job``); parsing accepts the same strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import RuleParseError
from ..text.dependency import DependencyTree
from ..text.sentence import Sentence
from .base import HeuristicGrammar
from .cfg import ContextFreeGrammar, treematch_grammar

AND = "∧"


@dataclass(frozen=True)
class TreePattern:
    """Immutable TreeMatch pattern AST node.

    Attributes:
        kind: One of ``"label"``, ``"child"``, ``"desc"``, ``"and"``.
        label: The terminal label for ``label`` nodes (token or POS tag).
        left / right: Sub-patterns for the binary kinds. For ``child`` and
            ``desc`` the ``left`` pattern describes the ancestor node and
            ``right`` the child/descendant.
    """

    kind: str
    label: Optional[str] = None
    left: Optional["TreePattern"] = None
    right: Optional["TreePattern"] = None

    def __post_init__(self) -> None:
        if self.kind == "label":
            if not self.label:
                raise RuleParseError("label pattern requires a label")
        elif self.kind in {"child", "desc", "and"}:
            if self.left is None or self.right is None:
                raise RuleParseError(f"{self.kind} pattern requires two children")
        else:
            raise RuleParseError(f"unknown TreePattern kind: {self.kind!r}")

    # Constructors -----------------------------------------------------------
    @staticmethod
    def leaf(label: str) -> "TreePattern":
        return TreePattern(kind="label", label=label)

    @staticmethod
    def child(parent: "TreePattern", child: "TreePattern") -> "TreePattern":
        return TreePattern(kind="child", left=parent, right=child)

    @staticmethod
    def descendant(parent: "TreePattern", descendant: "TreePattern") -> "TreePattern":
        return TreePattern(kind="desc", left=parent, right=descendant)

    @staticmethod
    def conjunction(left: "TreePattern", right: "TreePattern") -> "TreePattern":
        return TreePattern(kind="and", left=left, right=right)

    # Introspection ----------------------------------------------------------
    def size(self) -> int:
        """Number of AST nodes (proxy for derivation length)."""
        if self.kind == "label":
            return 1
        return 1 + self.left.size() + self.right.size()

    def labels(self) -> List[str]:
        """All terminal labels mentioned by the pattern (left-to-right)."""
        if self.kind == "label":
            return [self.label]
        return self.left.labels() + self.right.labels()


class TreeMatchGrammar(HeuristicGrammar):
    """Dependency-tree pattern heuristics.

    Args:
        max_pattern_size: Maximum AST size for enumerated sketch patterns.
        include_pos_leaves: Enumerate POS tags as leaf labels in addition to
            tokens (matching Definition 3's terminal set).
    """

    name = "treematch"

    def __init__(self, max_pattern_size: int = 5, include_pos_leaves: bool = True) -> None:
        if max_pattern_size < 1:
            raise ValueError("max_pattern_size must be at least 1")
        self.max_pattern_size = max_pattern_size
        self.include_pos_leaves = include_pos_leaves

    # ------------------------------------------------------------- matching
    def matches(self, expression: TreePattern, sentence: Sentence) -> bool:
        pattern = self._validate(expression)
        tree = sentence.tree
        if tree is None or len(tree) == 0:
            return False
        return self._match_pattern(pattern, tree)

    def _match_pattern(self, pattern: TreePattern, tree: DependencyTree) -> bool:
        if pattern.kind == "and":
            return self._match_pattern(pattern.left, tree) and self._match_pattern(
                pattern.right, tree
            )
        return len(self._match_nodes(pattern, tree)) > 0

    def _match_nodes(self, pattern: TreePattern, tree: DependencyTree) -> List[int]:
        """Nodes of ``tree`` at which ``pattern`` is rooted."""
        if pattern.kind == "label":
            return tree.nodes_with_label(pattern.label)
        if pattern.kind == "and":
            # A conjunction is not anchored at a single node; treat as the set
            # of nodes matching the left side when the right side matches
            # anywhere (used only when nested inside child/desc).
            if self._match_pattern(pattern.right, tree):
                return self._match_nodes(pattern.left, tree)
            return []
        parent_nodes = self._match_nodes(pattern.left, tree)
        if not parent_nodes:
            return []
        child_nodes = set(self._match_nodes(pattern.right, tree))
        if not child_nodes:
            return []
        matched: List[int] = []
        for node in parent_nodes:
            related = (
                tree.children(node) if pattern.kind == "child" else tree.descendants(node)
            )
            if any(r in child_nodes for r in related):
                matched.append(node)
        return matched

    # ---------------------------------------------------------- enumeration
    def enumerate_expressions(
        self, sentence: Sentence, max_depth: int
    ) -> Iterable[TreePattern]:
        """Enumerate patterns the sentence satisfies.

        The compact derivation sketch for TreeMatch is the dependency tree
        itself (Section 3.1); here we enumerate the useful pattern shapes up to
        the configured size: single labels, parent/child label pairs,
        ancestor/descendant label pairs, and child pairs conjoined with one
        extra label.
        """
        tree = sentence.tree
        if tree is None or len(tree) == 0:
            return
        limit = min(self.max_pattern_size, max_depth)
        seen = set()

        def emit(pattern: TreePattern) -> Iterable[TreePattern]:
            if pattern not in seen:
                seen.add(pattern)
                yield pattern

        node_labels: List[Tuple[int, str]] = []
        for index in range(len(tree)):
            labels = [tree.tokens[index]]
            if self.include_pos_leaves:
                labels.append(tree.tags[index])
            for label in labels:
                node_labels.append((index, label))
                if limit >= 1:
                    yield from emit(TreePattern.leaf(label))

        if limit < 3:
            return

        label_by_node: dict = {}
        for index, label in node_labels:
            label_by_node.setdefault(index, []).append(label)

        for head, dependent in tree.edges():
            for head_label in label_by_node.get(head, []):
                for dep_label in label_by_node.get(dependent, []):
                    yield from emit(
                        TreePattern.child(
                            TreePattern.leaf(head_label), TreePattern.leaf(dep_label)
                        )
                    )

        if limit >= 3:
            for ancestor in range(len(tree)):
                descendants = tree.descendants(ancestor)
                for descendant in descendants:
                    # Skip direct children: already covered by the child patterns.
                    if tree.heads[descendant] == ancestor:
                        continue
                    for anc_label in label_by_node.get(ancestor, []):
                        for dec_label in label_by_node.get(descendant, []):
                            yield from emit(
                                TreePattern.descendant(
                                    TreePattern.leaf(anc_label),
                                    TreePattern.leaf(dec_label),
                                )
                            )

        if limit >= 5:
            # Child pattern conjoined with one additional token leaf.
            content_tokens = {
                tree.tokens[i] for i in range(len(tree)) if tree.tags[i] not in {"PUNCT"}
            }
            child_patterns = [p for p in seen if p.kind == "child"]
            for pattern in child_patterns[:50]:
                mentioned = set(pattern.labels())
                for token in content_tokens:
                    if token in mentioned:
                        continue
                    yield from emit(
                        TreePattern.conjunction(pattern, TreePattern.leaf(token))
                    )

    # --------------------------------------------------------- neighbourhood
    def generalizations(self, expression: TreePattern) -> List[TreePattern]:
        pattern = self._validate(expression)
        if pattern.kind == "label":
            return []
        parents: List[TreePattern] = []
        if pattern.kind == "and":
            parents.extend([pattern.left, pattern.right])
        elif pattern.kind in {"child", "desc"}:
            parents.extend([pattern.left, pattern.right])
            if pattern.kind == "child":
                # A child constraint generalizes to the looser descendant one.
                parents.append(TreePattern.descendant(pattern.left, pattern.right))
        unique: List[TreePattern] = []
        for parent in parents:
            if parent != pattern and parent not in unique:
                unique.append(parent)
        return unique

    def specializations(
        self, expression: TreePattern, sentence: Optional[Sentence] = None
    ) -> List[TreePattern]:
        pattern = self._validate(expression)
        children: List[TreePattern] = []
        if sentence is None or sentence.tree is None:
            return children
        tree = sentence.tree
        if pattern.size() >= self.max_pattern_size:
            return children
        if pattern.kind == "label":
            # Attach a child / descendant constraint drawn from the tree.
            for node in self._match_nodes(pattern, tree):
                for child in tree.children(node):
                    for label in (tree.tokens[child], tree.tags[child]):
                        candidate = TreePattern.child(pattern, TreePattern.leaf(label))
                        if candidate not in children:
                            children.append(candidate)
        elif pattern.kind == "desc":
            # A descendant constraint specializes to the tighter child one.
            tighter = TreePattern.child(pattern.left, pattern.right)
            if self.matches(tighter, sentence):
                children.append(tighter)
        # Any pattern can be conjoined with an additional token present in the
        # sentence.
        mentioned = set(pattern.labels())
        for index in range(len(tree)):
            token = tree.tokens[index]
            if token in mentioned or tree.tags[index] == "PUNCT":
                continue
            candidate = TreePattern.conjunction(pattern, TreePattern.leaf(token))
            if candidate not in children:
                children.append(candidate)
        return [c for c in children if self.matches(c, sentence)]

    # -------------------------------------------------------------- plumbing
    def formal_grammar(self, vocabulary: Sequence[str]) -> ContextFreeGrammar:
        return treematch_grammar(vocabulary)

    def render(self, expression: TreePattern) -> str:
        pattern = self._validate(expression)
        return self._render(pattern)

    def _render(self, pattern: TreePattern) -> str:
        if pattern.kind == "label":
            return pattern.label
        if pattern.kind == "child":
            return f"{self._render(pattern.left)}/{self._render(pattern.right)}"
        if pattern.kind == "desc":
            return f"{self._render(pattern.left)}//{self._render(pattern.right)}"
        return f"{self._render(pattern.left)} {AND} {self._render(pattern.right)}"

    def parse(self, text: str) -> TreePattern:
        if text is None or not text.strip():
            raise RuleParseError("empty TreeMatch rule")
        return self._parse_conjunction(text.strip())

    def _parse_conjunction(self, text: str) -> TreePattern:
        parts = [part.strip() for part in text.split(AND)]
        if any(not part for part in parts):
            raise RuleParseError(f"malformed TreeMatch conjunction: {text!r}")
        patterns = [self._parse_path(part) for part in parts]
        result = patterns[0]
        for pattern in patterns[1:]:
            result = TreePattern.conjunction(result, pattern)
        return result

    def _parse_path(self, text: str) -> TreePattern:
        # Split on '//' first, then '/' within the remaining segments, keeping
        # the operators. A leading '/' (as in '/is/NOUN') is tolerated and
        # ignored, matching the paper's rendering.
        text = text.strip()
        if text.startswith("/") and not text.startswith("//"):
            text = text[1:]
        tokens: List[str] = []
        operators: List[str] = []
        remaining = text
        while remaining:
            double = remaining.find("//")
            single = remaining.find("/")
            if double == -1 and single == -1:
                tokens.append(remaining)
                break
            if double != -1 and (single == -1 or double <= single):
                cut, op, advance = double, "desc", 2
            else:
                cut, op, advance = single, "child", 1
            tokens.append(remaining[:cut])
            operators.append(op)
            remaining = remaining[cut + advance:]
        tokens = [tok.strip() for tok in tokens]
        if any(not tok for tok in tokens):
            raise RuleParseError(f"malformed TreeMatch path: {text!r}")
        pattern = TreePattern.leaf(self._normalize_label(tokens[0]))
        for op, token in zip(operators, tokens[1:]):
            leaf = TreePattern.leaf(self._normalize_label(token))
            if op == "child":
                pattern = TreePattern.child(pattern, leaf)
            else:
                pattern = TreePattern.descendant(pattern, leaf)
        return pattern

    @staticmethod
    def _normalize_label(label: str) -> str:
        """POS tags stay upper-case; everything else is lowercased."""
        stripped = label.strip()
        if stripped.isupper():
            return stripped
        return stripped.lower()

    def complexity(self, expression: TreePattern) -> int:
        return self._validate(expression).size()

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _validate(expression: TreePattern) -> TreePattern:
        if not isinstance(expression, TreePattern):
            raise RuleParseError(
                f"TreeMatch expressions must be TreePattern, got {type(expression)}"
            )
        return expression
