"""The :class:`HeuristicGrammar` interface.

A heuristic grammar defines a rule language: it can

* enumerate the heuristics a given sentence *satisfies* (its derivation
  sketch, Section 3.1),
* test whether an arbitrary heuristic expression matches a sentence,
* produce the generalization (parent) and specialization (child) neighbours of
  an expression — the structural edges used by the hierarchy and by
  LocalSearch,
* expose its formal CFG (Definition 1) for validation,
* parse and render expressions so that rules are human-readable in oracle
  queries and experiment traces.

Expressions are opaque hashable objects from the point of view of the rest of
the system; only the grammar that produced an expression interprets it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable, List, Optional, Sequence

from ..text.sentence import Sentence
from .cfg import ContextFreeGrammar

Expression = Hashable


class HeuristicGrammar(ABC):
    """Abstract base class for rule languages plugged into Darwin."""

    #: Short identifier used in reports and rule serialization.
    name: str = "abstract"

    # ------------------------------------------------------------- matching
    @abstractmethod
    def matches(self, expression: Expression, sentence: Sentence) -> bool:
        """Return True if ``sentence`` satisfies the heuristic ``expression``."""

    def coverage(
        self, expression: Expression, sentences: Iterable[Sentence]
    ) -> List[int]:
        """Ids of the sentences in ``sentences`` matching ``expression``.

        Grammars may override this with an index-aware implementation; the
        default simply scans.
        """
        return [s.sentence_id for s in sentences if self.matches(expression, s)]

    # ---------------------------------------------------------- enumeration
    @abstractmethod
    def enumerate_expressions(
        self, sentence: Sentence, max_depth: int
    ) -> Iterable[Expression]:
        """Enumerate expressions that ``sentence`` satisfies.

        ``max_depth`` bounds the number of derivation-rule applications, which
        keeps the derivation sketch linear in sentence length (Section 3.1).
        """

    # --------------------------------------------------------- neighbourhood
    @abstractmethod
    def generalizations(self, expression: Expression) -> List[Expression]:
        """Expressions obtained by *removing* one derivation step (parents)."""

    @abstractmethod
    def specializations(
        self, expression: Expression, sentence: Optional[Sentence] = None
    ) -> List[Expression]:
        """Expressions obtained by *adding* one derivation step (children).

        When ``sentence`` is provided the specializations may be restricted to
        ones the sentence still satisfies; this is how the index grows children
        lazily during LocalSearch.
        """

    def is_ancestor(self, general: Expression, specific: Expression) -> bool:
        """True if ``specific`` can be reached from ``general`` by specializing.

        The default implementation walks up from ``specific`` via
        :meth:`generalizations`; grammars with cheap subsumption checks should
        override it.
        """
        frontier = [specific]
        seen = set()
        while frontier:
            node = frontier.pop()
            if node == general:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self.generalizations(node))
        return False

    # -------------------------------------------------------------- plumbing
    @abstractmethod
    def formal_grammar(self, vocabulary: Sequence[str]) -> ContextFreeGrammar:
        """The formal CFG over ``vocabulary`` that this rule language encodes."""

    @abstractmethod
    def render(self, expression: Expression) -> str:
        """Human-readable form of ``expression`` (shown to annotators)."""

    @abstractmethod
    def parse(self, text: str) -> Expression:
        """Parse a human-readable rule string back into an expression."""

    def complexity(self, expression: Expression) -> int:
        """Number of derivation steps needed to produce ``expression``.

        Used to place heuristics at the right level of the hierarchy and for
        diversity constraints in candidate generation. The default counts the
        rendered tokens, which matches both built-in grammars.
        """
        return max(1, len(self.render(expression).split()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
