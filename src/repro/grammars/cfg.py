"""A small context-free-grammar framework.

Definition 1 of the paper specifies heuristic grammars as context-free
grammars; a labeling heuristic is a derivation of the grammar (Definition 2).
This module provides the generic machinery:

* :class:`Production` — a single derivation rule ``lhs -> rhs``.
* :class:`ContextFreeGrammar` — a set of productions with a start symbol,
  supporting bounded derivation enumeration and membership-style expansion.
* :class:`Derivation` — a recorded sequence of production applications whose
  yield is a terminal string.

The concrete heuristic grammars (TokensRegex, TreeMatch) expose their formal
CFG through :meth:`HeuristicGrammar.formal_grammar`, which is exercised by the
tests to confirm that every heuristic the system proposes is indeed derivable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import GrammarError

EPSILON = "ε"


@dataclass(frozen=True)
class Production:
    """A context-free production ``lhs -> rhs``.

    Attributes:
        lhs: The non-terminal being rewritten.
        rhs: The replacement sequence of terminals and non-terminals. An empty
            tuple denotes the ε-production.
    """

    lhs: str
    rhs: Tuple[str, ...]

    def __str__(self) -> str:
        rhs = " ".join(self.rhs) if self.rhs else EPSILON
        return f"{self.lhs} -> {rhs}"


@dataclass(frozen=True)
class Derivation:
    """A derivation: the sequence of productions applied (leftmost order)."""

    productions: Tuple[Production, ...]
    sentence: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.productions)

    def __str__(self) -> str:
        return " ".join(self.sentence) if self.sentence else EPSILON


class ContextFreeGrammar:
    """A context-free grammar with bounded derivation enumeration.

    Args:
        start: The start non-terminal.
        productions: The derivation rules.
        nonterminals: Optionally the explicit non-terminal set; inferred from
            production left-hand sides when omitted.
    """

    def __init__(
        self,
        start: str,
        productions: Sequence[Production],
        nonterminals: Optional[Set[str]] = None,
    ) -> None:
        if not productions:
            raise GrammarError("a grammar needs at least one production")
        self.start = start
        self.productions: List[Production] = list(productions)
        self.nonterminals: Set[str] = set(nonterminals or [])
        self.nonterminals.update(p.lhs for p in self.productions)
        if start not in self.nonterminals:
            raise GrammarError(f"start symbol {start!r} has no productions")
        self.terminals: Set[str] = {
            symbol
            for production in self.productions
            for symbol in production.rhs
            if symbol not in self.nonterminals
        }
        self._by_lhs: Dict[str, List[Production]] = {}
        for production in self.productions:
            self._by_lhs.setdefault(production.lhs, []).append(production)

    # ----------------------------------------------------------------- basics
    def productions_for(self, nonterminal: str) -> List[Production]:
        """All productions whose left-hand side is ``nonterminal``."""
        return list(self._by_lhs.get(nonterminal, []))

    def is_terminal(self, symbol: str) -> bool:
        """True if ``symbol`` is a terminal of this grammar."""
        return symbol not in self.nonterminals

    # ----------------------------------------------------------- enumeration
    def derivations(
        self, max_steps: int, max_results: Optional[int] = None
    ) -> Iterator[Derivation]:
        """Enumerate complete derivations using at most ``max_steps`` rules.

        The enumeration is breadth-first over sentential forms, so shorter
        derivations are produced first. ``max_results`` caps the number of
        yielded derivations (useful for grammars with huge terminal sets).
        """
        if max_steps <= 0:
            return
        count = 0
        # Each frontier entry: (sentential form, applied productions)
        frontier: List[Tuple[Tuple[str, ...], Tuple[Production, ...]]] = [
            ((self.start,), tuple())
        ]
        for _ in range(max_steps):
            next_frontier: List[Tuple[Tuple[str, ...], Tuple[Production, ...]]] = []
            for form, applied in frontier:
                target = self._leftmost_nonterminal(form)
                if target is None:
                    continue
                index, nonterminal = target
                for production in self._by_lhs.get(nonterminal, []):
                    new_form = form[:index] + production.rhs + form[index + 1:]
                    new_applied = applied + (production,)
                    if self._leftmost_nonterminal(new_form) is None:
                        yield Derivation(new_applied, new_form)
                        count += 1
                        if max_results is not None and count >= max_results:
                            return
                    else:
                        next_frontier.append((new_form, new_applied))
            frontier = next_frontier
            if not frontier:
                return

    def _leftmost_nonterminal(
        self, form: Sequence[str]
    ) -> Optional[Tuple[int, str]]:
        for index, symbol in enumerate(form):
            if symbol in self.nonterminals:
                return index, symbol
        return None

    # ------------------------------------------------------------- validation
    def can_derive(self, sentence: Sequence[str], max_steps: int = 16) -> bool:
        """Best-effort membership check by bounded breadth-first derivation.

        Only used in tests on tiny grammars; exponential in the worst case.
        """
        goal = tuple(sentence)
        for derivation in self.derivations(max_steps=max_steps, max_results=200_000):
            if derivation.sentence == goal:
                return True
        return False

    def describe(self) -> str:
        """Human-readable listing of the grammar's productions."""
        lines = [f"start: {self.start}"]
        lines.extend(str(p) for p in self.productions)
        return "\n".join(lines)


def phrase_grammar(vocabulary: Sequence[str], allow_gap: bool = True) -> ContextFreeGrammar:
    """Construct the formal TokensRegex CFG of Example 2 for ``vocabulary``.

    The grammar is ``A -> v A`` for every vocabulary token, ``A -> A + A``,
    ``A -> A * A`` (when ``allow_gap``), and ``A -> ε``.
    """
    productions = [Production("A", (token, "A")) for token in vocabulary]
    productions.append(Production("A", ("A", "+", "A")))
    if allow_gap:
        productions.append(Production("A", ("A", "*", "A")))
    productions.append(Production("A", tuple()))
    return ContextFreeGrammar("A", productions)


def treematch_grammar(vocabulary: Sequence[str]) -> ContextFreeGrammar:
    """Construct the formal TreeMatch CFG of Definition 3 for ``vocabulary``.

    The terminals are tokens and POS tags; the operations are child (``/``),
    descendant (``//``) and conjunction (``∧``).
    """
    productions = [
        Production("A", ("/", "A")),
        Production("A", ("A", "∧", "A")),
        Production("A", ("//", "A")),
    ]
    productions.extend(Production("A", (token,)) for token in vocabulary)
    return ContextFreeGrammar("A", productions)
