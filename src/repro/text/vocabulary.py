"""Token vocabulary with frequency counts and id assignment."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Sequence


class Vocabulary:
    """A bidirectional token <-> integer-id mapping with counts.

    Index 0 is reserved for the unknown token ``<unk>``; index 1 for padding
    ``<pad>`` (used by the CNN classifier when stacking sentences of unequal
    length).
    """

    UNK = "<unk>"
    PAD = "<pad>"

    def __init__(self, min_count: int = 1, max_size: int | None = None) -> None:
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        self.min_count = min_count
        self.max_size = max_size
        self._token_to_id: Dict[str, int] = {self.UNK: 0, self.PAD: 1}
        self._id_to_token: List[str] = [self.UNK, self.PAD]
        self.counts: Counter = Counter()
        self._frozen = False

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    def add_sentence(self, tokens: Sequence[str]) -> None:
        """Count ``tokens`` towards the vocabulary (before :meth:`freeze`)."""
        if self._frozen:
            raise RuntimeError("cannot add sentences to a frozen vocabulary")
        self.counts.update(tokens)

    def freeze(self) -> "Vocabulary":
        """Assign ids to all tokens meeting ``min_count``; returns ``self``."""
        if self._frozen:
            return self
        eligible = [
            (count, token)
            for token, count in self.counts.items()
            if count >= self.min_count
        ]
        eligible.sort(key=lambda item: (-item[0], item[1]))
        if self.max_size is not None:
            eligible = eligible[: self.max_size]
        for _, token in eligible:
            if token not in self._token_to_id:
                self._token_to_id[token] = len(self._id_to_token)
                self._id_to_token.append(token)
        self._frozen = True
        return self

    @classmethod
    def from_sentences(
        cls,
        sentences: Iterable[Sequence[str]],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build and freeze a vocabulary from an iterable of token sequences."""
        vocab = cls(min_count=min_count, max_size=max_size)
        for tokens in sentences:
            vocab.add_sentence(tokens)
        return vocab.freeze()

    def id_of(self, token: str) -> int:
        """Id of ``token`` (0 / ``<unk>`` if unseen)."""
        return self._token_to_id.get(token, 0)

    def token_of(self, token_id: int) -> str:
        """Token string for ``token_id``."""
        return self._id_to_token[token_id]

    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Map a token sequence to a list of ids."""
        return [self.id_of(token) for token in tokens]

    def tokens(self) -> List[str]:
        """All known tokens including the special ones, in id order."""
        return list(self._id_to_token)

    def content_tokens(self) -> List[str]:
        """All tokens excluding ``<unk>`` and ``<pad>``."""
        return self._id_to_token[2:]
