"""The :class:`Sentence` record used throughout the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .dependency import DependencyTree


@dataclass(frozen=True)
class Sentence:
    """A single preprocessed sentence of the input corpus.

    Attributes:
        sentence_id: Position of the sentence within its corpus (0-based).
        text: The original raw text.
        tokens: Tokenized, lowercased token sequence.
        tags: Universal POS tag per token.
        tree: Dependency tree over the tokens (used by the TreeMatch grammar).
        label: Optional ground-truth label (True = positive). Ground truth is
            used only by oracles and evaluation, never by Darwin's search.
        meta: Free-form metadata string (e.g. the template that generated the
            sentence in synthetic corpora).
    """

    sentence_id: int
    text: str
    tokens: Tuple[str, ...]
    tags: Tuple[str, ...] = field(default=())
    tree: Optional[DependencyTree] = None
    label: Optional[bool] = None
    meta: str = ""

    def __post_init__(self) -> None:
        if self.tags and len(self.tags) != len(self.tokens):
            raise ValueError("tags must align with tokens")
        if self.tree is not None and len(self.tree) != len(self.tokens):
            raise ValueError("tree must align with tokens")

    def __len__(self) -> int:
        return len(self.tokens)

    def contains_phrase(self, phrase: Tuple[str, ...]) -> bool:
        """Return True if ``phrase`` occurs as a contiguous token subsequence."""
        if not phrase:
            return True
        n, m = len(self.tokens), len(phrase)
        if m > n:
            return False
        first = phrase[0]
        for start in range(n - m + 1):
            if self.tokens[start] == first and self.tokens[start:start + m] == phrase:
                return True
        return False

    def ngrams(self, max_len: int) -> Tuple[Tuple[str, ...], ...]:
        """All contiguous token n-grams of length 1..``max_len``."""
        grams = []
        n = len(self.tokens)
        for length in range(1, min(max_len, n) + 1):
            for start in range(n - length + 1):
                grams.append(tuple(self.tokens[start:start + length]))
        return tuple(grams)
