"""The :class:`Corpus` container: preprocessing and ground-truth bookkeeping."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .dependency import DependencyParser
from .pos import PosTagger
from .sentence import Sentence
from .tokenizer import Tokenizer
from .vocabulary import Vocabulary


class Corpus:
    """An immutable collection of preprocessed sentences.

    A corpus is built either from raw strings (which are tokenized, tagged and
    parsed here) or from already-constructed :class:`Sentence` objects (the
    dataset generators use the latter so they can attach ground-truth labels
    and metadata).

    Ground-truth labels, when present, are *only* consumed by oracles and
    evaluation code. Darwin's search itself never looks at them.
    """

    def __init__(self, sentences: Sequence[Sentence], name: str = "corpus") -> None:
        self.name = name
        self._sentences: List[Sentence] = list(sentences)
        for expected_id, sentence in enumerate(self._sentences):
            if sentence.sentence_id != expected_id:
                raise ValueError(
                    "sentence ids must be consecutive and start at 0 "
                    f"(expected {expected_id}, got {sentence.sentence_id})"
                )
        self._vocabulary: Optional[Vocabulary] = None
        self._has_labels_cache: Optional[bool] = None

    # ------------------------------------------------------------------ build
    @classmethod
    def from_texts(
        cls,
        texts: Iterable[str],
        labels: Optional[Sequence[Optional[bool]]] = None,
        name: str = "corpus",
        tokenizer: Optional[Tokenizer] = None,
        tagger: Optional[PosTagger] = None,
        parser: Optional[DependencyParser] = None,
        parse_trees: bool = True,
    ) -> "Corpus":
        """Preprocess raw ``texts`` into a corpus.

        Args:
            texts: Raw sentence strings.
            labels: Optional ground-truth labels aligned with ``texts``.
            name: Corpus name used in reports.
            tokenizer / tagger / parser: Optional component overrides.
            parse_trees: Skip dependency parsing when False (slightly faster
                when only the TokensRegex grammar is used).
        """
        tokenizer = tokenizer or Tokenizer()
        tagger = tagger or PosTagger()
        parser = parser or DependencyParser()
        texts = list(texts)
        if labels is not None and len(labels) != len(texts):
            raise ValueError("labels must align with texts")
        sentences: List[Sentence] = []
        for index, text in enumerate(texts):
            tokens = tuple(tokenizer.tokenize(text))
            tags = tuple(tagger.tag(tokens))
            tree = parser.parse(tokens, tags) if parse_trees and tokens else None
            label = labels[index] if labels is not None else None
            sentences.append(
                Sentence(
                    sentence_id=index,
                    text=text,
                    tokens=tokens,
                    tags=tags,
                    tree=tree,
                    label=label,
                )
            )
        return cls(sentences, name=name)

    # --------------------------------------------------------------- protocol
    def __len__(self) -> int:
        return len(self._sentences)

    def __iter__(self) -> Iterator[Sentence]:
        return iter(self._sentences)

    def __getitem__(self, sentence_id: int) -> Sentence:
        return self._sentences[sentence_id]

    @property
    def sentences(self) -> List[Sentence]:
        """The sentences in id order (a copy is *not* made; do not mutate)."""
        return self._sentences

    # ------------------------------------------------------------ ground truth
    def has_labels(self) -> bool:
        """True if every sentence carries a ground-truth label.

        Cached after the first call: sentences are fixed at construction (see
        :attr:`sentences`), and the Darwin loop asks once per oracle answer.
        """
        if self._has_labels_cache is None:
            self._has_labels_cache = all(s.label is not None for s in self._sentences)
        return self._has_labels_cache

    def positive_ids(self) -> Set[int]:
        """Ids of ground-truth positive sentences (empty if unlabeled)."""
        return {s.sentence_id for s in self._sentences if s.label is True}

    def negative_ids(self) -> Set[int]:
        """Ids of ground-truth negative sentences (empty if unlabeled)."""
        return {s.sentence_id for s in self._sentences if s.label is False}

    def positive_fraction(self) -> float:
        """Fraction of sentences labeled positive (0.0 for unlabeled corpora)."""
        if not self._sentences:
            return 0.0
        return len(self.positive_ids()) / len(self._sentences)

    def labels_dict(self) -> Dict[int, Optional[bool]]:
        """Mapping from sentence id to ground-truth label."""
        return {s.sentence_id: s.label for s in self._sentences}

    # -------------------------------------------------------------- vocabulary
    def vocabulary(self, min_count: int = 1) -> Vocabulary:
        """Lazily build (and cache) the corpus token vocabulary."""
        if self._vocabulary is None or self._vocabulary.min_count != min_count:
            self._vocabulary = Vocabulary.from_sentences(
                (s.tokens for s in self._sentences), min_count=min_count
            )
        return self._vocabulary

    # ----------------------------------------------------------------- helpers
    def subset(self, sentence_ids: Iterable[int], name: Optional[str] = None) -> "Corpus":
        """Return a new corpus containing the given sentences, re-numbered."""
        chosen = sorted(set(sentence_ids))
        sentences = []
        for new_id, old_id in enumerate(chosen):
            old = self._sentences[old_id]
            sentences.append(
                Sentence(
                    sentence_id=new_id,
                    text=old.text,
                    tokens=old.tokens,
                    tags=old.tags,
                    tree=old.tree,
                    label=old.label,
                    meta=old.meta,
                )
            )
        return Corpus(sentences, name=name or f"{self.name}-subset")

    def describe(self) -> Dict[str, object]:
        """Summary statistics used by the Table 1 experiment."""
        n = len(self._sentences)
        positives = len(self.positive_ids())
        return {
            "name": self.name,
            "num_sentences": n,
            "num_positives": positives,
            "positive_fraction": (positives / n) if n else 0.0,
            "vocabulary_size": len(self.vocabulary()),
            "mean_tokens": (
                sum(len(s) for s in self._sentences) / n if n else 0.0
            ),
        }
