"""A lexicon + suffix-rule part-of-speech tagger over the universal tagset.

The paper (Definition 3) uses universal POS tags such as NOUN and VERB as
terminals of the TreeMatch grammar. SpaCy is unavailable offline, so this
module provides a deterministic tagger built from:

1. a closed-class lexicon (determiners, adpositions, pronouns, auxiliaries...),
2. a small open-class lexicon covering the vocabulary of the synthetic corpora,
3. suffix and shape heuristics (e.g. "-ing"/"-ed" -> VERB, "-ly" -> ADV,
   capitalised mid-sentence -> PROPN, digits -> NUM),
4. a default of NOUN, which is the most frequent open-class tag.

Accuracy on real English is far below a trained tagger, but tags are assigned
consistently, which is all the TreeMatch grammar and the sketches require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

UNIVERSAL_TAGS = (
    "ADJ",
    "ADP",
    "ADV",
    "AUX",
    "CCONJ",
    "DET",
    "INTJ",
    "NOUN",
    "NUM",
    "PART",
    "PRON",
    "PROPN",
    "PUNCT",
    "SCONJ",
    "SYM",
    "VERB",
    "X",
)

_CLOSED_CLASS: Dict[str, str] = {}


def _register(tag: str, words: Sequence[str]) -> None:
    for word in words:
        _CLOSED_CLASS[word] = tag


_register("DET", ["the", "a", "an", "this", "that", "these", "those", "any", "some",
                  "every", "each", "no", "another", "either", "neither", "both", "all"])
_register("ADP", ["to", "from", "in", "on", "at", "by", "with", "about", "into",
                  "over", "under", "between", "through", "during", "before", "after",
                  "of", "for", "near", "across", "around", "via", "towards", "toward",
                  "onto", "off", "up", "down", "along", "outside", "inside", "within"])
_register("PRON", ["i", "you", "he", "she", "it", "we", "they", "me", "him", "her",
                   "us", "them", "my", "your", "his", "its", "our", "their", "mine",
                   "yours", "hers", "ours", "theirs", "myself", "yourself", "there",
                   "who", "whom", "whose", "which", "what", "something", "anything",
                   "someone", "anyone", "everyone", "nothing"])
_register("AUX", ["is", "am", "are", "was", "were", "be", "been", "being", "do",
                  "does", "did", "have", "has", "had", "will", "would", "can",
                  "could", "shall", "should", "may", "might", "must", "n't"])
_register("CCONJ", ["and", "or", "but", "nor", "yet", "so"])
_register("SCONJ", ["because", "if", "while", "although", "though", "since",
                    "unless", "until", "whereas", "when", "where", "whether",
                    "that", "as"])
_register("PART", ["not", "'s"])
_register("ADV", ["very", "quite", "too", "also", "just", "only", "even", "still",
                  "already", "soon", "now", "then", "here", "please", "how", "why",
                  "really", "always", "never", "often", "usually", "again", "far",
                  "fast", "early", "late", "well", "much", "more", "most", "less"])
_register("ADJ", ["best", "good", "better", "great", "new", "old", "big", "small",
                  "fastest", "quickest", "cheapest", "nearest", "closest", "easiest",
                  "other", "same", "different", "many", "few", "several", "such",
                  "first", "last", "next", "available", "famous", "popular", "early",
                  "late", "local", "free", "open", "severe", "major", "minor",
                  "possible", "main", "own"])
_register("INTJ", ["hello", "hi", "thanks", "thank", "please", "yes", "no", "hey"])
_register("NUM", ["one", "two", "three", "four", "five", "six", "seven", "eight",
                  "nine", "ten", "dozen", "hundred", "thousand", "million"])

# Open-class verbs that appear throughout the synthetic corpora. Registering
# them keeps the dependency trees stable across datasets.
_register("VERB", ["get", "go", "take", "order", "check", "book", "find", "reach",
                   "arrive", "leave", "travel", "ride", "walk", "drive", "catch",
                   "need", "want", "like", "know", "think", "make", "call", "ask",
                   "play", "played", "plays", "playing", "compose", "composed",
                   "composes", "wrote", "write", "writes", "written", "perform",
                   "performed", "performs", "sing", "sang", "sings", "sung",
                   "record", "recorded", "records", "release", "released",
                   "cause", "caused", "causes", "causing", "trigger", "triggered",
                   "triggers", "lead", "leads", "led", "result", "resulted",
                   "results", "induce", "induced", "induces", "produce", "produced",
                   "produces", "create", "created", "creates", "bring", "brings",
                   "brought", "work", "works", "worked", "working", "teach",
                   "taught", "teaches", "study", "studied", "studies", "eat",
                   "recommend", "visit", "stay", "help", "use", "try", "serve",
                   "open", "close", "start", "stop", "run", "move", "see", "look"])

_VERB_SUFFIXES = ("ing", "ed", "ify", "ise", "ize", "ate")
_ADJ_SUFFIXES = ("ous", "ful", "ive", "able", "ible", "al", "ic", "ish", "less")
_ADV_SUFFIXES = ("ly",)
_NOUN_SUFFIXES = ("tion", "sion", "ment", "ness", "ity", "ship", "ist", "er",
                  "or", "ian", "ism", "ant", "ent", "ure", "age")


@dataclass
class PosTagger:
    """Deterministic universal-POS tagger.

    Attributes:
        extra_lexicon: Optional per-corpus additions, mapping lowercased word to
            tag. Dataset generators register their domain nouns/verbs here so
            that TreeMatch rules such as ``/is/NOUN`` behave predictably.
    """

    extra_lexicon: Dict[str, str] = field(default_factory=dict)

    def add_lexicon(self, entries: Dict[str, str]) -> None:
        """Merge ``entries`` (word -> tag) into the tagger's extra lexicon."""
        for word, tag in entries.items():
            if tag not in UNIVERSAL_TAGS:
                raise ValueError(f"unknown universal POS tag: {tag!r}")
            self.extra_lexicon[word.lower()] = tag

    def tag(self, tokens: Sequence[str]) -> List[str]:
        """Return one universal POS tag per token in ``tokens``."""
        tags: List[str] = []
        for position, token in enumerate(tokens):
            tags.append(self._tag_token(token, position))
        return tags

    def __call__(self, tokens: Sequence[str]) -> List[str]:
        return self.tag(tokens)

    def _tag_token(self, token: str, position: int) -> str:
        if not token:
            return "X"
        lowered = token.lower()
        if lowered in self.extra_lexicon:
            return self.extra_lexicon[lowered]
        if lowered in _CLOSED_CLASS:
            return _CLOSED_CLASS[lowered]
        # Third-person singular forms of known verbs ("leaves", "goes").
        if lowered.endswith("s") and len(lowered) > 2:
            for stem in (lowered[:-1], lowered[:-2]):
                if self.extra_lexicon.get(stem) == "VERB" or \
                        _CLOSED_CLASS.get(stem) == "VERB":
                    return "VERB"
        if all(not ch.isalnum() for ch in token):
            return "PUNCT"
        if any(ch.isdigit() for ch in token):
            return "NUM"
        if token[0].isupper() and position > 0:
            return "PROPN"
        for suffix in _ADV_SUFFIXES:
            if lowered.endswith(suffix) and len(lowered) > len(suffix) + 2:
                return "ADV"
        for suffix in _VERB_SUFFIXES:
            if lowered.endswith(suffix) and len(lowered) > len(suffix) + 2:
                return "VERB"
        for suffix in _ADJ_SUFFIXES:
            if lowered.endswith(suffix) and len(lowered) > len(suffix) + 2:
                return "ADJ"
        for suffix in _NOUN_SUFFIXES:
            if lowered.endswith(suffix) and len(lowered) > len(suffix) + 1:
                return "NOUN"
        return "NOUN"
