"""Text substrate: tokenization, POS tagging, dependency parsing, embeddings.

The paper relies on SpaCy for linguistic preprocessing and pre-trained word
embeddings. This subpackage provides offline, dependency-free substitutes with
the properties Darwin actually needs:

* deterministic tokenization,
* a consistent universal POS tag per token,
* a projective dependency tree per sentence (for the TreeMatch grammar),
* dense word vectors in which co-occurring words are close (for the benefit
  classifier's generalization across related phrases).
"""

from .tokenizer import Tokenizer, tokenize
from .pos import PosTagger, UNIVERSAL_TAGS
from .dependency import DependencyParser, DependencyTree
from .sentence import Sentence
from .corpus import Corpus
from .vocabulary import Vocabulary
from .embeddings import EmbeddingModel, build_embeddings

__all__ = [
    "Tokenizer",
    "tokenize",
    "PosTagger",
    "UNIVERSAL_TAGS",
    "DependencyParser",
    "DependencyTree",
    "Sentence",
    "Corpus",
    "Vocabulary",
    "EmbeddingModel",
    "build_embeddings",
]
