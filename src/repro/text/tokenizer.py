"""Rule-based tokenizer.

The tokenizer splits on whitespace and punctuation, keeps contractions intact
("don't" -> ["do", "n't"]), and lowercases by default. It is intentionally
simple — the grammars and index only require that the same string always
produces the same token sequence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

_TOKEN_PATTERN = re.compile(
    r"""
    \d+(?:[.,]\d+)*         # numbers, possibly with separators
    | [A-Za-z]+(?:'[A-Za-z]+)?   # words with optional apostrophe suffix
    | [^\sA-Za-z0-9]        # any single punctuation / symbol character
    """,
    re.VERBOSE,
)

_CONTRACTION_SUFFIXES = ("n't", "'s", "'re", "'ve", "'ll", "'d", "'m")


@dataclass(frozen=True)
class Tokenizer:
    """Deterministic regex tokenizer.

    Attributes:
        lowercase: Lowercase all tokens (default True; the paper's grammars are
            case-insensitive phrase matchers).
        split_contractions: Split English contractions into two tokens so that
            "don't" matches rules mentioning "do".
        keep_punctuation: Keep punctuation marks as their own tokens.
    """

    lowercase: bool = True
    split_contractions: bool = True
    keep_punctuation: bool = True

    def tokenize(self, text: str) -> List[str]:
        """Tokenize ``text`` into a list of token strings."""
        if text is None:
            return []
        raw = _TOKEN_PATTERN.findall(text)
        tokens: List[str] = []
        for tok in raw:
            if not self.keep_punctuation and not any(ch.isalnum() for ch in tok):
                continue
            if self.split_contractions and "'" in tok and len(tok) > 2:
                tokens.extend(self._split_contraction(tok))
            else:
                tokens.append(tok)
        if self.lowercase:
            tokens = [t.lower() for t in tokens]
        return tokens

    def __call__(self, text: str) -> List[str]:
        return self.tokenize(text)

    @staticmethod
    def _split_contraction(token: str) -> List[str]:
        lowered = token.lower()
        for suffix in _CONTRACTION_SUFFIXES:
            if lowered.endswith(suffix) and len(token) > len(suffix):
                split_at = len(token) - len(suffix)
                return [token[:split_at], token[split_at:]]
        return [token]


_DEFAULT_TOKENIZER = Tokenizer()


def tokenize(text: str) -> List[str]:
    """Tokenize with the default (lowercasing, contraction-splitting) tokenizer."""
    return _DEFAULT_TOKENIZER.tokenize(text)
