"""A deterministic greedy dependency parser.

The TreeMatch grammar (Definition 3) matches patterns such as ``a/b`` ("b is a
child of a") and ``a//b`` ("b is a descendant of a") against the dependency
parse tree of a sentence. The reproduction therefore needs *some* dependency
tree per sentence — not a linguistically perfect one, but one that is

* deterministic (same sentence -> same tree),
* rooted and connected (every token has exactly one head, a single root),
* broadly sensible (verbs head their arguments, adpositions head their object
  and attach to the nearest verb/noun on the left, modifiers attach to the
  following noun).

The parser below implements a small set of head-attachment rules over the
universal POS tags produced by :class:`repro.text.pos.PosTagger`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class DependencyTree:
    """A dependency tree over a tokenized sentence.

    Attributes:
        tokens: The sentence tokens.
        tags: Universal POS tag per token.
        heads: ``heads[i]`` is the index of token ``i``'s head, or ``-1`` for
            the root token.
    """

    tokens: Tuple[str, ...]
    tags: Tuple[str, ...]
    heads: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not (len(self.tokens) == len(self.tags) == len(self.heads)):
            raise ValueError("tokens, tags and heads must have equal length")
        roots = [i for i, h in enumerate(self.heads) if h == -1]
        if self.tokens and len(roots) != 1:
            raise ValueError(f"tree must have exactly one root, found {len(roots)}")

    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def root(self) -> int:
        """Index of the root token."""
        for index, head in enumerate(self.heads):
            if head == -1:
                return index
        raise ValueError("empty tree has no root")

    def children(self, index: int) -> List[int]:
        """Indices of the direct children of token ``index``."""
        return [i for i, head in enumerate(self.heads) if head == index]

    def descendants(self, index: int) -> List[int]:
        """Indices of all descendants of token ``index`` (excluding itself)."""
        result: List[int] = []
        frontier = self.children(index)
        while frontier:
            node = frontier.pop()
            result.append(node)
            frontier.extend(self.children(node))
        return result

    def labels(self, index: int) -> Set[str]:
        """The matchable labels of a node: its token plus its POS tag."""
        return {self.tokens[index], self.tags[index]}

    def nodes_with_label(self, label: str) -> List[int]:
        """All node indices whose token or POS tag equals ``label``."""
        return [i for i in range(len(self.tokens)) if label in self.labels(i)]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (head, dependent) index pairs."""
        for index, head in enumerate(self.heads):
            if head >= 0:
                yield head, index

    def depth(self, index: int) -> int:
        """Distance from ``index`` to the root (root has depth 0)."""
        depth = 0
        node = index
        seen = set()
        while self.heads[node] != -1:
            if node in seen:  # pragma: no cover - defensive, trees are acyclic
                raise ValueError("cycle detected in dependency tree")
            seen.add(node)
            node = self.heads[node]
            depth += 1
        return depth

    def to_conll(self) -> str:
        """Render the tree as minimal CoNLL-style lines (1-based heads)."""
        lines = []
        for index, (token, tag, head) in enumerate(
            zip(self.tokens, self.tags, self.heads)
        ):
            lines.append(f"{index + 1}\t{token}\t{tag}\t{head + 1}")
        return "\n".join(lines)


_VERB_TAGS = {"VERB", "AUX"}
_NOUN_TAGS = {"NOUN", "PROPN", "PRON", "NUM"}
_PRE_MODIFIER_TAGS = {"DET", "ADJ"}


class DependencyParser:
    """Greedy, rule-based projective dependency parser.

    Attachment rules, applied left to right:

    * The root is the first main VERB; if none, the first AUX; otherwise the
      first NOUN-like token; otherwise the first token.
    * DET / ADJ attach to the next NOUN-like token to their right (or to the
      root if none exists).
    * ADP heads: an adposition attaches to the nearest VERB or NOUN-like token
      on its left (falling back to the root); the next NOUN-like token to its
      right attaches to the adposition (mirroring a prepositional phrase).
    * NOUN-like tokens attach to the nearest ADP immediately governing them,
      otherwise to the nearest verb on the left, otherwise to the root.
    * ADV / PART / INTJ attach to the nearest verb (left preferred).
    * Remaining tokens (CCONJ, SCONJ, PUNCT, SYM, X) attach to the root.
    """

    def parse(self, tokens: Sequence[str], tags: Sequence[str]) -> DependencyTree:
        """Parse ``tokens``/``tags`` into a :class:`DependencyTree`."""
        tokens = list(tokens)
        tags = list(tags)
        if len(tokens) != len(tags):
            raise ValueError("tokens and tags must have equal length")
        n = len(tokens)
        if n == 0:
            return DependencyTree(tuple(), tuple(), tuple())

        root = self._choose_root(tags)
        heads = [root] * n
        heads[root] = -1

        # Track, for each ADP, the noun it governs, so nouns prefer the
        # adposition immediately to their left.
        for index in range(n):
            if index == root:
                continue
            tag = tags[index]
            if tag in _PRE_MODIFIER_TAGS:
                heads[index] = self._next_with_tags(tags, index, _NOUN_TAGS, root)
            elif tag == "ADP":
                heads[index] = self._prev_with_tags(
                    tags, index, _VERB_TAGS | _NOUN_TAGS, root
                )
            elif tag in _NOUN_TAGS:
                if index > 0 and tags[index - 1] == "ADP" and index - 1 != root:
                    heads[index] = index - 1
                elif index > 1 and tags[index - 1] in _PRE_MODIFIER_TAGS and \
                        tags[index - 2] == "ADP" and index - 2 != root:
                    heads[index] = index - 2
                else:
                    heads[index] = self._prev_with_tags(tags, index, _VERB_TAGS, root)
            elif tag in {"ADV", "PART", "INTJ"}:
                heads[index] = self._nearest_with_tags(tags, index, _VERB_TAGS, root)
            elif tag in _VERB_TAGS:
                heads[index] = self._prev_with_tags(tags, index, _VERB_TAGS, root)
            else:
                heads[index] = root

        heads = self._break_cycles(heads, root)
        return DependencyTree(tuple(tokens), tuple(tags), tuple(heads))

    def __call__(self, tokens: Sequence[str], tags: Sequence[str]) -> DependencyTree:
        return self.parse(tokens, tags)

    @staticmethod
    def _choose_root(tags: Sequence[str]) -> int:
        for target_set in (_VERB_TAGS & {"VERB"}, {"AUX"}, _NOUN_TAGS):
            for index, tag in enumerate(tags):
                if tag in target_set:
                    return index
        return 0

    @staticmethod
    def _next_with_tags(
        tags: Sequence[str], start: int, targets: Set[str], default: int
    ) -> int:
        for index in range(start + 1, len(tags)):
            if tags[index] in targets:
                return index
        return default

    @staticmethod
    def _prev_with_tags(
        tags: Sequence[str], start: int, targets: Set[str], default: int
    ) -> int:
        for index in range(start - 1, -1, -1):
            if tags[index] in targets:
                return index
        return default

    @classmethod
    def _nearest_with_tags(
        cls, tags: Sequence[str], start: int, targets: Set[str], default: int
    ) -> int:
        left = cls._prev_with_tags(tags, start, targets, -2)
        right = cls._next_with_tags(tags, start, targets, -2)
        if left == -2 and right == -2:
            return default
        if left == -2:
            return right
        if right == -2:
            return left
        return left if (start - left) <= (right - start) else right

    @staticmethod
    def _break_cycles(heads: List[int], root: int) -> List[int]:
        """Reattach to the root any token whose head chain does not reach it."""
        n = len(heads)
        fixed = list(heads)
        for index in range(n):
            node = index
            seen = set()
            while fixed[node] != -1:
                if node in seen:
                    fixed[index] = root
                    break
                seen.add(node)
                node = fixed[node]
            # self-loops count as cycles too
            if fixed[index] == index:
                fixed[index] = root
        return fixed
