"""Corpus-trained word embeddings (PPMI + truncated SVD) with hashed fallback.

The paper feeds SpaCy's pre-trained vectors into a CNN classifier; the vectors
matter because they let the classifier generalize from discovered positives to
*semantically related* sentences ("bus" -> "public transport", Section 3).

Offline we cannot ship pre-trained vectors, so :func:`build_embeddings` learns
vectors from the corpus itself:

1. count token co-occurrences within a sliding window,
2. convert counts to positive pointwise mutual information (PPMI),
3. factorize with a truncated SVD (scipy sparse svds) to ``dim`` dimensions.

Tokens that never co-occur (or out-of-vocabulary tokens at query time) fall
back to a deterministic hashed random vector so that every token always has an
embedding of the right dimensionality.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from ..utils.rng import derive_rng, stable_hash
from .vocabulary import Vocabulary


class EmbeddingModel:
    """Dense word vectors with deterministic out-of-vocabulary fallback.

    Attributes:
        dim: Embedding dimensionality.
        vectors: Mapping from token to its vector (unit-normalised).
        token_weights: Optional per-token weights used when averaging token
            vectors into a sentence vector. The featurizer supplies SIF-style
            inverse-frequency weights so that rare, discriminative content
            words (entity names, domain nouns) dominate the sentence vector
            instead of stopwords.
    """

    def __init__(
        self,
        dim: int,
        vectors: Dict[str, np.ndarray],
        seed: int = 0,
        token_weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.seed = seed
        self.token_weights: Dict[str, float] = dict(token_weights or {})
        self.vectors: Dict[str, np.ndarray] = {}
        for token, vector in vectors.items():
            array = np.asarray(vector, dtype=np.float64)
            if array.shape != (dim,):
                raise ValueError(
                    f"vector for {token!r} has shape {array.shape}, expected ({dim},)"
                )
            self.vectors[token] = _normalize(array)

    def __contains__(self, token: str) -> bool:
        return token in self.vectors

    def __len__(self) -> int:
        return len(self.vectors)

    def vector(self, token: str) -> np.ndarray:
        """Return the vector for ``token`` (hashed fallback if unseen)."""
        known = self.vectors.get(token)
        if known is not None:
            return known
        return self._hashed_vector(token)

    def _hashed_vector(self, token: str) -> np.ndarray:
        rng = np.random.default_rng(stable_hash("oov", self.seed, token) % (2**32))
        return _normalize(rng.standard_normal(self.dim))

    def sentence_vector(self, tokens: Sequence[str]) -> np.ndarray:
        """Weighted mean of the token vectors (zero vector when empty).

        Tokens are weighted by :attr:`token_weights` (default 1.0), so when
        SIF weights are attached the frequent function words contribute little
        and the sentence vector reflects its content words.
        """
        if not tokens:
            return np.zeros(self.dim)
        matrix = np.stack([self.vector(token) for token in tokens])
        weights = np.array(
            [self.token_weights.get(token, 1.0) for token in tokens], dtype=np.float64
        )
        total = weights.sum()
        if total <= 0:
            return matrix.mean(axis=0)
        return (matrix * weights[:, None]).sum(axis=0) / total

    def sentence_matrix(self, tokens: Sequence[str], max_len: int) -> np.ndarray:
        """Stack token vectors into a fixed ``(max_len, dim)`` matrix (padded)."""
        matrix = np.zeros((max_len, self.dim))
        for row, token in enumerate(tokens[:max_len]):
            matrix[row] = self.vector(token)
        return matrix

    def similarity(self, token_a: str, token_b: str) -> float:
        """Cosine similarity between two tokens."""
        return float(np.dot(self.vector(token_a), self.vector(token_b)))

    def most_similar(self, token: str, top_k: int = 10) -> List[tuple]:
        """The ``top_k`` in-vocabulary tokens most similar to ``token``."""
        query = self.vector(token)
        scored = [
            (other, float(np.dot(query, vec)))
            for other, vec in self.vectors.items()
            if other != token
        ]
        scored.sort(key=lambda item: -item[1])
        return scored[:top_k]


def _normalize(vector: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(vector)
    if norm == 0.0:
        return vector
    return vector / norm


def sif_weights(
    sentences: Iterable[Sequence[str]], smoothing: float = 1e-3
) -> Dict[str, float]:
    """Smooth inverse-frequency (SIF) token weights: ``a / (a + p(token))``.

    Frequent function words get weights near zero, rare content words weights
    near one, following Arora et al.'s simple-but-tough-to-beat sentence
    embedding baseline.
    """
    counts: Counter = Counter()
    total = 0
    for tokens in sentences:
        counts.update(tokens)
        total += len(tokens)
    if total == 0:
        return {}
    return {
        token: smoothing / (smoothing + count / total)
        for token, count in counts.items()
    }


def build_embeddings(
    sentences: Iterable[Sequence[str]],
    dim: int = 50,
    window: int = 3,
    min_count: int = 2,
    seed: int = 0,
    vocabulary: Optional[Vocabulary] = None,
    use_sif_weights: bool = True,
) -> EmbeddingModel:
    """Train PPMI-SVD embeddings over tokenized ``sentences``.

    Args:
        sentences: Iterable of token sequences.
        dim: Target dimensionality (reduced automatically if the vocabulary is
            too small for a rank-``dim`` factorization).
        window: Symmetric co-occurrence window size.
        min_count: Tokens rarer than this share the hashed fallback.
        seed: Seed for the fallback vectors and SVD initialisation.
        vocabulary: Optional pre-built vocabulary (rebuilt from the sentences
            otherwise).
        use_sif_weights: Attach smooth inverse-frequency weights used when
            averaging token vectors into sentence vectors.

    Returns:
        A fitted :class:`EmbeddingModel`.
    """
    sentence_list = [list(tokens) for tokens in sentences]
    if vocabulary is None:
        vocabulary = Vocabulary.from_sentences(sentence_list, min_count=min_count)
    weights = sif_weights(sentence_list) if use_sif_weights else None
    tokens = vocabulary.content_tokens()
    if not tokens:
        return EmbeddingModel(dim, {}, seed=seed, token_weights=weights)
    token_index = {token: i for i, token in enumerate(tokens)}
    n_tokens = len(tokens)

    cooc: Counter = Counter()
    token_totals = np.zeros(n_tokens)
    for sent in sentence_list:
        indices = [token_index[t] for t in sent if t in token_index]
        for pos, center in enumerate(indices):
            lo = max(0, pos - window)
            hi = min(len(indices), pos + window + 1)
            for other_pos in range(lo, hi):
                if other_pos == pos:
                    continue
                context = indices[other_pos]
                cooc[(center, context)] += 1.0
                token_totals[center] += 1.0

    total = token_totals.sum()
    if total == 0 or not cooc:
        rng = derive_rng(seed, "degenerate-embeddings")
        vectors = {t: rng.standard_normal(dim) for t in tokens}
        return EmbeddingModel(dim, vectors, seed=seed, token_weights=weights)

    rows, cols, values = [], [], []
    for (center, context), count in cooc.items():
        p_joint = count / total
        p_center = token_totals[center] / total
        p_context = token_totals[context] / total
        pmi = np.log(p_joint / (p_center * p_context + 1e-12) + 1e-12)
        if pmi > 0:
            rows.append(center)
            cols.append(context)
            values.append(pmi)

    if not values:
        rng = derive_rng(seed, "flat-embeddings")
        vectors = {t: rng.standard_normal(dim) for t in tokens}
        return EmbeddingModel(dim, vectors, seed=seed, token_weights=weights)

    matrix = sparse.csr_matrix(
        (values, (rows, cols)), shape=(n_tokens, n_tokens), dtype=np.float64
    )
    effective_dim = min(dim, max(1, min(matrix.shape) - 1))
    if effective_dim < 1 or matrix.nnz == 0:
        rng = derive_rng(seed, "tiny-embeddings")
        vectors = {t: rng.standard_normal(dim) for t in tokens}
        return EmbeddingModel(dim, vectors, seed=seed, token_weights=weights)

    rng = derive_rng(seed, "svd-init")
    v0 = rng.standard_normal(min(matrix.shape))
    u, s, _ = svds(matrix, k=effective_dim, v0=v0)
    # svds returns singular values in ascending order; weight and re-order.
    order = np.argsort(-s)
    u = u[:, order]
    s = s[order]
    embedded = u * np.sqrt(np.maximum(s, 1e-12))

    if effective_dim < dim:
        padding = np.zeros((n_tokens, dim - effective_dim))
        embedded = np.hstack([embedded, padding])

    vectors = {token: embedded[i] for token, i in token_index.items()}
    return EmbeddingModel(dim, vectors, seed=seed, token_weights=weights)
