"""A collection of accepted labeling heuristics and their combined coverage."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from ..text.corpus import Corpus
from .heuristic import LabelingHeuristic


class RuleSet:
    """The set ``R`` of accepted rules and its union coverage ``P``.

    The paper's objective (Problem 1) is to maximize the recall of
    ``P = union of C_r for r in R`` under an oracle-query budget. This class
    maintains both incrementally and exposes the evaluation quantities used in
    the experiments.
    """

    def __init__(self, rules: Optional[Iterable[LabelingHeuristic]] = None) -> None:
        self._rules: List[LabelingHeuristic] = []
        self._covered: Set[int] = set()
        for rule in rules or []:
            self.add(rule)

    # --------------------------------------------------------------- protocol
    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[LabelingHeuristic]:
        return iter(self._rules)

    def __contains__(self, rule: LabelingHeuristic) -> bool:
        return rule in self._rules

    # ------------------------------------------------------------------ edits
    def add(self, rule: LabelingHeuristic) -> bool:
        """Add ``rule`` (must have coverage computed). Returns False if present."""
        if rule in self._rules:
            return False
        self._rules.append(rule)
        self._covered.update(rule.coverage)
        return True

    # ------------------------------------------------------------- accessors
    @property
    def rules(self) -> List[LabelingHeuristic]:
        """The accepted rules in acceptance order."""
        return list(self._rules)

    @property
    def covered_ids(self) -> Set[int]:
        """The union coverage ``P`` as a set of sentence ids."""
        return set(self._covered)

    def coverage_size(self) -> int:
        """``|P|``."""
        return len(self._covered)

    def recall(self, positive_ids: Set[int]) -> float:
        """Fraction of ground-truth positives contained in ``P``."""
        if not positive_ids:
            return 0.0
        return len(self._covered & set(positive_ids)) / len(positive_ids)

    def precision(self, positive_ids: Set[int]) -> float:
        """Fraction of ``P`` that is ground-truth positive."""
        if not self._covered:
            return 0.0
        return len(self._covered & set(positive_ids)) / len(self._covered)

    def marginal_gain(self, rule: LabelingHeuristic) -> int:
        """Number of sentences ``rule`` would add to ``P``."""
        return len(set(rule.coverage) - self._covered)

    # ------------------------------------------------------------- rendering
    def label_vector(self, corpus: Corpus) -> Dict[int, bool]:
        """Weak labels implied by the rule set: covered sentences are positive."""
        return {s.sentence_id: (s.sentence_id in self._covered) for s in corpus}

    def describe(self) -> List[str]:
        """Human-readable listing of the accepted rules."""
        return [rule.render() for rule in self._rules]

    def __repr__(self) -> str:
        return f"RuleSet(num_rules={len(self._rules)}, coverage={len(self._covered)})"
