"""A collection of accepted labeling heuristics and their combined coverage.

The union coverage ``P`` is maintained two ways at once: a running boolean
mask over sentence ids (the columnar fast path — adding a rule whose coverage
is an interned :class:`~repro.index.coverage.CoverageView` is one fancy-index
assignment) and a plain Python set kept for API compatibility with callers
that expect ``covered_ids`` to be a real ``set``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

import numpy as np

from ..text.corpus import Corpus
from .heuristic import LabelingHeuristic


class RuleSet:
    """The set ``R`` of accepted rules and its union coverage ``P``.

    The paper's objective (Problem 1) is to maximize the recall of
    ``P = union of C_r for r in R`` under an oracle-query budget. This class
    maintains both incrementally and exposes the evaluation quantities used in
    the experiments.
    """

    def __init__(self, rules: Optional[Iterable[LabelingHeuristic]] = None) -> None:
        self._rules: List[LabelingHeuristic] = []
        self._covered: Set[int] = set()
        self._covered_mask = np.zeros(0, dtype=bool)
        for rule in rules or []:
            self.add(rule)

    # --------------------------------------------------------------- protocol
    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[LabelingHeuristic]:
        return iter(self._rules)

    def __contains__(self, rule: LabelingHeuristic) -> bool:
        return rule in self._rules

    # ------------------------------------------------------------------ edits
    def _grow_mask(self, size: int) -> None:
        if size > self._covered_mask.size:
            grown = np.zeros(max(size, 2 * self._covered_mask.size), dtype=bool)
            grown[: self._covered_mask.size] = self._covered_mask
            self._covered_mask = grown

    def add(self, rule: LabelingHeuristic) -> bool:
        """Add ``rule`` (must have coverage computed). Returns False if present."""
        if rule in self._rules:
            return False
        self._rules.append(rule)
        view = rule.coverage_view
        if view is not None and view.count:
            self._grow_mask(int(view.ids[-1]) + 1)
            view.union_into(self._covered_mask)
            self._covered.update(view.ids.tolist())
        else:
            coverage = rule.coverage
            self._covered.update(coverage)
            if coverage:
                self._grow_mask(max(coverage) + 1)
                self._covered_mask[list(coverage)] = True
        return True

    # ------------------------------------------------------------- accessors
    @property
    def rules(self) -> List[LabelingHeuristic]:
        """The accepted rules in acceptance order."""
        return list(self._rules)

    @property
    def covered_ids(self) -> Set[int]:
        """The union coverage ``P`` as a (copied, mutable) set of sentence ids."""
        return set(self._covered)

    @property
    def covered_mask(self) -> np.ndarray:
        """The union coverage ``P`` as a boolean mask (not copied — do not
        mutate; grows lazily as larger sentence ids are covered)."""
        return self._covered_mask

    def coverage_size(self) -> int:
        """``|P|``."""
        return len(self._covered)

    def recall(self, positive_ids: Set[int]) -> float:
        """Fraction of ground-truth positives contained in ``P``."""
        if not positive_ids:
            return 0.0
        positives = (
            positive_ids if isinstance(positive_ids, (set, frozenset))
            else set(positive_ids)
        )
        return len(self._covered & positives) / len(positives)

    def precision(self, positive_ids: Set[int]) -> float:
        """Fraction of ``P`` that is ground-truth positive."""
        if not self._covered:
            return 0.0
        positives = (
            positive_ids if isinstance(positive_ids, (set, frozenset))
            else set(positive_ids)
        )
        return len(self._covered & positives) / len(self._covered)

    def marginal_gain(self, rule: LabelingHeuristic) -> int:
        """Number of sentences ``rule`` would add to ``P``."""
        view = rule.coverage_view
        if view is not None:
            return int(view.new_ids_given(self._covered_mask).size)
        return len(set(rule.coverage) - self._covered)

    # -------------------------------------------------------- state protocol
    def to_state(self) -> Dict[str, object]:
        """JSON-able snapshot: the accepted rules in acceptance order.

        Coverage is not serialized — it is derived state, re-attached by the
        resolver on :meth:`from_state` (from the corpus index's interned
        views, or a corpus scan for un-indexed rules), so the checkpoint
        stays small and the restored set shares the index's columnar arrays.
        """
        return {"rules": [rule.ref() for rule in self._rules]}

    @classmethod
    def from_state(cls, state: Dict[str, object], resolve) -> "RuleSet":
        """Rebuild a rule set from :meth:`to_state` output.

        Args:
            state: The serialized snapshot.
            resolve: Callable mapping a rule ref (``{"g", "e"}``) to a
                :class:`LabelingHeuristic` with coverage attached
                (:meth:`repro.core.darwin.Darwin.resolve_rule_ref`).
        """
        return cls(resolve(ref) for ref in state.get("rules", []))

    # ------------------------------------------------------------- rendering
    def label_vector(self, corpus: Corpus) -> Dict[int, bool]:
        """Weak labels implied by the rule set: covered sentences are positive."""
        return {s.sentence_id: (s.sentence_id in self._covered) for s in corpus}

    def describe(self) -> List[str]:
        """Human-readable listing of the accepted rules."""
        return [rule.render() for rule in self._rules]

    def __repr__(self) -> str:
        return f"RuleSet(num_rules={len(self._rules)}, coverage={len(self._covered)})"
