"""Labeling heuristics (rules) and rule collections."""

from .heuristic import LabelingHeuristic
from .rule_set import RuleSet

__all__ = ["LabelingHeuristic", "RuleSet"]
