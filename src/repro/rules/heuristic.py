"""The :class:`LabelingHeuristic` record (Definition 2).

A labeling heuristic couples a grammar expression with the grammar that
interprets it and, once evaluated against a corpus, with its coverage set
``C_r`` (the ids of sentences that satisfy it).

Coverage may be held either as a plain ``frozenset`` (ad-hoc rules, tests) or
as an interned :class:`~repro.index.coverage.CoverageView` handed out by the
corpus index's :class:`~repro.index.coverage.CoverageStore`. Both are
immutable set-likes, so ``rule.coverage`` keeps supporting ``len``/``in`` and
set operators regardless of the backing representation; hot paths check for a
view via :attr:`coverage_view` and use its vectorized primitives.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set, Union

from ..grammars.base import Expression, HeuristicGrammar
from ..text.corpus import Corpus
from ..text.sentence import Sentence

CoverageSet = Union[FrozenSet[int], "CoverageView"]  # noqa: F821

_COVERAGE_VIEW_TYPE = None


def _coverage_view_type():
    """Resolve CoverageView lazily: index.trie_index imports this module, so a
    top-level import of repro.index here would be circular."""
    global _COVERAGE_VIEW_TYPE
    if _COVERAGE_VIEW_TYPE is None:
        from ..index.coverage import CoverageView

        _COVERAGE_VIEW_TYPE = CoverageView
    return _COVERAGE_VIEW_TYPE


@dataclass(frozen=True)
class LabelingHeuristic:
    """A single labeling rule.

    Attributes:
        grammar: The :class:`HeuristicGrammar` that interprets ``expression``.
        expression: The grammar-specific expression object (hashable).
        coverage_ids: Ids of corpus sentences satisfying the rule, if already
            computed — a ``frozenset`` or an interned ``CoverageView``.
            ``None`` means "not yet evaluated"; use :meth:`with_coverage` or
            :meth:`evaluate` to fill it in.
    """

    grammar: HeuristicGrammar
    expression: Expression
    coverage_ids: Optional[CoverageSet] = field(default=None, compare=False)

    # Identity is (grammar name, expression): coverage is derived state.
    def __hash__(self) -> int:
        return hash((self.grammar.name, self.expression))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelingHeuristic):
            return NotImplemented
        return (
            self.grammar.name == other.grammar.name
            and self.expression == other.expression
        )

    # ------------------------------------------------------------ evaluation
    def matches(self, sentence: Sentence) -> bool:
        """True if ``sentence`` satisfies this rule."""
        return self.grammar.matches(self.expression, sentence)

    def evaluate(self, corpus: Corpus) -> "LabelingHeuristic":
        """Return a copy of this rule with coverage computed over ``corpus``."""
        ids = frozenset(self.grammar.coverage(self.expression, corpus))
        return self.with_coverage(ids)

    def with_coverage(self, coverage_ids: Iterable[int]) -> "LabelingHeuristic":
        """Return a copy carrying the given coverage ids.

        An interned :class:`CoverageView` is kept as-is (no copy); any other
        iterable is frozen into a ``frozenset``.
        """
        if isinstance(coverage_ids, _coverage_view_type()):
            coverage: CoverageSet = coverage_ids
        else:
            coverage = frozenset(coverage_ids)
        return LabelingHeuristic(
            grammar=self.grammar,
            expression=self.expression,
            coverage_ids=coverage,
        )

    # ------------------------------------------------------------ properties
    @property
    def coverage(self) -> CoverageSet:
        """The coverage set ``C_r``; raises if not yet evaluated."""
        if self.coverage_ids is None:
            raise ValueError(
                "coverage not computed; call evaluate(corpus) or with_coverage()"
            )
        return self.coverage_ids

    @property
    def coverage_view(self) -> Optional["CoverageView"]:
        """The interned coverage view, or None when coverage is a frozenset."""
        if self.coverage_ids is not None and isinstance(
            self.coverage_ids, _coverage_view_type()
        ):
            return self.coverage_ids
        return None

    @property
    def coverage_size(self) -> int:
        """``|C_r|`` (0 if coverage has not been computed)."""
        return len(self.coverage_ids) if self.coverage_ids is not None else 0

    def precision(self, positive_ids: Set[int]) -> float:
        """Fraction of covered sentences that are in ``positive_ids``."""
        if not self.coverage_ids:
            return 0.0
        view = self.coverage_view
        if view is not None:
            hits = view.intersect_count(positive_ids)
        elif isinstance(positive_ids, AbstractSet):
            hits = sum(1 for sid in self.coverage_ids if sid in positive_ids)
        else:
            hits = len(set(self.coverage_ids) & set(positive_ids))
        return hits / len(self.coverage_ids)

    def new_positives(self, known_positive_ids: Set[int]) -> Set[int]:
        """Covered sentences not already in ``known_positive_ids``."""
        view = self.coverage_view
        if view is not None:
            return set(view.subtract(known_positive_ids).tolist())
        return set(self.coverage) - set(known_positive_ids)

    # -------------------------------------------------------------- rendering
    def render(self) -> str:
        """Human-readable rule string (as shown in oracle queries)."""
        return self.grammar.render(self.expression)

    # ------------------------------------------------------------ state protocol
    def ref(self) -> dict:
        """A JSON-able reference to this rule for checkpoint manifests.

        The reference is ``{"g": grammar name, "e": rendered expression}``;
        both built-in grammars round-trip ``render``/``parse`` exactly, so
        :meth:`Darwin.resolve_rule_ref <repro.core.darwin.Darwin.resolve_rule_ref>`
        can rebuild the identical rule (coverage re-attached from the corpus
        index, or by a corpus scan for rules the index never materialized).
        """
        return {"g": self.grammar.name, "e": self.render()}

    def __repr__(self) -> str:
        size = self.coverage_size if self.coverage_ids is not None else "?"
        return f"Rule<{self.grammar.name}: {self.render()!r} |C|={size}>"
