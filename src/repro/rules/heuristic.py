"""The :class:`LabelingHeuristic` record (Definition 2).

A labeling heuristic couples a grammar expression with the grammar that
interprets it and, once evaluated against a corpus, with its coverage set
``C_r`` (the ids of sentences that satisfy it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set

from ..grammars.base import Expression, HeuristicGrammar
from ..text.corpus import Corpus
from ..text.sentence import Sentence


@dataclass(frozen=True)
class LabelingHeuristic:
    """A single labeling rule.

    Attributes:
        grammar: The :class:`HeuristicGrammar` that interprets ``expression``.
        expression: The grammar-specific expression object (hashable).
        coverage_ids: Ids of corpus sentences satisfying the rule, if already
            computed. ``None`` means "not yet evaluated"; use
            :meth:`with_coverage` or :meth:`evaluate` to fill it in.
    """

    grammar: HeuristicGrammar
    expression: Expression
    coverage_ids: Optional[FrozenSet[int]] = field(default=None, compare=False)

    # Identity is (grammar name, expression): coverage is derived state.
    def __hash__(self) -> int:
        return hash((self.grammar.name, self.expression))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelingHeuristic):
            return NotImplemented
        return (
            self.grammar.name == other.grammar.name
            and self.expression == other.expression
        )

    # ------------------------------------------------------------ evaluation
    def matches(self, sentence: Sentence) -> bool:
        """True if ``sentence`` satisfies this rule."""
        return self.grammar.matches(self.expression, sentence)

    def evaluate(self, corpus: Corpus) -> "LabelingHeuristic":
        """Return a copy of this rule with coverage computed over ``corpus``."""
        ids = frozenset(self.grammar.coverage(self.expression, corpus))
        return self.with_coverage(ids)

    def with_coverage(self, coverage_ids: Iterable[int]) -> "LabelingHeuristic":
        """Return a copy carrying the given coverage ids."""
        return LabelingHeuristic(
            grammar=self.grammar,
            expression=self.expression,
            coverage_ids=frozenset(coverage_ids),
        )

    # ------------------------------------------------------------ properties
    @property
    def coverage(self) -> FrozenSet[int]:
        """The coverage set ``C_r``; raises if not yet evaluated."""
        if self.coverage_ids is None:
            raise ValueError(
                "coverage not computed; call evaluate(corpus) or with_coverage()"
            )
        return self.coverage_ids

    @property
    def coverage_size(self) -> int:
        """``|C_r|`` (0 if coverage has not been computed)."""
        return len(self.coverage_ids) if self.coverage_ids is not None else 0

    def precision(self, positive_ids: Set[int]) -> float:
        """Fraction of covered sentences that are in ``positive_ids``."""
        if not self.coverage_ids:
            return 0.0
        hits = len(self.coverage & set(positive_ids))
        return hits / len(self.coverage)

    def new_positives(self, known_positive_ids: Set[int]) -> Set[int]:
        """Covered sentences not already in ``known_positive_ids``."""
        return set(self.coverage) - set(known_positive_ids)

    # -------------------------------------------------------------- rendering
    def render(self) -> str:
        """Human-readable rule string (as shown in oracle queries)."""
        return self.grammar.render(self.expression)

    def __repr__(self) -> str:
        size = self.coverage_size if self.coverage_ids is not None else "?"
        return f"Rule<{self.grammar.name}: {self.render()!r} |C|={size}>"
